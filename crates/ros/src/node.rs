//! `NodeHandle` — the entry point of the paper's program pattern (Fig. 3).

use crate::config::TransportConfig;
use crate::error::RosError;
use crate::master::Master;
use crate::options::{PublisherOptions, SubscriberOptions};
use crate::publisher::Publisher;
use crate::subscriber::Subscriber;
use crate::traits::{Decode, Encode};
use rossf_netsim::MachineId;
use std::time::{Duration, Instant};

/// Handle representing a ROS node: a named participant on one simulated
/// machine, through which topics are advertised and subscribed.
///
/// ```
/// use rossf_ros::{Master, NodeHandle, MachineId};
///
/// let master = Master::new();
/// let nh = NodeHandle::new(&master, "pub_node");
/// let remote = NodeHandle::with_machine(&master, "trans_node", MachineId::B);
/// assert_eq!(nh.name(), "pub_node");
/// assert_eq!(remote.machine(), MachineId::B);
/// ```
#[derive(Debug, Clone)]
pub struct NodeHandle {
    master: Master,
    name: String,
    machine: MachineId,
    config: TransportConfig,
}

impl NodeHandle {
    /// Create a node on the default machine (machine A).
    pub fn new(master: &Master, name: &str) -> Self {
        Self::with_machine(master, name, MachineId::A)
    }

    /// Create a node on a specific simulated machine. Traffic between
    /// machines is shaped per the master's link table.
    pub fn with_machine(master: &Master, name: &str, machine: MachineId) -> Self {
        Self::with_config(master, name, machine, TransportConfig::default())
    }

    /// Create a node with explicit transport tunables. Every publisher and
    /// subscriber created through this handle inherits `config`.
    pub fn with_config(
        master: &Master,
        name: &str,
        machine: MachineId,
        config: TransportConfig,
    ) -> Self {
        NodeHandle {
            master: master.clone(),
            name: name.to_string(),
            machine,
            config,
        }
    }

    /// Node name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Simulated machine this node runs on.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The master this node registered with.
    pub fn master(&self) -> &Master {
        &self.master
    }

    /// The transport tunables publishers and subscribers created through
    /// this handle use.
    pub fn transport_config(&self) -> &TransportConfig {
        &self.config
    }

    /// Positional shorthand for [`NodeHandle::advertise_with`], kept for
    /// source compatibility with the paper's Fig. 3 program pattern.
    /// `queue_size` bounds each subscriber connection's transmission queue;
    /// `0` means "use the node's [`TransportConfig::queue_size`]".
    ///
    /// # Panics
    ///
    /// Panics if the topic already carries a different message type or the
    /// listener socket cannot be created; use [`NodeHandle::try_advertise`]
    /// to handle those cases.
    #[deprecated(
        since = "0.6.0",
        note = "use `advertise_with(topic, PublisherOptions::new().queue_size(n))`"
    )]
    pub fn advertise<M: Encode>(&self, topic: &str, queue_size: usize) -> Publisher<M> {
        self.advertise_with(topic, PublisherOptions::new().queue_size(queue_size))
    }

    /// Fallible variant of [`NodeHandle::advertise`].
    ///
    /// # Errors
    ///
    /// [`RosError::TypeMismatch`] or [`RosError::Io`].
    #[deprecated(
        since = "0.6.0",
        note = "use `try_advertise_with(topic, PublisherOptions::new().queue_size(n))`"
    )]
    pub fn try_advertise<M: Encode>(
        &self,
        topic: &str,
        queue_size: usize,
    ) -> Result<Publisher<M>, RosError> {
        self.try_advertise_with(topic, PublisherOptions::new().queue_size(queue_size))
    }

    /// Declare a topic and obtain a publisher for it — the primary
    /// advertise entry point since 0.6.0. [`PublisherOptions`] carries the
    /// queue size plus the per-publisher transport override, the tracing
    /// switch and the loan policy.
    ///
    /// # Panics
    ///
    /// Panics if the topic already carries a different message type or the
    /// listener socket cannot be created; use
    /// [`NodeHandle::try_advertise_with`] to handle those cases.
    pub fn advertise_with<M: Encode>(
        &self,
        topic: &str,
        options: PublisherOptions,
    ) -> Publisher<M> {
        self.try_advertise_with(topic, options)
            .unwrap_or_else(|e| panic!("advertise({topic}) failed: {e}"))
    }

    /// Fallible variant of [`NodeHandle::advertise_with`].
    ///
    /// # Errors
    ///
    /// [`RosError::TypeMismatch`] or [`RosError::Io`].
    pub fn try_advertise_with<M: Encode>(
        &self,
        topic: &str,
        options: PublisherOptions,
    ) -> Result<Publisher<M>, RosError> {
        Publisher::create_with(
            &self.master,
            topic,
            options,
            self.machine,
            self.config.clone(),
        )
    }

    /// Positional shorthand for [`NodeHandle::subscribe_with`], kept for
    /// source compatibility with the paper's Fig. 3 program pattern.
    ///
    /// `_queue_size` is accepted for API fidelity with ROS; backpressure is
    /// provided by the TCP socket itself in this implementation.
    ///
    /// # Panics
    ///
    /// Panics on type mismatch; use [`NodeHandle::try_subscribe`] to handle
    /// it.
    #[deprecated(
        since = "0.6.0",
        note = "use `subscribe_with(topic, SubscriberOptions::new(), callback)`"
    )]
    pub fn subscribe<D: Decode, F>(
        &self,
        topic: &str,
        _queue_size: usize,
        callback: F,
    ) -> Subscriber<D>
    where
        F: Fn(D) + Send + Sync + 'static,
    {
        self.subscribe_with(topic, SubscriberOptions::new(), callback)
    }

    /// Fallible variant of [`NodeHandle::subscribe`].
    ///
    /// # Errors
    ///
    /// [`RosError::TypeMismatch`].
    #[deprecated(
        since = "0.6.0",
        note = "use `try_subscribe_with(topic, SubscriberOptions::new(), callback)`"
    )]
    pub fn try_subscribe<D: Decode, F>(
        &self,
        topic: &str,
        callback: F,
    ) -> Result<Subscriber<D>, RosError>
    where
        F: Fn(D) + Send + Sync + 'static,
    {
        self.try_subscribe_with(topic, SubscriberOptions::new(), callback)
    }

    /// Register `callback` for messages on `topic` — the primary subscribe
    /// entry point since 0.6.0. The callback runs on the connection reader
    /// thread, receiving the decoded message — an `Arc<M>` for plain
    /// messages or an [`SfmShared`](rossf_sfm::SfmShared) for
    /// serialization-free ones. [`SubscriberOptions`] carries the
    /// per-subscription transport override, the tracing switch and the
    /// field projection ([`SubscriberOptions::project`]).
    ///
    /// # Panics
    ///
    /// Panics on type mismatch or an unresolvable projection; use
    /// [`NodeHandle::try_subscribe_with`] to handle it.
    pub fn subscribe_with<D: Decode, F>(
        &self,
        topic: &str,
        options: SubscriberOptions,
        callback: F,
    ) -> Subscriber<D>
    where
        F: Fn(D) + Send + Sync + 'static,
    {
        self.try_subscribe_with(topic, options, callback)
            .unwrap_or_else(|e| panic!("subscribe({topic}) failed: {e}"))
    }

    /// Fallible variant of [`NodeHandle::subscribe_with`].
    ///
    /// # Errors
    ///
    /// [`RosError::TypeMismatch`]; [`RosError::Projection`] when a
    /// requested field projection does not resolve against the message
    /// type's schema.
    pub fn try_subscribe_with<D: Decode, F>(
        &self,
        topic: &str,
        options: SubscriberOptions,
        callback: F,
    ) -> Result<Subscriber<D>, RosError>
    where
        F: Fn(D) + Send + Sync + 'static,
    {
        Subscriber::create_with(
            &self.master,
            topic,
            options,
            self.machine,
            self.config.clone(),
            callback,
        )
    }

    /// Advertise a request/response service (`rosservice` style). The
    /// handler runs on the per-client connection thread.
    ///
    /// # Errors
    ///
    /// [`RosError::Rejected`] if the name is taken; I/O errors binding.
    pub fn advertise_service<Req, Res, F>(
        &self,
        name: &str,
        handler: F,
    ) -> Result<crate::service::ServiceServer, RosError>
    where
        Req: crate::Decode,
        Res: crate::Encode + 'static,
        F: Fn(Req) -> Res + Send + Sync + 'static,
    {
        crate::service::ServiceServer::advertise::<Req, Res, F>(self, name, handler)
    }

    /// Connect a client to a service advertised on this master.
    ///
    /// # Errors
    ///
    /// [`RosError::Rejected`] if the service does not exist or the types
    /// mismatch.
    pub fn service_client<Req, Res>(
        &self,
        name: &str,
    ) -> Result<crate::service::ServiceClient<Req, Res>, RosError>
    where
        Req: crate::Encode,
        Res: crate::Decode,
    {
        crate::service::ServiceClient::connect(self, name)
    }

    /// Block until `publisher` has at least `n` connected subscribers
    /// (handshakes complete), or 5 seconds elapse.
    ///
    /// # Panics
    ///
    /// Panics on timeout — connection problems in a benchmark should be
    /// loud, not measured.
    pub fn wait_for_subscribers<M: Encode>(&self, publisher: &Publisher<M>, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while publisher.subscriber_count() < n {
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {n} subscribers on {}",
                publisher.topic()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
