//! Transport tunables, previously hardcoded across the stack.
//!
//! A [`TransportConfig`] lives on the [`NodeHandle`](crate::NodeHandle) and
//! is handed to every publisher and subscriber it creates, so one node can
//! run a hardened profile (small frames, fast reconnect) while another runs
//! the defaults.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Capped exponential backoff governing subscriber reconnection.
///
/// The delay before attempt `n` (0-based) is
/// `initial * multiplier^n`, capped at `max`, then scaled by a
/// deterministic jitter factor in `[1 - jitter, 1 + jitter]` derived from
/// the (seed, attempt) pair — different subscribers desynchronize without
/// any global randomness, and a given subscriber retries on the same
/// schedule every run.
#[derive(Debug, Clone, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub initial: Duration,
    /// Upper bound on any single delay.
    pub max: Duration,
    /// Growth factor between consecutive delays.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1)`; `0.25` spreads delays ±25 %.
    pub jitter: f64,
    /// Give up after this many failed attempts; `0` retries forever.
    pub max_attempts: u32,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            initial: Duration::from_millis(10),
            max: Duration::from_secs(2),
            multiplier: 2.0,
            jitter: 0.25,
            max_attempts: 0,
        }
    }
}

impl BackoffPolicy {
    /// The delay to sleep before retry number `attempt` (0-based), jittered
    /// deterministically by `seed`.
    pub fn delay(&self, attempt: u32, seed: u64) -> Duration {
        let base = self.initial.as_secs_f64() * self.multiplier.powi(attempt.min(63) as i32);
        let capped = base.min(self.max.as_secs_f64());
        let jittered = capped * self.jitter_factor(attempt, seed);
        Duration::from_secs_f64(jittered.max(0.0))
    }

    /// `true` once `attempt` retries have failed and the policy says stop.
    pub fn exhausted(&self, attempt: u32) -> bool {
        self.max_attempts != 0 && attempt >= self.max_attempts
    }

    fn jitter_factor(&self, attempt: u32, seed: u64) -> f64 {
        if self.jitter <= 0.0 {
            return 1.0;
        }
        let mut h = DefaultHasher::new();
        (seed, attempt).hash(&mut h);
        // Map the hash to [-1, 1], then to [1 - jitter, 1 + jitter].
        let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.jitter * (2.0 * unit - 1.0)
    }
}

/// Per-node transport tunables.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportConfig {
    /// Largest frame the read path will accept. A length prefix above this
    /// is a protocol violation: the connection is torn down *before* any
    /// allocation (a corrupted or hostile 4-byte prefix can claim up to
    /// 4 GiB).
    pub max_frame_len: usize,
    /// Default per-connection transmission queue depth, used when
    /// `advertise` is called with `queue_size == 0`.
    pub queue_size: usize,
    /// How long either side of the connection handshake may block reading
    /// the peer's header before the connection is abandoned.
    pub handshake_timeout: Duration,
    /// Reconnection schedule for subscriber connections that die.
    pub backoff: BackoffPolicy,
    /// Run the structural verifier over every received frame before
    /// adopting it ([`rossf_sfm::verify_frame`]). A frame that fails is
    /// dropped and counted (`verify_rejects`) instead of being adopted; the
    /// connection stays up because length-prefixed framing is still in
    /// sync. Off by default — adopted frames are otherwise only
    /// bounds-checked, not proved structurally sound.
    pub validate_on_receive: bool,
    /// Use the zero-copy same-machine fast path when publisher and
    /// subscriber share a `MachineId` within one process: the encoded
    /// [`OutFrame`](crate::OutFrame) — a refcounted SFM buffer pointer — is
    /// handed directly into the subscriber's delivery queue, skipping the
    /// loopback socket entirely. Both ends must opt in (negotiated via a
    /// `fastpath` connection-header field); either side disabling it falls
    /// back to TCP transparently. On by default.
    pub enable_fastpath: bool,
    /// Use the shared-memory tier when publisher and subscriber share a
    /// `MachineId` but live in *different* processes: the publisher copies
    /// each frame once into a memfd-backed segment and hands the
    /// subscriber a descriptor through a lock-free ring; the subscriber
    /// maps the segment read-only and adopts the bytes without copying.
    /// Negotiated via a `shm` connection-header field; either side
    /// disabling it (or an unsupported platform) falls back to TCP with
    /// byte-identical frames. On by default.
    pub enable_shm: bool,
    /// Allow the shm tier even when publisher and subscriber share one
    /// process (where the fast path would normally win). Off by default;
    /// benchmarks and tests turn it on to exercise the full shm data path
    /// — ring, segments, and read-only mapping — inside a single process.
    pub shm_same_process: bool,
    /// Fault injection: make every granted shm link fail to attach on the
    /// subscriber side, as when the kernel's ptrace-scope policy denies
    /// the `/proc/<pid>/fd` hand-off. Exercises the handshake-level TCP
    /// fallback (the supervisor withholds the shm offer after an attach
    /// failure) deterministically. Off by default.
    pub shm_attach_fault: bool,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            max_frame_len: 64 * 1024 * 1024,
            queue_size: 8,
            handshake_timeout: Duration::from_secs(5),
            backoff: BackoffPolicy::default(),
            validate_on_receive: false,
            enable_fastpath: true,
            enable_shm: true,
            shm_same_process: false,
            shm_attach_fault: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TransportConfig::default();
        assert_eq!(c.max_frame_len, 64 * 1024 * 1024);
        assert!(c.queue_size > 0);
        assert!(!c.backoff.exhausted(1_000_000));
        assert!(c.enable_fastpath, "zero-copy fast path on by default");
        assert!(c.enable_shm, "shared-memory tier on by default");
        assert!(
            !c.shm_same_process,
            "same-process traffic prefers the fast path by default"
        );
        assert!(!c.shm_attach_fault, "fault injection off by default");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let b = BackoffPolicy {
            jitter: 0.0,
            ..BackoffPolicy::default()
        };
        assert_eq!(b.delay(0, 7), Duration::from_millis(10));
        assert_eq!(b.delay(1, 7), Duration::from_millis(20));
        assert_eq!(b.delay(3, 7), Duration::from_millis(80));
        // Far past the cap.
        assert_eq!(b.delay(30, 7), b.max);
        // Overflowing exponents still cap instead of going non-finite.
        assert_eq!(b.delay(u32::MAX, 7), b.max);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let b = BackoffPolicy::default();
        for attempt in 0..8 {
            for seed in [1u64, 99, 12345] {
                let d = b.delay(attempt, seed);
                assert_eq!(d, b.delay(attempt, seed), "same inputs, same delay");
                let base = b.initial.as_secs_f64() * b.multiplier.powi(attempt as i32);
                let base = base.min(b.max.as_secs_f64());
                let lo = base * (1.0 - b.jitter) - 1e-9;
                let hi = base * (1.0 + b.jitter) + 1e-9;
                let secs = d.as_secs_f64();
                assert!(
                    secs >= lo && secs <= hi,
                    "delay {secs} outside [{lo}, {hi}]"
                );
            }
        }
        // Different seeds should (almost surely) jitter differently.
        assert_ne!(b.delay(4, 1), b.delay(4, 2));
    }

    #[test]
    fn max_attempts_exhaustion() {
        let b = BackoffPolicy {
            max_attempts: 3,
            ..BackoffPolicy::default()
        };
        assert!(!b.exhausted(2));
        assert!(b.exhausted(3));
        assert!(b.exhausted(4));
    }
}
