//! The subscriber side of a topic.
//!
//! `subscribe` registers a callback with the master and connects to every
//! current and future publisher of the topic. Each publisher endpoint is
//! owned by a [`Supervision`] state machine: connect attempts and
//! handshakes run as short jobs on the process-wide job pool, the
//! steady-state TCP reader runs as a nonblocking state machine on the
//! shared [reactor](rossf_reactor) (the reader loop of the paper's Fig. 9
//! — read the frame length, obtain a receive slot from the [`Decode`]
//! impl, read the payload into it, finish, invoke the callback), and
//! reconnect backoff is a reactor timer instead of a sleeping thread. When
//! a connection dies while the publisher is still registered, the
//! supervision re-resolves the endpoint via the master and reconnects
//! under the node's [`BackoffPolicy`](crate::config::BackoffPolicy). A
//! publisher that unregisters ends its supervision; a replacement
//! publisher arrives through the master's watcher callback with a fresh
//! registration and gets a fresh supervision. Only the shared-memory and
//! fast-path tiers keep dedicated threads — their drains block on rings
//! and channels, not fds.

use crate::config::TransportConfig;
use crate::error::RosError;
use crate::fastpath::{LocalAttach, LocalSinkHandle, FASTPATH_FIELD};
use crate::master::{Master, PublisherEndpoint};
use crate::metrics::TransportMetrics;
use crate::options::{SubscriberOptions, SubscriberStats};
use crate::shm::{SHM_EPOCH_FIELD, SHM_FD_FIELD, SHM_FIELD, SHM_PID_FIELD, SHM_PUB_PID_FIELD};
use crate::traits::{Decode, RecvSlot};
use crate::wire::{grow_socket_buffers, ConnectionHeader, PROJECT_FIELD};
use crossbeam::channel::RecvTimeoutError;
use rossf_netsim::{FaultAction, MachineId};
use rossf_reactor::{runtime, Ctl, Event, Handler};
use rossf_shm::{ShmReader, TakeError};
use rossf_trace::{now_nanos, tracer, Stage, Tier, TopicTrace};
use std::collections::{HashMap, VecDeque};
use std::io::Read;
use std::net::{Shutdown, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

use parking_lot::Mutex;

/// How long a traced reader waits for the writer's sidecar note to carry
/// the write-*completion* stamp before giving up on the `wire_read` span.
/// The writer settles the note within microseconds of the last frame byte;
/// this bound only matters when the writer thread is preempted in between.
const SIDECAR_SETTLE_WAIT: Duration = Duration::from_millis(2);

/// Per-link read buffer. Small reads coalesce through it (one syscall
/// drains many small frames); payload remainders at least this large are
/// read straight into the receive slot, so big frames never pay a copy
/// through the buffer.
const READ_BUF: usize = 64 * 1024;

/// Frames one reader dispatch may deliver before yielding the shared loop
/// (re-notifying itself for the rest), so one firehose connection cannot
/// starve the other links.
const FRAMES_PER_DISPATCH: usize = 64;

/// At most this many blocking connect+handshake attempts may occupy job
/// pool workers at once. The publisher's accept-side handshakes run on
/// the same pool: capping the subscriber side below the pool size
/// guarantees a worker is always free to answer, so a fan-in of
/// thousands of simultaneous subscribes cannot deadlock the pool against
/// itself.
const MAX_INFLIGHT_CONNECTS: usize = 2;

/// Connect-slot gate: held permits plus the attempts parked waiting for
/// one. A release hands its permit straight to the next parked attempt,
/// so waiters resume in FIFO order with no polling.
struct ConnectGate {
    inflight: usize,
    parked: VecDeque<Box<dyn FnOnce() + Send>>,
}

fn connect_gate() -> &'static Mutex<ConnectGate> {
    static GATE: OnceLock<Mutex<ConnectGate>> = OnceLock::new();
    GATE.get_or_init(|| {
        Mutex::new(ConnectGate {
            inflight: 0,
            parked: VecDeque::new(),
        })
    })
}

/// Run `attempt` now if a connect slot is free, otherwise park it until
/// one frees up. Callers run on a pool worker; parked attempts are
/// respawned onto the pool by the releasing slot holder.
fn with_connect_slot(attempt: Box<dyn FnOnce() + Send>) {
    let attempt = {
        let mut gate = connect_gate().lock();
        if gate.inflight < MAX_INFLIGHT_CONNECTS {
            gate.inflight += 1;
            attempt
        } else {
            gate.parked.push_back(attempt);
            return;
        }
    };
    attempt();
}

/// Release a connect slot, transferring it to the next parked attempt
/// when one is waiting.
fn release_connect_slot() {
    let next = {
        let mut gate = connect_gate().lock();
        match gate.parked.pop_front() {
            // The permit moves to the parked attempt unreleased.
            Some(job) => Some(job),
            None => {
                gate.inflight -= 1;
                None
            }
        }
    };
    if let Some(job) = next {
        runtime().pool.spawn(job);
    }
}

struct SubCore<D: Decode> {
    topic: String,
    machine: MachineId,
    master: Master,
    registration: u64,
    config: TransportConfig,
    metrics: Arc<TransportMetrics>,
    callback: Box<dyn Fn(D) + Send + Sync>,
    shutdown: AtomicBool,
    /// Live connection streams, keyed by a per-core serial so each reader
    /// removes exactly its own entry when the connection ends — dead
    /// streams never accumulate.
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_stream_key: AtomicU64,
    received: AtomicU64,
    received_bytes: AtomicU64,
    decode_errors: AtomicU64,
    connected: AtomicU64,
    reconnect_attempts: AtomicU64,
    reconnects: AtomicU64,
    /// The topic's tracing table when this subscription was created with
    /// `SubscriberOptions::trace(true)`; `None` keeps the receive path free
    /// of clock reads and histogram writes.
    trace: Option<Arc<TopicTrace>>,
    /// The resolved field projection when this subscription was created
    /// with `SubscriberOptions::project(..)`. Offered to every TCP
    /// publisher at handshake time; links whose publisher echoed the spec
    /// carry sliced sub-frames verified against the projected schema.
    /// Zero-copy tiers (fast path, shm) ignore it and deliver full frames.
    projection: Option<Arc<rossf_sfm::Projection>>,
}

/// Where a freshly handshaken TCP connection goes next: the reactor (plain
/// frames), a dedicated shm consumer thread (grant received), or nowhere
/// (shutdown raced the connect).
enum TcpEstablished {
    Reader {
        stream: TcpStream,
        key: u64,
        conn_key: u64,
        /// The publisher granted our projection: frames on this link are
        /// sliced sub-frames, verified against the projected schema.
        projected: bool,
    },
    Shm {
        stream: TcpStream,
        key: u64,
        reply: ConnectionHeader,
    },
    ShutdownRace,
}

/// Owns one publisher endpoint for the life of its registration — the
/// state-machine form of the old per-endpoint supervisor thread. The
/// retry state travels through the connection it establishes (the reactor
/// handler or consumer thread holds the box) and comes back via
/// [`Supervision::resume`] when the connection ends; backoff waits are
/// reactor timers, so an endpoint between attempts costs no thread.
struct Supervision<D: Decode> {
    core: Arc<SubCore<D>>,
    ep: PublisherEndpoint,
    /// Failed attempts since the last healthy connection.
    attempt: u32,
    /// Whether any connection to this endpoint ever completed a handshake
    /// (a later success is then a *re*connect).
    was_connected: bool,
    /// Once a granted shm link fails to attach (e.g. the `/proc` fd
    /// hand-off is denied by a ptrace-scope policy), stop offering the
    /// capability to this endpoint: the next handshake omits the offer and
    /// the publisher serves plain TCP instead.
    shm_blocked: bool,
}

impl<D: Decode> Supervision<D> {
    /// Start supervising `ep`: the first connection attempt goes straight
    /// to the pool, no initial backoff.
    fn launch(core: Arc<SubCore<D>>, ep: PublisherEndpoint) {
        let sup = Box::new(Supervision {
            core,
            ep,
            attempt: 0,
            was_connected: false,
            shm_blocked: false,
        });
        runtime().pool.spawn(move || sup.step());
    }

    /// One connection attempt. Runs on the job pool — bounded by the
    /// connect and handshake timeouts, never connection-lifetime. Exactly
    /// one continuation follows: `resume` directly on failure, or through
    /// whatever long-lived consumer the attempt handed the box to.
    fn step(self: Box<Self>) {
        let core = Arc::clone(&self.core);
        // Relaxed: standalone exit flag, polled — a stale read only costs
        // one extra attempt.
        if core.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if let Some(port) = core.local_port(&self.ep) {
            match core.attach_local_sink(port, self.was_connected) {
                Ok(sink) => {
                    // The sink drain blocks on a channel for the life of
                    // the attachment: dedicated thread, not the pool.
                    let spawned = std::thread::Builder::new()
                        .name("rossf-fast-sub".to_string())
                        .spawn(move || {
                            let result = self.core.run_local_sink(sink);
                            self.resume(result, true, false);
                        });
                    if let Err(e) = spawned {
                        // Could not spawn: surface as a retryable failure.
                        // (`self` moved into the failed closure and is
                        // gone; the endpoint is re-supervised only if a
                        // fresh registration arrives.)
                        let _ = e;
                    }
                    return;
                }
                // The publisher refused the *capability*, not the
                // subscription (peer predates the fast path): fall back to
                // plain TCP in this same attempt.
                Err(RosError::Rejected(ref msg)) if msg.contains(FASTPATH_FIELD) => {}
                Err(e) => {
                    self.resume(Err(e), false, false);
                    return;
                }
            }
        }
        // The blocking connect+handshake goes through the connect gate;
        // everything after the handshake is nonblocking.
        with_connect_slot(Box::new(move || self.connect_step()));
    }

    /// The gated blocking span of an attempt — TCP connect plus handshake
    /// — then the hand-off of the established connection to its consumer.
    /// Holds a connect slot for exactly the blocking part.
    fn connect_step(self: Box<Self>) {
        let core = Arc::clone(&self.core);
        let offer_shm = !self.shm_blocked;
        let established = core.connect_tcp(&self.ep, self.was_connected, offer_shm);
        release_connect_slot();
        match established {
            Ok(TcpEstablished::Reader {
                stream,
                key,
                conn_key,
                projected,
            }) => {
                // Steady state joins the shared event loop; the box rides
                // inside the handler until the connection concludes.
                let fd = stream.as_raw_fd();
                let reader: TcpReader<D> = TcpReader {
                    stream,
                    sup: Some(self),
                    stream_key: key,
                    conn_key,
                    projected,
                    wire_seq: 0,
                    state: ReadState::Prefix {
                        prefix: [0; 4],
                        filled: 0,
                    },
                    rbuf: vec![0u8; READ_BUF].into_boxed_slice(),
                    rpos: 0,
                    rlen: 0,
                };
                core.reactor_handle()
                    .register(fd, true, false, Box::new(reader));
            }
            Ok(TcpEstablished::Shm { stream, key, reply }) => {
                // Ring consumption blocks on descriptor waits for the life
                // of the link: dedicated thread, not the pool.
                let spawned = std::thread::Builder::new()
                    .name("rossf-shm-sub".to_string())
                    .spawn(move || {
                        let mut shm_attach_failed = false;
                        let result =
                            self.core
                                .run_shm_connection(stream, &reply, &mut shm_attach_failed);
                        self.core.streams.lock().remove(&key);
                        self.resume(result, true, shm_attach_failed);
                    });
                if let Err(e) = spawned {
                    let _ = e;
                }
            }
            Ok(TcpEstablished::ShutdownRace) => {}
            // `connect_tcp` can only fail before the handshake completes.
            Err(e) => self.resume(Err(e), false, false),
        }
    }

    /// A connection (or attempt) ended: decide between standing down and
    /// scheduling the next attempt — the tail of the old supervisor loop.
    /// Runs wherever the connection concluded (reactor thread, consumer
    /// thread, pool); everything here is brief and nonblocking, and the
    /// backoff wait is a reactor timer.
    fn resume(
        mut self: Box<Self>,
        result: Result<(), RosError>,
        handshaken: bool,
        shm_attach_failed: bool,
    ) {
        let core = Arc::clone(&self.core);
        if shm_attach_failed {
            self.shm_blocked = true;
            core.metrics
                .shm_attach_failures
                .fetch_add(1, Ordering::Relaxed);
        }
        if handshaken {
            self.was_connected = true;
            // A handshake whose shm grant could not be attached never
            // delivered a frame: keep escalating backoff instead of
            // restarting the schedule on every futile grant.
            if !shm_attach_failed {
                self.attempt = 0; // healthy link existed; restart the schedule
            }
            core.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
        }
        // Relaxed: standalone exit flag.
        if core.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match result {
            // The peer refused this subscription outright (type or
            // endianness mismatch): retrying cannot change the answer. An
            // unattachable (or malformed) shm grant is exempt: the retry
            // renegotiates without the offer, which *can* change the
            // answer.
            Err(RosError::Rejected(_)) | Err(RosError::TypeMismatch { .. })
                if !shm_attach_failed =>
            {
                return
            }
            // Clean EOF or a transport-level failure: retryable.
            _ => {}
        }
        // Reconnect only while this exact registration is still current; a
        // replacement publisher has a fresh id and arrives via the
        // master's watcher callback.
        if core
            .master
            .lookup_publisher(&core.topic, self.ep.id)
            .is_none()
        {
            return;
        }
        if core.config.backoff.exhausted(self.attempt) {
            return;
        }
        let delay = core
            .config
            .backoff
            .delay(self.attempt, self.ep.id ^ core.registration);
        self.attempt = self.attempt.saturating_add(1);
        core.reconnect_attempts.fetch_add(1, Ordering::Relaxed);
        core.metrics
            .reconnect_attempts
            .fetch_add(1, Ordering::Relaxed);
        // The wait costs no thread; the timer re-enters `step` on the
        // pool. Teardown during the wait is caught by step's shutdown
        // check (the timer itself holds no core reference that matters).
        runtime().reactor.timer(delay, move |_| {
            runtime().pool.spawn(move || sup_step(self));
        });
    }
}

/// Free-fn trampoline so the timer closure stays object-safe and simple.
fn sup_step<D: Decode>(sup: Box<Supervision<D>>) {
    sup.step();
}

impl<D: Decode> SubCore<D> {
    /// The process-wide reactor TCP readers register on.
    fn reactor_handle(&self) -> rossf_reactor::Reactor {
        runtime().reactor
    }

    /// The publisher's local attach port, if the zero-copy fast path
    /// applies to this endpoint: both sides opted in, same simulated
    /// machine, and the publisher lives in this process (its port is
    /// registered with our master).
    fn local_port(&self, ep: &PublisherEndpoint) -> Option<Arc<dyn LocalAttach>> {
        if self.config.enable_fastpath && ep.machine == self.machine {
            self.master.local_port(ep.id)
        } else {
            None
        }
    }

    /// Fast-path handshake: attach to a same-process publisher's local
    /// port and validate the reply. An `Ok` here means the handshake
    /// completed (connection/handshake counters are updated); the caller
    /// owns running [`SubCore::run_local_sink`] on the returned sink.
    fn attach_local_sink(
        &self,
        port: Arc<dyn LocalAttach>,
        is_reconnect: bool,
    ) -> Result<LocalSinkHandle, RosError> {
        let request = ConnectionHeader::new()
            .with("topic", &self.topic)
            .with("type", D::topic_type())
            .with("machine", self.machine.0.to_string())
            .with("endian", ConnectionHeader::native_endian())
            .with(FASTPATH_FIELD, "1");
        let sink = port.attach_local(&request)?;
        // Release the strong reference immediately: holding it through the
        // receive loop would keep the publisher core (and its master
        // registration) alive after the last `Publisher` handle drops. The
        // sink's queue disconnects when the publisher tears down.
        drop(port);
        if let Some(err) = sink.reply.get("error") {
            return Err(RosError::Rejected(err.to_string()));
        }
        if let Some(endian) = sink.reply.get("endian") {
            if endian != ConnectionHeader::native_endian() {
                return Err(RosError::Rejected(format!(
                    "endianness mismatch: publisher is {endian}"
                )));
            }
        }
        self.connected.fetch_add(1, Ordering::Relaxed);
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);
        if is_reconnect {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            self.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        Ok(sink)
    }

    /// One fast-path attachment lifetime: the pointer-handoff analogue of
    /// the TCP reader. Frames arrive as already-encoded
    /// [`OutFrame`](crate::OutFrame)s straight from the publisher's
    /// transmission queue and are adopted via [`Decode::from_local_frame`]
    /// — for serialization-free messages, the subscriber object points at
    /// the publisher's allocation. Fault injection, `validate_on_receive`,
    /// and all metrics accounting mirror the socket path. Blocks for the
    /// attachment's lifetime — runs on its own thread.
    fn run_local_sink(&self, sink: LocalSinkHandle) -> Result<(), RosError> {
        let trace = self.trace.as_deref();
        loop {
            // Relaxed: standalone exit flag, polled — a stale read
            // only costs one extra loop iteration.
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            // Short timeout so shutdown is observed promptly; there is no
            // socket to shut down from `Drop` on this path.
            let frame = match sink.recv_timeout(Duration::from_millis(20)) {
                Ok(frame) => frame,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break, // publisher gone
            };
            // The loopback link's fault injector applies to pointer handoff
            // exactly as it does to socket writes.
            match sink.frame_action() {
                FaultAction::Pass => {}
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Drop => {
                    self.metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                FaultAction::Sever => {
                    // The frame is lost and the attachment is cut; re-attach
                    // is refused until the link heals, so report retryable.
                    self.metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
            // Pointer handoff needs no sidecar: the trace id rides on the
            // frame's own tag, and the queue dwell (plus any injected
            // delay) is the `enqueue` span.
            let tag = frame.trace();
            let (id, mut t_prev) = match (trace, tag.id) {
                (Some(table), id) if id != 0 && tag.enqueued_ns != 0 => {
                    let t = now_nanos();
                    tracer().span(
                        table,
                        Stage::Enqueue,
                        Tier::Fastpath,
                        id,
                        tag.enqueued_ns,
                        t,
                    );
                    (id, t)
                }
                _ => (0, 0),
            };
            let len = frame.len();
            // There is no writer thread on this path: account the "send" at
            // the moment of delivery so both paths report the same totals.
            self.metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .bytes_sent
                .fetch_add(len as u64, Ordering::Relaxed);
            self.metrics.fastpath_frames.fetch_add(1, Ordering::Relaxed);
            if self.config.validate_on_receive {
                if D::verify_frame(frame.as_slice()).is_err() {
                    self.metrics.verify_rejects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let (Some(table), true) = (trace, id != 0) {
                    let t = now_nanos();
                    tracer().span(table, Stage::Verify, Tier::Fastpath, id, t_prev, t);
                    t_prev = t;
                }
            }
            let decoded = D::from_local_frame(&frame);
            if let (Some(table), true, true) = (trace, id != 0, decoded.is_ok()) {
                let t = now_nanos();
                tracer().span(table, Stage::Adopt, Tier::Fastpath, id, t_prev, t);
                t_prev = t;
            }
            match decoded {
                Ok(msg) => {
                    self.received.fetch_add(1, Ordering::Relaxed);
                    self.received_bytes.fetch_add(len as u64, Ordering::Relaxed);
                    self.metrics.frames_received.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .bytes_received
                        .fetch_add(len as u64, Ordering::Relaxed);
                    (self.callback)(msg);
                    if let (Some(table), true) = (trace, id != 0) {
                        let t = now_nanos();
                        tracer().span(table, Stage::Callback, Tier::Fastpath, id, t_prev, t);
                    }
                }
                Err(_) => {
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Connect and handshake with one TCP publisher endpoint — the short,
    /// blocking prefix of a connection's life (runs on the job pool). On
    /// success the socket is registered in `streams` (so `Drop` can
    /// unblock it) under the returned key; the long-lived consumer the
    /// caller starts owns removing that entry.
    fn connect_tcp(
        &self,
        ep: &PublisherEndpoint,
        is_reconnect: bool,
        offer_shm: bool,
    ) -> Result<TcpEstablished, RosError> {
        let stream = TcpStream::connect(ep.addr)?;
        stream.set_nodelay(true)?;
        let key = self.next_stream_key.fetch_add(1, Ordering::Relaxed);
        {
            let mut streams = self.streams.lock();
            // Relaxed: re-checked under the streams lock, which orders
            // this insert against Drop's drain of the map.
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(TcpEstablished::ShutdownRace);
            }
            streams.insert(key, stream.try_clone()?);
        }
        // Grown before the handshake so the very first data frame already
        // sees full-size kernel buffers (also covers the shm control
        // stream, where it is merely harmless).
        grow_socket_buffers(&stream);
        match self.handshake_tcp(&stream, is_reconnect, offer_shm) {
            Ok((Some(reply), _)) => Ok(TcpEstablished::Shm { stream, key, reply }),
            Ok((None, projected)) => match stream.set_nonblocking(true) {
                Ok(()) => {
                    // The connection key mirrors the writer's
                    // `conn_key(local, peer)`: our peer is its local
                    // address, so the pair (and hence the key) agrees. A
                    // reconnect gets a fresh ephemeral port and therefore
                    // a fresh key — sequence numbers restart cleanly.
                    let conn_key = match (stream.peer_addr(), stream.local_addr()) {
                        (Ok(peer), Ok(local)) => {
                            rossf_trace::conn_key(&peer.to_string(), &local.to_string())
                        }
                        _ => 0,
                    };
                    Ok(TcpEstablished::Reader {
                        stream,
                        key,
                        conn_key,
                        projected,
                    })
                }
                Err(e) => {
                    self.streams.lock().remove(&key);
                    Err(RosError::Io(e))
                }
            },
            Err(e) => {
                self.streams.lock().remove(&key);
                Err(e)
            }
        }
    }

    /// TCPROS-style connection handshake on a blocking socket. Returns the
    /// reply header when the publisher granted the shared-memory tier
    /// (`None` for plain TCP) plus whether the publisher granted our field
    /// projection (meaningful only on the plain-TCP outcome; shm links
    /// always carry full frames). The reply is read *unbuffered* — header
    /// parsing does exact reads only — so no frame bytes are swallowed
    /// into a buffer before the socket is handed to the nonblocking
    /// reader.
    fn handshake_tcp(
        &self,
        stream: &TcpStream,
        is_reconnect: bool,
        offer_shm: bool,
    ) -> Result<(Option<ConnectionHeader>, bool), RosError> {
        // A peer that accepts the connection but never answers the
        // handshake must not pin a pool worker forever.
        stream.set_read_timeout(Some(self.config.handshake_timeout))?;
        let mut request = ConnectionHeader::new()
            .with("topic", &self.topic)
            .with("type", D::topic_type())
            .with("machine", self.machine.0.to_string())
            .with("endian", ConnectionHeader::native_endian());
        // Offer the shared-memory tier: the publisher grants it only when
        // both sides share a machine and (normally) live in different
        // processes, so the offer also carries our pid. The offer is
        // withheld after a grant failed to attach (`offer_shm == false`)
        // so the publisher serves this connection over plain TCP.
        if offer_shm && self.config.enable_shm && rossf_shm::supported() {
            request = request
                .with(SHM_FIELD, "1")
                .with(SHM_PID_FIELD, std::process::id().to_string());
        }
        // Request the field projection by its canonical spec. The grant is
        // an exact echo; a publisher that predates projection (or cannot
        // resolve the spec) simply omits the field and serves full frames.
        if let Some(projection) = &self.projection {
            request = request.with(PROJECT_FIELD, projection.spec());
        }
        let mut io = stream;
        request.write_to(&mut io)?;
        let reply = ConnectionHeader::read_from(&mut io)?;
        if let Some(err) = reply.get("error") {
            return Err(RosError::Rejected(err.to_string()));
        }
        if let Some(endian) = reply.get("endian") {
            if endian != ConnectionHeader::native_endian() {
                // §4.4.1: a serialization-free frame arrives in the
                // publisher's endianness; conversion is out of scope, so a
                // cross-endian link is refused outright.
                return Err(RosError::Rejected(format!(
                    "endianness mismatch: publisher is {endian}"
                )));
            }
        }
        // Steady state is nonblocking (reactor) or probe-driven (shm);
        // either way the handshake timeout must not linger.
        stream.set_read_timeout(None)?;
        self.connected.fetch_add(1, Ordering::Relaxed);
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);
        if is_reconnect {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            self.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        // Projection is granted only by an exact spec echo — anything else
        // (no echo, a different spec) means full frames on this link.
        let projected = self
            .projection
            .as_ref()
            .is_some_and(|p| reply.get(PROJECT_FIELD) == Some(p.spec()));
        // An shm grant means the publisher is now in its ring-producer
        // loop: frames arrive as descriptors, not socket bytes, and the
        // socket stays open purely as the liveness channel.
        Ok((
            (reply.get(SHM_FIELD) == Some("1")).then_some(reply),
            projected,
        ))
    }

    /// Attach a granted shm link, honouring the injected attach fault
    /// (`TransportConfig::shm_attach_fault`), which stands in for the
    /// real-world `/proc/<pid>/fd` denials that cannot be provoked
    /// deterministically in a test.
    fn attach_shm(&self, pub_pid: u32, ctrl_fd: i32, epoch: u64) -> Result<ShmReader, RosError> {
        if self.config.shm_attach_fault {
            return Err(RosError::Io(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "injected shm attach fault",
            )));
        }
        ShmReader::connect(pub_pid, ctrl_fd, epoch).map_err(RosError::Io)
    }

    /// One shared-memory link lifetime: adopt the publisher's control
    /// segment and consume descriptors until either side tears down.
    /// Frames are mapped read-only straight out of the publisher's
    /// segments — zero subscriber-side payload copies for SFM messages.
    /// The handshake socket is kept open purely as a liveness channel:
    /// EOF means the publisher process is gone even if it never managed
    /// to mark the ring closed (crash recovery).
    fn run_shm_connection(
        &self,
        stream: TcpStream,
        reply: &ConnectionHeader,
        shm_attach_failed: &mut bool,
    ) -> Result<(), RosError> {
        let field = |name: &str| -> Result<u64, RosError> {
            reply
                .get(name)
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| {
                    RosError::Rejected(format!("malformed shm grant: bad `{name}` field"))
                })
        };
        // Any failure between the grant and a working reader — malformed
        // grant fields, a `/proc` fd hand-off denied by the kernel's
        // ptrace-scope policy, an epoch mismatch from a recycled publisher
        // incarnation — flags `shm_attach_failed`: the supervisor then
        // redoes the handshake with the shm offer withheld and the
        // publisher serves plain TCP, instead of re-granting a link this
        // process can never attach.
        let parsed = (|| {
            Ok((
                field(SHM_PUB_PID_FIELD)? as u32,
                field(SHM_FD_FIELD)? as i32,
                field(SHM_EPOCH_FIELD)?,
            ))
        })();
        let (pub_pid, ctrl_fd, epoch) = match parsed {
            Ok(v) => v,
            Err(e) => {
                *shm_attach_failed = true;
                return Err(e);
            }
        };
        let shm = match self.attach_shm(pub_pid, ctrl_fd, epoch) {
            Ok(shm) => shm,
            Err(e) => {
                *shm_attach_failed = true;
                return Err(e);
            }
        };
        stream.set_nonblocking(true)?;

        let trace = self.trace.as_deref();
        let own_pid = std::process::id();
        let mut probe_stream = &stream;
        let mut probe = [0u8; 1];
        loop {
            // Relaxed: standalone exit flag, polled — a stale read
            // only costs one extra loop iteration.
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let frame = match shm.take(Duration::from_millis(20)) {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    if shm.is_closed() && shm.pending() == 0 {
                        break; // graceful teardown, ring drained
                    }
                    // Liveness probe: a publisher that died without
                    // closing the ring leaves EOF (or an error) here.
                    match probe_stream.read(&mut probe) {
                        Ok(_) => break, // EOF, or protocol-violating bytes
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(_) => break,
                    }
                    continue;
                }
                Err(TakeError::Stale) => {
                    // Abandoned frame from a recycled publisher
                    // incarnation — counted like a decode failure.
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // The ring can no longer be trusted to be in sync: tear
                // the link down (retryable under backoff).
                Err(TakeError::Corrupt(e)) => return Err(RosError::Io(e)),
            };
            let len = frame.len();
            let desc = *frame.descriptor();
            let (id, mut t_prev) = match trace {
                Some(table) if desc.trace_id != 0 => {
                    let t = now_nanos();
                    // The descriptor's timestamps are on the *publisher's*
                    // trace clock, meaningful here only when the publisher
                    // is this same process (the `shm_same_process` bench
                    // mode); a cross-process link skips the span rather
                    // than mixing clocks.
                    if pub_pid == own_pid && desc.pushed_ns != 0 {
                        tracer().span(
                            table,
                            Stage::WireRead,
                            Tier::Shm,
                            desc.trace_id,
                            desc.pushed_ns,
                            t,
                        );
                    }
                    (desc.trace_id, t)
                }
                _ => (0, 0),
            };
            if self.config.validate_on_receive {
                if D::verify_frame(frame.as_slice()).is_err() {
                    // Dropping the unadopted frame releases its segment
                    // reference; the ring stays in sync.
                    self.metrics.verify_rejects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let (Some(table), true) = (trace, id != 0) {
                    let t = now_nanos();
                    tracer().span(table, Stage::Verify, Tier::Shm, id, t_prev, t);
                    t_prev = t;
                }
            }
            let decoded = D::from_mapped_frame(frame);
            if let (Some(table), true, true) = (trace, id != 0, decoded.is_ok()) {
                let t = now_nanos();
                tracer().span(table, Stage::Adopt, Tier::Shm, id, t_prev, t);
                t_prev = t;
            }
            match decoded {
                Ok(msg) => {
                    self.received.fetch_add(1, Ordering::Relaxed);
                    self.received_bytes.fetch_add(len as u64, Ordering::Relaxed);
                    self.metrics.frames_received.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .bytes_received
                        .fetch_add(len as u64, Ordering::Relaxed);
                    (self.callback)(msg);
                    if let (Some(table), true) = (trace, id != 0) {
                        let t = now_nanos();
                        tracer().span(table, Stage::Callback, Tier::Shm, id, t_prev, t);
                    }
                }
                Err(_) => {
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }
}

/// What one [`TcpReader::advance`] call produced.
enum Progress {
    /// A complete frame was delivered (or deliberately discarded).
    Frame,
    /// The socket has no more bytes right now; wait for the next event.
    NeedSocket,
    /// Clean end-of-stream on a frame boundary.
    Eof,
}

/// Frame-reassembly state for one nonblocking TCP link — which part of the
/// `len ∥ payload` wire unit the next byte belongs to.
enum ReadState<D: Decode> {
    /// Accumulating the 4-byte little-endian length prefix.
    Prefix { prefix: [u8; 4], filled: usize },
    /// Accumulating a frame body straight into its receive slot.
    Body {
        slot: D::Slot,
        len: usize,
        filled: usize,
    },
    /// Discarding the body of a frame whose slot could not be allocated
    /// (oversized for the message type), to stay in sync with the stream.
    Skip { remaining: usize },
}

/// The steady-state half of a TCP subscription: a reactor handler that
/// reassembles length-prefixed frames from a nonblocking socket and runs
/// the delivery tail (verify, finish, callback) inline — the reader loop of
/// the paper's Fig. 9, minus the thread it used to occupy.
struct TcpReader<D: Decode> {
    stream: TcpStream,
    /// The endpoint's supervision, handed back when the connection
    /// concludes. `None` only transiently during conclusion.
    sup: Option<Box<Supervision<D>>>,
    /// This connection's entry in `SubCore::streams`.
    stream_key: u64,
    /// Sidecar rendezvous key shared with the writer (peer, local).
    conn_key: u64,
    /// The publisher granted `SubCore::projection` for this link: frames
    /// are sliced sub-frames, verified with the projected verifier.
    projected: bool,
    /// Frames consumed off the stream, in wire order; counted
    /// unconditionally so it stays in lockstep with the writer's count of
    /// frames actually written.
    wire_seq: u64,
    state: ReadState<D>,
    /// Read coalescing buffer: one syscall drains many small frames.
    /// Payload remainders of at least the buffer's size bypass it and read
    /// directly into the slot.
    rbuf: Box<[u8]>,
    rpos: usize,
    rlen: usize,
}

impl<D: Decode> Handler for TcpReader<D> {
    fn on_event(&mut self, _event: Event, ctl: &mut Ctl) {
        // Every wake — readable, a self-yield notify, even `Closed` — is a
        // pump. After a hangup the kernel still holds the already-received
        // tail; level-triggered reads can no longer block, so pumping
        // drains it to a definite EOF or error and no delivered frame is
        // lost to teardown ordering.
        let Some(core) = self.sup.as_ref().map(|s| Arc::clone(&s.core)) else {
            ctl.close();
            return;
        };
        let mut delivered = 0usize;
        loop {
            // Relaxed: standalone exit flag, polled — a stale read only
            // costs one extra frame.
            if core.shutdown.load(Ordering::Relaxed) {
                self.conclude(Ok(()), ctl);
                return;
            }
            match self.advance(&core) {
                Ok(Progress::Frame) => {
                    delivered += 1;
                    if delivered >= FRAMES_PER_DISPATCH {
                        // Yield the shared loop so one firehose link cannot
                        // starve the rest; the notify re-runs this handler
                        // after the other ready links get their turn.
                        let token = ctl.token();
                        ctl.reactor().notify(token);
                        return;
                    }
                }
                Ok(Progress::NeedSocket) => return,
                Ok(Progress::Eof) => {
                    self.conclude(Ok(()), ctl);
                    return;
                }
                Err(e) => {
                    self.conclude(Err(e), ctl);
                    return;
                }
            }
        }
    }
}

impl<D: Decode> TcpReader<D> {
    /// Make progress until a frame completes or the socket runs dry.
    fn advance(&mut self, core: &Arc<SubCore<D>>) -> Result<Progress, RosError> {
        loop {
            // Resolve completed states before demanding bytes, so
            // zero-length bodies and finished skips never stall waiting
            // for input that is not owed.
            match &mut self.state {
                ReadState::Body { len, filled, .. } if *filled == *len => {
                    return self.deliver(core);
                }
                ReadState::Skip { remaining } if *remaining == 0 => {
                    self.state = ReadState::Prefix {
                        prefix: [0; 4],
                        filled: 0,
                    };
                    continue;
                }
                _ => {}
            }
            if self.rpos == self.rlen {
                // Large body remainders bypass the coalescing buffer: read
                // straight into the slot, no intermediate copy.
                if let ReadState::Body { slot, len, filled } = &mut self.state {
                    if *len - *filled >= self.rbuf.len() {
                        match self.stream.read(&mut slot.as_mut_slice()[*filled..*len]) {
                            Ok(0) => {
                                // EOF inside a frame: truncation.
                                return Err(RosError::Io(std::io::Error::from(
                                    std::io::ErrorKind::UnexpectedEof,
                                )));
                            }
                            Ok(n) => {
                                *filled += n;
                                continue;
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                return Ok(Progress::NeedSocket)
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(e) => return Err(RosError::Io(e)),
                        }
                    }
                }
                match self.stream.read(&mut self.rbuf) {
                    Ok(0) => {
                        // Clean EOF only lands between frames; mid-frame it
                        // is a truncation.
                        return match &self.state {
                            ReadState::Prefix { filled: 0, .. } => Ok(Progress::Eof),
                            _ => Err(RosError::Io(std::io::Error::from(
                                std::io::ErrorKind::UnexpectedEof,
                            ))),
                        };
                    }
                    Ok(n) => {
                        self.rpos = 0;
                        self.rlen = n;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        return Ok(Progress::NeedSocket)
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(RosError::Io(e)),
                }
            }
            let avail = &self.rbuf[self.rpos..self.rlen];
            match &mut self.state {
                ReadState::Prefix { prefix, filled } => {
                    let take = avail.len().min(4 - *filled);
                    prefix[*filled..*filled + take].copy_from_slice(&avail[..take]);
                    *filled += take;
                    self.rpos += take;
                    if *filled < 4 {
                        continue;
                    }
                    let len = u32::from_le_bytes(*prefix) as usize;
                    if len > core.config.max_frame_len {
                        // Protocol violation (a corrupt or hostile prefix
                        // can claim up to 4 GiB): reject before allocating
                        // anything and tear the connection down — the
                        // stream cannot be trusted to be in sync anymore.
                        core.metrics
                            .frame_len_rejects
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(RosError::FrameTooLarge {
                            len,
                            max: core.config.max_frame_len,
                        });
                    }
                    match D::new_slot(len) {
                        Ok(slot) => {
                            self.state = ReadState::Body {
                                slot,
                                len,
                                filled: 0,
                            };
                        }
                        Err(_) => {
                            // Oversized for this message type (but within
                            // the transport cap): skip the body to stay in
                            // sync. The frame still occupied a wire slot;
                            // consume its sidecar note so it does not
                            // accumulate.
                            core.decode_errors.fetch_add(1, Ordering::Relaxed);
                            core.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                            if core.trace.is_some() {
                                let _ = tracer().sidecar().take(self.conn_key, self.wire_seq);
                            }
                            self.wire_seq += 1;
                            self.state = ReadState::Skip { remaining: len };
                        }
                    }
                }
                ReadState::Body { slot, len, filled } => {
                    let take = avail.len().min(*len - *filled);
                    slot.as_mut_slice()[*filled..*filled + take].copy_from_slice(&avail[..take]);
                    *filled += take;
                    self.rpos += take;
                }
                ReadState::Skip { remaining } => {
                    let take = avail.len().min(*remaining);
                    *remaining -= take;
                    self.rpos += take;
                }
            }
        }
    }

    /// A complete body sits in its slot: run the delivery tail of the
    /// paper's Fig. 9 — recover the trace id, verify (optional), finish,
    /// invoke the callback — and reset for the next prefix.
    fn deliver(&mut self, core: &Arc<SubCore<D>>) -> Result<Progress, RosError> {
        let state = std::mem::replace(
            &mut self.state,
            ReadState::Prefix {
                prefix: [0; 4],
                filled: 0,
            },
        );
        let ReadState::Body { mut slot, len, .. } = state else {
            unreachable!("deliver outside Body");
        };
        let seq = self.wire_seq;
        self.wire_seq += 1;
        let trace = core.trace.as_deref();
        // Recover the frame's trace id from the writer's sidecar note; the
        // `wire_read` span starts at the writer's send timestamp. The last
        // frame byte wakes this loop at the same moment the writer moves
        // to stamp its completion time, so wait a bounded moment for the
        // note to settle; if it still hasn't (writer preempted), only the
        // id is recovered — measuring from the provisional write-start
        // stamp would double-count `wire_write`. (A same-process writer
        // shares this reactor thread, so its note is always settled by the
        // time this dispatch runs — the wait only triggers cross-process.)
        let (id, mut t_prev) = match trace {
            Some(table) => {
                match tracer()
                    .sidecar()
                    .take_settled(self.conn_key, seq, SIDECAR_SETTLE_WAIT)
                {
                    Some(note) if note.trace_id != 0 => {
                        let t = now_nanos();
                        if note.settled {
                            tracer().span(
                                table,
                                Stage::WireRead,
                                Tier::Tcp,
                                note.trace_id,
                                note.sent_ns,
                                t,
                            );
                        }
                        (note.trace_id, t)
                    }
                    _ => (0, 0),
                }
            }
            None => (0, 0),
        };
        if core.config.validate_on_receive {
            // A projected link carries sub-frames: unselected fields are
            // deliberately zeroed, which the full verifier would accept but
            // the projected verifier additionally *requires* — so corrupt
            // leftovers in unselected pairs are caught, not adopted.
            let frame_ok = match (self.projected, core.projection.as_deref()) {
                (true, Some(projection)) => {
                    projection.verify_projected(slot.as_mut_slice()).is_ok()
                }
                _ => D::verify_frame(slot.as_mut_slice()).is_ok(),
            };
            if !frame_ok {
                // Structurally corrupt: drop the frame without adopting
                // it. Framing is length-prefixed, so the stream stays in
                // sync and the connection lives on.
                core.metrics.verify_rejects.fetch_add(1, Ordering::Relaxed);
                return Ok(Progress::Frame);
            }
            if let (Some(table), true) = (trace, id != 0) {
                let t = now_nanos();
                tracer().span(table, Stage::Verify, Tier::Tcp, id, t_prev, t);
                t_prev = t;
            }
        }
        match D::finish_slot(slot) {
            Ok(msg) => {
                if let (Some(table), true) = (trace, id != 0) {
                    let t = now_nanos();
                    tracer().span(table, Stage::Adopt, Tier::Tcp, id, t_prev, t);
                    t_prev = t;
                }
                core.received.fetch_add(1, Ordering::Relaxed);
                core.received_bytes.fetch_add(len as u64, Ordering::Relaxed);
                core.metrics.frames_received.fetch_add(1, Ordering::Relaxed);
                core.metrics
                    .bytes_received
                    .fetch_add(len as u64, Ordering::Relaxed);
                (core.callback)(msg);
                if let (Some(table), true) = (trace, id != 0) {
                    let t = now_nanos();
                    tracer().span(table, Stage::Callback, Tier::Tcp, id, t_prev, t);
                }
            }
            Err(_) => {
                core.decode_errors.fetch_add(1, Ordering::Relaxed);
                core.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(Progress::Frame)
    }

    /// The connection is over (EOF, error, or shutdown): hand the box back
    /// to its supervision — which decides on a reconnect, briefly and
    /// nonblockingly, right here on the reactor thread — and close. The
    /// close drops this handler and with it the socket.
    fn conclude(&mut self, result: Result<(), RosError>, ctl: &mut Ctl) {
        if let Some(sup) = self.sup.take() {
            sup.core.streams.lock().remove(&self.stream_key);
            sup.resume(result, true, false);
        }
        ctl.close();
    }
}

/// Master-watcher state: endpoints that arrive before the core is built
/// are buffered; afterwards they launch supervisions directly. The weak
/// reference keeps the watcher from pinning a dropped subscription alive.
enum WatchState<D: Decode> {
    Pending(Vec<PublisherEndpoint>),
    Live(Weak<SubCore<D>>),
}

/// A live subscription: holds the callback and the per-publisher
/// supervisions.
///
/// Messages stop being delivered when the `Subscriber` is dropped (the
/// paper's `ros::Subscriber` semantics).
pub struct Subscriber<D: Decode> {
    core: Arc<SubCore<D>>,
}

impl<D: Decode> Subscriber<D> {
    pub(crate) fn create_with<F>(
        master: &Master,
        topic: &str,
        options: SubscriberOptions,
        machine: MachineId,
        default_config: TransportConfig,
        callback: F,
    ) -> Result<Self, RosError>
    where
        F: Fn(D) + Send + Sync + 'static,
    {
        let config = options.transport.unwrap_or(default_config);
        let trace = if options.trace {
            tracer().arm();
            Some(tracer().topic(topic))
        } else {
            None
        };
        // Resolve the requested projection against the message type's
        // schema up front: an unknown or unprojectable path fails the
        // subscription here, loudly, instead of silently degrading every
        // link to full frames.
        let projection = match &options.project {
            Some(paths) => {
                let Some(schema) = D::schema() else {
                    return Err(RosError::Rejected(format!(
                        "projection requires a layout schema, but `{}` exports none",
                        D::topic_type()
                    )));
                };
                let refs: Vec<&str> = paths.iter().map(String::as_str).collect();
                Some(Arc::new(rossf_sfm::Projection::resolve(schema, &refs)?))
            }
            None => None,
        };
        // The watcher callback fires under no lock of ours, possibly
        // before the core exists (a publisher registering concurrently
        // with us): buffer endpoints until the core is live, then launch
        // supervisions directly. Returning `false` after shutdown lets the
        // master prune the watcher entry.
        let cell: Arc<Mutex<WatchState<D>>> = Arc::new(Mutex::new(WatchState::Pending(Vec::new())));
        let watch_cell = Arc::clone(&cell);
        let (endpoints, registration) = master.register_subscriber_watch(
            topic,
            D::topic_type(),
            Arc::new(move |ep| {
                let mut state = watch_cell.lock();
                match &mut *state {
                    WatchState::Pending(buf) => {
                        buf.push(ep);
                        true
                    }
                    WatchState::Live(weak) => match weak.upgrade() {
                        // Relaxed: standalone exit flag; a stale read only
                        // costs one futile supervision launch, which
                        // re-checks it.
                        Some(core) if !core.shutdown.load(Ordering::Relaxed) => {
                            drop(state);
                            Supervision::launch(core, ep);
                            true
                        }
                        _ => false,
                    },
                }
            }),
        )?;
        let core = Arc::new(SubCore {
            topic: topic.to_string(),
            machine,
            master: master.clone(),
            registration,
            config,
            metrics: master.metrics().topic(topic),
            callback: Box::new(callback),
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(HashMap::new()),
            next_stream_key: AtomicU64::new(0),
            received: AtomicU64::new(0),
            received_bytes: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            connected: AtomicU64::new(0),
            reconnect_attempts: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            trace,
            projection,
        });
        // Go live: endpoints buffered by the watcher while the core was
        // being built are launched alongside the registration snapshot.
        // (The snapshot and the watcher installation were atomic under the
        // master's shard lock, so the two sets are disjoint and complete.)
        let buffered = {
            let mut state = cell.lock();
            match std::mem::replace(&mut *state, WatchState::Live(Arc::downgrade(&core))) {
                WatchState::Pending(buf) => buf,
                WatchState::Live(_) => Vec::new(),
            }
        };
        for ep in endpoints.into_iter().chain(buffered) {
            Supervision::launch(Arc::clone(&core), ep);
        }
        Ok(Subscriber { core })
    }

    /// The topic subscribed to.
    pub fn topic(&self) -> &str {
        &self.core.topic
    }

    /// Messages delivered to the callback so far.
    ///
    /// Counter getters use `Relaxed` loads: each counter is internally
    /// consistent on its own and none is used to publish other memory.
    pub fn received(&self) -> u64 {
        self.core.received.load(Ordering::Relaxed)
    }

    /// Total payload bytes delivered (the numerator of a `rostopic bw`
    /// style bandwidth estimate).
    pub fn received_bytes(&self) -> u64 {
        self.core.received_bytes.load(Ordering::Relaxed)
    }

    /// Frames that failed decoding/adoption.
    pub fn decode_errors(&self) -> u64 {
        self.core.decode_errors.load(Ordering::Relaxed)
    }

    /// Frames rejected by the structural verifier
    /// (`TransportConfig::validate_on_receive`) and dropped unadopted.
    pub fn verify_rejects(&self) -> u64 {
        self.core.metrics.verify_rejects.load(Ordering::Relaxed)
    }

    /// Publisher connections that completed the handshake.
    pub fn connection_count(&self) -> u64 {
        self.core.connected.load(Ordering::Relaxed)
    }

    /// Connection attempts made after a connection died (successful or
    /// not).
    pub fn reconnect_attempts(&self) -> u64 {
        self.core.reconnect_attempts.load(Ordering::Relaxed)
    }

    /// Reconnections that completed a handshake after a previous
    /// connection to the same publisher registration died.
    pub fn reconnects(&self) -> u64 {
        self.core.reconnects.load(Ordering::Relaxed)
    }

    /// The shared per-topic transport metrics this subscription reports
    /// into.
    pub fn metrics(&self) -> Arc<TransportMetrics> {
        Arc::clone(&self.core.metrics)
    }

    /// The resolved field projection this subscription negotiates with
    /// publishers, when created with `SubscriberOptions::project(..)`.
    /// Useful as a receive-side *view* on the zero-copy tiers, which
    /// always deliver the full frame.
    pub fn projection(&self) -> Option<&rossf_sfm::Projection> {
        self.core.projection.as_deref()
    }

    /// One coherent snapshot of this subscription's counters.
    pub fn stats(&self) -> SubscriberStats {
        let transport = self.core.metrics.snapshot();
        SubscriberStats {
            received: self.received(),
            received_bytes: self.received_bytes(),
            decode_errors: self.decode_errors(),
            verify_rejects: self.verify_rejects(),
            connections: self.connection_count(),
            reconnect_attempts: self.reconnect_attempts(),
            reconnects: self.reconnects(),
            bytes_sent: transport.bytes_sent,
            bytes_received: transport.bytes_received,
            transport,
        }
    }
}

impl<D: Decode> Drop for Subscriber<D> {
    fn drop(&mut self) {
        // Relaxed: standalone exit flag — every reader either polls it in
        // a loop or re-checks it under the streams lock, which provides
        // the ordering for the map cleanup below.
        self.core.shutdown.store(true, Ordering::Relaxed);
        self.core
            .master
            .unregister_subscriber(&self.core.topic, self.core.registration);
        // Unblock reader threads stuck in read().
        for s in self.core.streams.lock().values() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl<D: Decode> std::fmt::Debug for Subscriber<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("topic", &self.core.topic)
            .field("received", &self.received())
            .field("reconnects", &self.reconnects())
            .finish()
    }
}
