//! The subscriber side of a topic.
//!
//! `subscribe` registers a callback with the master and connects to every
//! current and future publisher of the topic. Each publisher endpoint is
//! owned by a *supervisor* thread: it runs one connection at a time (the
//! reader loop of the paper's Fig. 9 — read the frame length, obtain a
//! receive slot from the [`Decode`] impl, read the payload into it, finish,
//! invoke the callback) and, when the connection dies while the publisher
//! is still registered, re-resolves the endpoint via the master and
//! reconnects under the node's
//! [`BackoffPolicy`](crate::config::BackoffPolicy). A publisher that
//! unregisters ends its supervisor; a replacement publisher arrives through
//! the master's watcher channel with a fresh registration and gets a fresh
//! supervisor.

use crate::config::TransportConfig;
use crate::error::RosError;
use crate::fastpath::{LocalAttach, FASTPATH_FIELD};
use crate::master::{Master, PublisherEndpoint};
use crate::metrics::TransportMetrics;
use crate::options::{SubscriberOptions, SubscriberStats};
use crate::shm::{SHM_EPOCH_FIELD, SHM_FD_FIELD, SHM_FIELD, SHM_PID_FIELD, SHM_PUB_PID_FIELD};
use crate::traits::{Decode, RecvSlot};
use crate::wire::{read_frame_len, ConnectionHeader};
use crossbeam::channel::RecvTimeoutError;
use rossf_netsim::{FaultAction, MachineId};
use rossf_shm::{ShmReader, TakeError};
use rossf_trace::{now_nanos, tracer, Stage, Tier, TopicTrace};
use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// How long a traced reader waits for the writer's sidecar note to carry
/// the write-*completion* stamp before giving up on the `wire_read` span.
/// The writer settles the note within microseconds of the last frame byte;
/// this bound only matters when the writer thread is preempted in between.
const SIDECAR_SETTLE_WAIT: Duration = Duration::from_millis(2);

struct SubCore<D: Decode> {
    topic: String,
    machine: MachineId,
    master: Master,
    registration: u64,
    config: TransportConfig,
    metrics: Arc<TransportMetrics>,
    callback: Box<dyn Fn(D) + Send + Sync>,
    shutdown: AtomicBool,
    /// Live connection streams, keyed by a per-core serial so each reader
    /// removes exactly its own entry when the connection ends — dead
    /// streams never accumulate.
    streams: Mutex<HashMap<u64, TcpStream>>,
    next_stream_key: AtomicU64,
    received: AtomicU64,
    received_bytes: AtomicU64,
    decode_errors: AtomicU64,
    connected: AtomicU64,
    reconnect_attempts: AtomicU64,
    reconnects: AtomicU64,
    /// The topic's tracing table when this subscription was created with
    /// `SubscriberOptions::trace(true)`; `None` keeps the receive path free
    /// of clock reads and histogram writes.
    trace: Option<Arc<TopicTrace>>,
}

impl<D: Decode> SubCore<D> {
    /// Own one publisher endpoint for the life of its registration:
    /// connect, run the reader loop, and on abnormal death reconnect with
    /// capped exponential backoff as long as the master still lists the
    /// registration.
    fn supervise(self: Arc<Self>, ep: PublisherEndpoint) {
        // Failed attempts since the last healthy connection.
        let mut attempt: u32 = 0;
        // Whether any connection to this endpoint ever completed a
        // handshake (a later success is then a *re*connect).
        let mut was_connected = false;
        // Once a granted shm link fails to attach (e.g. the `/proc` fd
        // hand-off is denied by a ptrace-scope policy), stop offering the
        // capability to this endpoint: the next handshake omits the offer
        // and the publisher serves plain TCP instead.
        let mut shm_blocked = false;
        loop {
            // Relaxed: standalone exit flag, polled — a stale read
            // only costs one extra loop iteration.
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let mut handshaken = false;
            let mut shm_attach_failed = false;
            let offer_shm = !shm_blocked;
            let result = match self.local_port(&ep) {
                Some(port) => {
                    let r = self.run_local_connection(port, was_connected, &mut handshaken);
                    match r {
                        // The publisher refused the *capability*, not the
                        // subscription (peer predates the fast path): fall
                        // back to plain TCP in this same iteration.
                        Err(RosError::Rejected(ref msg))
                            if !handshaken && msg.contains(FASTPATH_FIELD) =>
                        {
                            self.run_connection(
                                &ep,
                                was_connected,
                                &mut handshaken,
                                offer_shm,
                                &mut shm_attach_failed,
                            )
                        }
                        other => other,
                    }
                }
                None => self.run_connection(
                    &ep,
                    was_connected,
                    &mut handshaken,
                    offer_shm,
                    &mut shm_attach_failed,
                ),
            };
            if shm_attach_failed {
                shm_blocked = true;
                self.metrics
                    .shm_attach_failures
                    .fetch_add(1, Ordering::Relaxed);
            }
            if handshaken {
                was_connected = true;
                // A handshake whose shm grant could not be attached never
                // delivered a frame: keep escalating backoff instead of
                // restarting the schedule on every futile grant.
                if !shm_attach_failed {
                    attempt = 0; // healthy link existed; restart the schedule
                }
                self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
            }
            // Relaxed: standalone exit flag, polled — a stale read
            // only costs one extra loop iteration.
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match result {
                // The peer refused this subscription outright (type or
                // endianness mismatch): retrying cannot change the answer.
                // An unattachable (or malformed) shm grant is exempt: the
                // retry renegotiates without the offer, which *can* change
                // the answer.
                Err(RosError::Rejected(_)) | Err(RosError::TypeMismatch { .. })
                    if !shm_attach_failed =>
                {
                    return
                }
                // Clean EOF or a transport-level failure: retryable.
                _ => {}
            }
            // Reconnect only while this exact registration is still
            // current; a replacement publisher has a fresh id and arrives
            // via the watcher channel.
            if self.master.lookup_publisher(&self.topic, ep.id).is_none() {
                return;
            }
            if self.config.backoff.exhausted(attempt) {
                return;
            }
            let delay = self
                .config
                .backoff
                .delay(attempt, ep.id ^ self.registration);
            attempt = attempt.saturating_add(1);
            self.reconnect_attempts.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .reconnect_attempts
                .fetch_add(1, Ordering::Relaxed);
            if !self.sleep_unless_shutdown(delay) {
                return;
            }
        }
    }

    /// Sleep `total`, polling the shutdown flag so teardown is never
    /// delayed by a pending backoff. Returns `false` if shut down.
    fn sleep_unless_shutdown(&self, total: Duration) -> bool {
        let deadline = Instant::now() + total;
        loop {
            // Relaxed: standalone exit flag, polled — a stale read
            // only costs one extra loop iteration.
            if self.shutdown.load(Ordering::Relaxed) {
                return false;
            }
            let now = Instant::now();
            if now >= deadline {
                return true;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(20)));
        }
    }

    /// The publisher's local attach port, if the zero-copy fast path
    /// applies to this endpoint: both sides opted in, same simulated
    /// machine, and the publisher lives in this process (its port is
    /// registered with our master).
    fn local_port(&self, ep: &PublisherEndpoint) -> Option<Arc<dyn LocalAttach>> {
        if self.config.enable_fastpath && ep.machine == self.machine {
            self.master.local_port(ep.id)
        } else {
            None
        }
    }

    /// One fast-path attachment lifetime: the pointer-handoff analogue of
    /// [`SubCore::reader_loop`]. Frames arrive as already-encoded
    /// [`OutFrame`](crate::OutFrame)s straight from the publisher's
    /// transmission queue and are adopted via [`Decode::from_local_frame`]
    /// — for serialization-free messages, the subscriber object points at
    /// the publisher's allocation. Fault injection, `validate_on_receive`,
    /// and all metrics accounting mirror the socket path.
    fn run_local_connection(
        &self,
        port: Arc<dyn LocalAttach>,
        is_reconnect: bool,
        handshaken: &mut bool,
    ) -> Result<(), RosError> {
        let request = ConnectionHeader::new()
            .with("topic", &self.topic)
            .with("type", D::topic_type())
            .with("machine", self.machine.0.to_string())
            .with("endian", ConnectionHeader::native_endian())
            .with(FASTPATH_FIELD, "1");
        let sink = port.attach_local(&request)?;
        // Release the strong reference immediately: holding it through the
        // receive loop would keep the publisher core (and its master
        // registration) alive after the last `Publisher` handle drops. The
        // sink's queue disconnects when the publisher tears down.
        drop(port);
        if let Some(err) = sink.reply.get("error") {
            return Err(RosError::Rejected(err.to_string()));
        }
        if let Some(endian) = sink.reply.get("endian") {
            if endian != ConnectionHeader::native_endian() {
                return Err(RosError::Rejected(format!(
                    "endianness mismatch: publisher is {endian}"
                )));
            }
        }
        self.connected.fetch_add(1, Ordering::Relaxed);
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);
        *handshaken = true;
        if is_reconnect {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            self.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
        }

        let trace = self.trace.as_deref();
        loop {
            // Relaxed: standalone exit flag, polled — a stale read
            // only costs one extra loop iteration.
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            // Short timeout so shutdown is observed promptly; there is no
            // socket to shut down from `Drop` on this path.
            let frame = match sink.recv_timeout(Duration::from_millis(20)) {
                Ok(frame) => frame,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break, // publisher gone
            };
            // The loopback link's fault injector applies to pointer handoff
            // exactly as it does to socket writes.
            match sink.frame_action() {
                FaultAction::Pass => {}
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Drop => {
                    self.metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                FaultAction::Sever => {
                    // The frame is lost and the attachment is cut; re-attach
                    // is refused until the link heals, so report retryable.
                    self.metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
            }
            // Pointer handoff needs no sidecar: the trace id rides on the
            // frame's own tag, and the queue dwell (plus any injected
            // delay) is the `enqueue` span.
            let tag = frame.trace();
            let (id, mut t_prev) = match (trace, tag.id) {
                (Some(table), id) if id != 0 && tag.enqueued_ns != 0 => {
                    let t = now_nanos();
                    tracer().span(
                        table,
                        Stage::Enqueue,
                        Tier::Fastpath,
                        id,
                        tag.enqueued_ns,
                        t,
                    );
                    (id, t)
                }
                _ => (0, 0),
            };
            let len = frame.len();
            // There is no writer thread on this path: account the "send" at
            // the moment of delivery so both paths report the same totals.
            self.metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
            self.metrics
                .bytes_sent
                .fetch_add(len as u64, Ordering::Relaxed);
            self.metrics.fastpath_frames.fetch_add(1, Ordering::Relaxed);
            if self.config.validate_on_receive {
                if D::verify_frame(frame.as_slice()).is_err() {
                    self.metrics.verify_rejects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let (Some(table), true) = (trace, id != 0) {
                    let t = now_nanos();
                    tracer().span(table, Stage::Verify, Tier::Fastpath, id, t_prev, t);
                    t_prev = t;
                }
            }
            let decoded = D::from_local_frame(&frame);
            if let (Some(table), true, true) = (trace, id != 0, decoded.is_ok()) {
                let t = now_nanos();
                tracer().span(table, Stage::Adopt, Tier::Fastpath, id, t_prev, t);
                t_prev = t;
            }
            match decoded {
                Ok(msg) => {
                    self.received.fetch_add(1, Ordering::Relaxed);
                    self.received_bytes.fetch_add(len as u64, Ordering::Relaxed);
                    self.metrics.frames_received.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .bytes_received
                        .fetch_add(len as u64, Ordering::Relaxed);
                    (self.callback)(msg);
                    if let (Some(table), true) = (trace, id != 0) {
                        let t = now_nanos();
                        tracer().span(table, Stage::Callback, Tier::Fastpath, id, t_prev, t);
                    }
                }
                Err(_) => {
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }

    /// One connection lifetime: connect, handshake, read frames until the
    /// stream ends. The stream is registered in `streams` for the duration
    /// so `Drop` can unblock it, and always removed on the way out.
    fn run_connection(
        &self,
        ep: &PublisherEndpoint,
        is_reconnect: bool,
        handshaken: &mut bool,
        offer_shm: bool,
        shm_attach_failed: &mut bool,
    ) -> Result<(), RosError> {
        let stream = TcpStream::connect(ep.addr)?;
        stream.set_nodelay(true)?;
        let key = self.next_stream_key.fetch_add(1, Ordering::Relaxed);
        {
            let mut streams = self.streams.lock();
            // Relaxed: re-checked under the streams lock, which orders
            // this insert against Drop's drain of the map.
            if self.shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
            streams.insert(key, stream.try_clone()?);
        }
        let result = self.reader_loop(
            stream,
            is_reconnect,
            handshaken,
            offer_shm,
            shm_attach_failed,
        );
        self.streams.lock().remove(&key);
        result
    }

    fn reader_loop(
        &self,
        stream: TcpStream,
        is_reconnect: bool,
        handshaken: &mut bool,
        offer_shm: bool,
        shm_attach_failed: &mut bool,
    ) -> Result<(), RosError> {
        // A peer that accepts the connection but never answers the
        // handshake must not pin this thread forever.
        stream.set_read_timeout(Some(self.config.handshake_timeout))?;
        let mut write_half = stream.try_clone()?;
        let mut request = ConnectionHeader::new()
            .with("topic", &self.topic)
            .with("type", D::topic_type())
            .with("machine", self.machine.0.to_string())
            .with("endian", ConnectionHeader::native_endian());
        // Offer the shared-memory tier: the publisher grants it only when
        // both sides share a machine and (normally) live in different
        // processes, so the offer also carries our pid. The offer is
        // withheld after a grant failed to attach (`offer_shm == false`)
        // so the publisher serves this connection over plain TCP.
        if offer_shm && self.config.enable_shm && rossf_shm::supported() {
            request = request
                .with(SHM_FIELD, "1")
                .with(SHM_PID_FIELD, std::process::id().to_string());
        }
        request.write_to(&mut write_half)?;

        let mut reader = BufReader::with_capacity(256 * 1024, stream);
        let reply = ConnectionHeader::read_from(&mut reader)?;
        if let Some(err) = reply.get("error") {
            return Err(RosError::Rejected(err.to_string()));
        }
        if let Some(endian) = reply.get("endian") {
            if endian != ConnectionHeader::native_endian() {
                // §4.4.1: a serialization-free frame arrives in the
                // publisher's endianness; conversion is out of scope, so a
                // cross-endian link is refused outright.
                return Err(RosError::Rejected(format!(
                    "endianness mismatch: publisher is {endian}"
                )));
            }
        }
        // Steady-state reads block indefinitely; teardown happens via
        // socket shutdown, not timeouts.
        reader.get_ref().set_read_timeout(None)?;
        self.connected.fetch_add(1, Ordering::Relaxed);
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);
        *handshaken = true;
        if is_reconnect {
            self.reconnects.fetch_add(1, Ordering::Relaxed);
            self.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
        }

        if reply.get(SHM_FIELD) == Some("1") {
            // The publisher granted the shared-memory tier and is now in
            // its ring-producer loop: frames arrive as descriptors, not
            // socket bytes. The socket stays open as the liveness channel.
            return self.run_shm_connection(reader.get_ref(), &reply, shm_attach_failed);
        }

        // The connection key mirrors the writer's `conn_key(local, peer)`:
        // our peer is its local address, so the pair (and hence the key)
        // agrees. A reconnect gets a fresh ephemeral port and therefore a
        // fresh key — sequence numbers restart cleanly.
        let trace = self.trace.as_deref();
        let conn_key = match (reader.get_ref().peer_addr(), reader.get_ref().local_addr()) {
            (Ok(peer), Ok(local)) => rossf_trace::conn_key(&peer.to_string(), &local.to_string()),
            _ => 0,
        };
        // Frames consumed off the stream, in wire order; counted
        // unconditionally so it stays in lockstep with the writer's count
        // of frames actually written.
        let mut wire_seq: u64 = 0;

        loop {
            // Relaxed: standalone exit flag, polled — a stale read
            // only costs one extra loop iteration.
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let Some(len) = read_frame_len(&mut reader)? else {
                break; // publisher closed
            };
            if len > self.config.max_frame_len {
                // Protocol violation (a corrupt or hostile prefix can claim
                // up to 4 GiB): reject before allocating anything and tear
                // the connection down — the stream cannot be trusted to be
                // in sync anymore.
                self.metrics
                    .frame_len_rejects
                    .fetch_add(1, Ordering::Relaxed);
                return Err(RosError::FrameTooLarge {
                    len,
                    max: self.config.max_frame_len,
                });
            }
            match D::new_slot(len) {
                Ok(mut slot) => {
                    reader.read_exact(slot.as_mut_slice())?;
                    let seq = wire_seq;
                    wire_seq += 1;
                    // Recover the frame's trace id from the writer's
                    // sidecar note; the `wire_read` span starts at the
                    // writer's send timestamp. The last frame byte wakes
                    // this thread at the same moment the writer moves to
                    // stamp its completion time, so wait a bounded moment
                    // for the note to settle; if it still hasn't (writer
                    // preempted), only the id is recovered — measuring from
                    // the provisional write-start stamp would double-count
                    // `wire_write`.
                    let (id, mut t_prev) = match trace {
                        Some(table) => match tracer().sidecar().take_settled(
                            conn_key,
                            seq,
                            SIDECAR_SETTLE_WAIT,
                        ) {
                            Some(note) if note.trace_id != 0 => {
                                let t = now_nanos();
                                if note.settled {
                                    tracer().span(
                                        table,
                                        Stage::WireRead,
                                        Tier::Tcp,
                                        note.trace_id,
                                        note.sent_ns,
                                        t,
                                    );
                                }
                                (note.trace_id, t)
                            }
                            _ => (0, 0),
                        },
                        None => (0, 0),
                    };
                    if self.config.validate_on_receive {
                        if D::verify_frame(slot.as_mut_slice()).is_err() {
                            // Structurally corrupt: drop the frame without
                            // adopting it. Framing is length-prefixed, so the
                            // stream stays in sync and the connection lives on.
                            self.metrics.verify_rejects.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        if let (Some(table), true) = (trace, id != 0) {
                            let t = now_nanos();
                            tracer().span(table, Stage::Verify, Tier::Tcp, id, t_prev, t);
                            t_prev = t;
                        }
                    }
                    match D::finish_slot(slot) {
                        Ok(msg) => {
                            if let (Some(table), true) = (trace, id != 0) {
                                let t = now_nanos();
                                tracer().span(table, Stage::Adopt, Tier::Tcp, id, t_prev, t);
                                t_prev = t;
                            }
                            self.received.fetch_add(1, Ordering::Relaxed);
                            self.received_bytes.fetch_add(len as u64, Ordering::Relaxed);
                            self.metrics.frames_received.fetch_add(1, Ordering::Relaxed);
                            self.metrics
                                .bytes_received
                                .fetch_add(len as u64, Ordering::Relaxed);
                            (self.callback)(msg);
                            if let (Some(table), true) = (trace, id != 0) {
                                let t = now_nanos();
                                tracer().span(table, Stage::Callback, Tier::Tcp, id, t_prev, t);
                            }
                        }
                        Err(_) => {
                            self.decode_errors.fetch_add(1, Ordering::Relaxed);
                            self.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(_) => {
                    // Oversized for this message type (but within the
                    // transport cap): skip the frame's bytes to stay in
                    // sync.
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                    std::io::copy(&mut (&mut reader).take(len as u64), &mut std::io::sink())?;
                    // The skipped frame still occupied a wire slot; consume
                    // its note so the sidecar does not accumulate.
                    if trace.is_some() {
                        let _ = tracer().sidecar().take(conn_key, wire_seq);
                    }
                    wire_seq += 1;
                }
            }
        }
        Ok(())
    }

    /// Attach a granted shm link, honouring the injected attach fault
    /// (`TransportConfig::shm_attach_fault`), which stands in for the
    /// real-world `/proc/<pid>/fd` denials that cannot be provoked
    /// deterministically in a test.
    fn attach_shm(&self, pub_pid: u32, ctrl_fd: i32, epoch: u64) -> Result<ShmReader, RosError> {
        if self.config.shm_attach_fault {
            return Err(RosError::Io(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "injected shm attach fault",
            )));
        }
        ShmReader::connect(pub_pid, ctrl_fd, epoch).map_err(RosError::Io)
    }

    /// One shared-memory link lifetime: adopt the publisher's control
    /// segment and consume descriptors until either side tears down.
    /// Frames are mapped read-only straight out of the publisher's
    /// segments — zero subscriber-side payload copies for SFM messages.
    /// The handshake socket is kept open purely as a liveness channel:
    /// EOF means the publisher process is gone even if it never managed
    /// to mark the ring closed (crash recovery).
    fn run_shm_connection(
        &self,
        stream: &TcpStream,
        reply: &ConnectionHeader,
        shm_attach_failed: &mut bool,
    ) -> Result<(), RosError> {
        let field = |name: &str| -> Result<u64, RosError> {
            reply
                .get(name)
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| {
                    RosError::Rejected(format!("malformed shm grant: bad `{name}` field"))
                })
        };
        // Any failure between the grant and a working reader — malformed
        // grant fields, a `/proc` fd hand-off denied by the kernel's
        // ptrace-scope policy, an epoch mismatch from a recycled publisher
        // incarnation — flags `shm_attach_failed`: the supervisor then
        // redoes the handshake with the shm offer withheld and the
        // publisher serves plain TCP, instead of re-granting a link this
        // process can never attach.
        let parsed = (|| {
            Ok((
                field(SHM_PUB_PID_FIELD)? as u32,
                field(SHM_FD_FIELD)? as i32,
                field(SHM_EPOCH_FIELD)?,
            ))
        })();
        let (pub_pid, ctrl_fd, epoch) = match parsed {
            Ok(v) => v,
            Err(e) => {
                *shm_attach_failed = true;
                return Err(e);
            }
        };
        let shm = match self.attach_shm(pub_pid, ctrl_fd, epoch) {
            Ok(shm) => shm,
            Err(e) => {
                *shm_attach_failed = true;
                return Err(e);
            }
        };
        stream.set_nonblocking(true)?;

        let trace = self.trace.as_deref();
        let own_pid = std::process::id();
        let mut probe_stream = stream;
        let mut probe = [0u8; 1];
        loop {
            // Relaxed: standalone exit flag, polled — a stale read
            // only costs one extra loop iteration.
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let frame = match shm.take(Duration::from_millis(20)) {
                Ok(Some(frame)) => frame,
                Ok(None) => {
                    if shm.is_closed() && shm.pending() == 0 {
                        break; // graceful teardown, ring drained
                    }
                    // Liveness probe: a publisher that died without
                    // closing the ring leaves EOF (or an error) here.
                    match probe_stream.read(&mut probe) {
                        Ok(_) => break, // EOF, or protocol-violating bytes
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                        Err(_) => break,
                    }
                    continue;
                }
                Err(TakeError::Stale) => {
                    // Abandoned frame from a recycled publisher
                    // incarnation — counted like a decode failure.
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                // The ring can no longer be trusted to be in sync: tear
                // the link down (retryable under backoff).
                Err(TakeError::Corrupt(e)) => return Err(RosError::Io(e)),
            };
            let len = frame.len();
            let desc = *frame.descriptor();
            let (id, mut t_prev) = match trace {
                Some(table) if desc.trace_id != 0 => {
                    let t = now_nanos();
                    // The descriptor's timestamps are on the *publisher's*
                    // trace clock, meaningful here only when the publisher
                    // is this same process (the `shm_same_process` bench
                    // mode); a cross-process link skips the span rather
                    // than mixing clocks.
                    if pub_pid == own_pid && desc.pushed_ns != 0 {
                        tracer().span(
                            table,
                            Stage::WireRead,
                            Tier::Shm,
                            desc.trace_id,
                            desc.pushed_ns,
                            t,
                        );
                    }
                    (desc.trace_id, t)
                }
                _ => (0, 0),
            };
            if self.config.validate_on_receive {
                if D::verify_frame(frame.as_slice()).is_err() {
                    // Dropping the unadopted frame releases its segment
                    // reference; the ring stays in sync.
                    self.metrics.verify_rejects.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let (Some(table), true) = (trace, id != 0) {
                    let t = now_nanos();
                    tracer().span(table, Stage::Verify, Tier::Shm, id, t_prev, t);
                    t_prev = t;
                }
            }
            let decoded = D::from_mapped_frame(frame);
            if let (Some(table), true, true) = (trace, id != 0, decoded.is_ok()) {
                let t = now_nanos();
                tracer().span(table, Stage::Adopt, Tier::Shm, id, t_prev, t);
                t_prev = t;
            }
            match decoded {
                Ok(msg) => {
                    self.received.fetch_add(1, Ordering::Relaxed);
                    self.received_bytes.fetch_add(len as u64, Ordering::Relaxed);
                    self.metrics.frames_received.fetch_add(1, Ordering::Relaxed);
                    self.metrics
                        .bytes_received
                        .fetch_add(len as u64, Ordering::Relaxed);
                    (self.callback)(msg);
                    if let (Some(table), true) = (trace, id != 0) {
                        let t = now_nanos();
                        tracer().span(table, Stage::Callback, Tier::Shm, id, t_prev, t);
                    }
                }
                Err(_) => {
                    self.decode_errors.fetch_add(1, Ordering::Relaxed);
                    self.metrics.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(())
    }
}

/// A live subscription: holds the callback and the per-publisher
/// supervisor threads.
///
/// Messages stop being delivered when the `Subscriber` is dropped (the
/// paper's `ros::Subscriber` semantics).
pub struct Subscriber<D: Decode> {
    core: Arc<SubCore<D>>,
}

impl<D: Decode> Subscriber<D> {
    pub(crate) fn create_with<F>(
        master: &Master,
        topic: &str,
        options: SubscriberOptions,
        machine: MachineId,
        default_config: TransportConfig,
        callback: F,
    ) -> Result<Self, RosError>
    where
        F: Fn(D) + Send + Sync + 'static,
    {
        let config = options.transport.unwrap_or(default_config);
        let trace = if options.trace {
            tracer().arm();
            Some(tracer().topic(topic))
        } else {
            None
        };
        let (endpoints, watcher, registration) =
            master.register_subscriber(topic, D::topic_type())?;
        let core = Arc::new(SubCore {
            topic: topic.to_string(),
            machine,
            master: master.clone(),
            registration,
            config,
            metrics: master.metrics().topic(topic),
            callback: Box::new(callback),
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(HashMap::new()),
            next_stream_key: AtomicU64::new(0),
            received: AtomicU64::new(0),
            received_bytes: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            connected: AtomicU64::new(0),
            reconnect_attempts: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            trace,
        });
        for ep in endpoints {
            let c = Arc::clone(&core);
            std::thread::spawn(move || c.supervise(ep));
        }
        // Watcher: supervise publishers that appear later.
        let c = Arc::clone(&core);
        std::thread::spawn(move || {
            for ep in watcher.iter() {
                // Relaxed: standalone exit flag, polled — a stale read
                // only costs one extra loop iteration.
                if c.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let cc = Arc::clone(&c);
                std::thread::spawn(move || cc.supervise(ep));
            }
        });
        Ok(Subscriber { core })
    }

    /// The topic subscribed to.
    pub fn topic(&self) -> &str {
        &self.core.topic
    }

    /// Messages delivered to the callback so far.
    ///
    /// Counter getters use `Relaxed` loads: each counter is internally
    /// consistent on its own and none is used to publish other memory.
    pub fn received(&self) -> u64 {
        self.core.received.load(Ordering::Relaxed)
    }

    /// Total payload bytes delivered (the numerator of a `rostopic bw`
    /// style bandwidth estimate).
    pub fn received_bytes(&self) -> u64 {
        self.core.received_bytes.load(Ordering::Relaxed)
    }

    /// Frames that failed decoding/adoption.
    pub fn decode_errors(&self) -> u64 {
        self.core.decode_errors.load(Ordering::Relaxed)
    }

    /// Frames rejected by the structural verifier
    /// (`TransportConfig::validate_on_receive`) and dropped unadopted.
    pub fn verify_rejects(&self) -> u64 {
        self.core.metrics.verify_rejects.load(Ordering::Relaxed)
    }

    /// Publisher connections that completed the handshake.
    pub fn connection_count(&self) -> u64 {
        self.core.connected.load(Ordering::Relaxed)
    }

    /// Connection attempts made after a connection died (successful or
    /// not).
    pub fn reconnect_attempts(&self) -> u64 {
        self.core.reconnect_attempts.load(Ordering::Relaxed)
    }

    /// Reconnections that completed a handshake after a previous
    /// connection to the same publisher registration died.
    pub fn reconnects(&self) -> u64 {
        self.core.reconnects.load(Ordering::Relaxed)
    }

    /// The shared per-topic transport metrics this subscription reports
    /// into.
    pub fn metrics(&self) -> Arc<TransportMetrics> {
        Arc::clone(&self.core.metrics)
    }

    /// One coherent snapshot of this subscription's counters.
    pub fn stats(&self) -> SubscriberStats {
        SubscriberStats {
            received: self.received(),
            received_bytes: self.received_bytes(),
            decode_errors: self.decode_errors(),
            verify_rejects: self.verify_rejects(),
            connections: self.connection_count(),
            reconnect_attempts: self.reconnect_attempts(),
            reconnects: self.reconnects(),
            transport: self.core.metrics.snapshot(),
        }
    }
}

impl<D: Decode> Drop for Subscriber<D> {
    fn drop(&mut self) {
        // Relaxed: standalone exit flag — every reader either polls it in
        // a loop or re-checks it under the streams lock, which provides
        // the ordering for the map cleanup below.
        self.core.shutdown.store(true, Ordering::Relaxed);
        self.core
            .master
            .unregister_subscriber(&self.core.topic, self.core.registration);
        // Unblock reader threads stuck in read().
        for s in self.core.streams.lock().values() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl<D: Decode> std::fmt::Debug for Subscriber<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("topic", &self.core.topic)
            .field("received", &self.received())
            .field("reconnects", &self.reconnects())
            .finish()
    }
}
