//! The subscriber side of a topic.
//!
//! `subscribe` registers a callback with the master and connects to every
//! current and future publisher of the topic. Each connection runs a reader
//! thread: read the frame length, obtain a receive slot from the
//! [`Decode`] impl (for serialization-free messages the slot *is* the
//! message's final allocation), read the payload into it, finish, invoke
//! the callback — the paper's subscriber-side flow of Fig. 9.

use crate::error::RosError;
use crate::master::{Master, PublisherEndpoint};
use crate::traits::{Decode, RecvSlot};
use crate::wire::{read_frame_len, ConnectionHeader};
use rossf_netsim::MachineId;
use std::io::{BufReader, Read};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

struct SubCore<D: Decode> {
    topic: String,
    machine: MachineId,
    master: Master,
    registration: u64,
    callback: Box<dyn Fn(D) + Send + Sync>,
    shutdown: AtomicBool,
    streams: Mutex<Vec<TcpStream>>,
    received: AtomicU64,
    received_bytes: AtomicU64,
    decode_errors: AtomicU64,
    connected: AtomicU64,
}

impl<D: Decode> SubCore<D> {
    fn reader_loop(self: Arc<Self>, ep: PublisherEndpoint) -> Result<(), RosError> {
        let stream = TcpStream::connect(ep.addr)?;
        stream.set_nodelay(true)?;
        {
            let mut streams = self.streams.lock();
            if self.shutdown.load(Ordering::SeqCst) {
                return Ok(());
            }
            streams.push(stream.try_clone()?);
        }

        let mut write_half = stream.try_clone()?;
        ConnectionHeader::new()
            .with("topic", &self.topic)
            .with("type", D::topic_type())
            .with("machine", self.machine.0.to_string())
            .with("endian", ConnectionHeader::native_endian())
            .write_to(&mut write_half)?;

        let mut reader = BufReader::with_capacity(256 * 1024, stream);
        let reply = ConnectionHeader::read_from(&mut reader)?;
        if let Some(err) = reply.get("error") {
            return Err(RosError::Rejected(err.to_string()));
        }
        if let Some(endian) = reply.get("endian") {
            if endian != ConnectionHeader::native_endian() {
                // §4.4.1: a serialization-free frame arrives in the
                // publisher's endianness; conversion is out of scope, so a
                // cross-endian link is refused outright.
                return Err(RosError::Rejected(format!(
                    "endianness mismatch: publisher is {endian}"
                )));
            }
        }
        self.connected.fetch_add(1, Ordering::SeqCst);

        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Some(len) = read_frame_len(&mut reader)? else {
                break; // publisher closed
            };
            match D::new_slot(len) {
                Ok(mut slot) => {
                    reader.read_exact(slot.as_mut_slice())?;
                    match D::finish_slot(slot) {
                        Ok(msg) => {
                            self.received.fetch_add(1, Ordering::SeqCst);
                            self.received_bytes.fetch_add(len as u64, Ordering::SeqCst);
                            (self.callback)(msg);
                        }
                        Err(_) => {
                            self.decode_errors.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
                Err(_) => {
                    // Skip the frame's bytes to stay in sync.
                    self.decode_errors.fetch_add(1, Ordering::SeqCst);
                    std::io::copy(
                        &mut (&mut reader).take(len as u64),
                        &mut std::io::sink(),
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// A live subscription: holds the callback and the reader threads.
///
/// Messages stop being delivered when the `Subscriber` is dropped (the
/// paper's `ros::Subscriber` semantics).
pub struct Subscriber<D: Decode> {
    core: Arc<SubCore<D>>,
}

impl<D: Decode> Subscriber<D> {
    pub(crate) fn create<F>(
        master: &Master,
        topic: &str,
        machine: MachineId,
        callback: F,
    ) -> Result<Self, RosError>
    where
        F: Fn(D) + Send + Sync + 'static,
    {
        let (endpoints, watcher, registration) =
            master.register_subscriber(topic, D::topic_type())?;
        let core = Arc::new(SubCore {
            topic: topic.to_string(),
            machine,
            master: master.clone(),
            registration,
            callback: Box::new(callback),
            shutdown: AtomicBool::new(false),
            streams: Mutex::new(Vec::new()),
            received: AtomicU64::new(0),
            received_bytes: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            connected: AtomicU64::new(0),
        });
        for ep in endpoints {
            let c = Arc::clone(&core);
            std::thread::spawn(move || {
                let _ = c.reader_loop(ep);
            });
        }
        // Watcher: connect to publishers that appear later.
        let c = Arc::clone(&core);
        std::thread::spawn(move || {
            for ep in watcher.iter() {
                if c.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let cc = Arc::clone(&c);
                std::thread::spawn(move || {
                    let _ = cc.reader_loop(ep);
                });
            }
        });
        Ok(Subscriber { core })
    }

    /// The topic subscribed to.
    pub fn topic(&self) -> &str {
        &self.core.topic
    }

    /// Messages delivered to the callback so far.
    pub fn received(&self) -> u64 {
        self.core.received.load(Ordering::SeqCst)
    }

    /// Total payload bytes delivered (the numerator of a `rostopic bw`
    /// style bandwidth estimate).
    pub fn received_bytes(&self) -> u64 {
        self.core.received_bytes.load(Ordering::SeqCst)
    }

    /// Frames that failed decoding/adoption.
    pub fn decode_errors(&self) -> u64 {
        self.core.decode_errors.load(Ordering::SeqCst)
    }

    /// Publisher connections that completed the handshake.
    pub fn connection_count(&self) -> u64 {
        self.core.connected.load(Ordering::SeqCst)
    }
}

impl<D: Decode> Drop for Subscriber<D> {
    fn drop(&mut self) {
        self.core.shutdown.store(true, Ordering::SeqCst);
        self.core
            .master
            .unregister_subscriber(&self.core.topic, self.core.registration);
        // Unblock reader threads stuck in read().
        for s in self.core.streams.lock().iter() {
            let _ = s.shutdown(Shutdown::Both);
        }
    }
}

impl<D: Decode> std::fmt::Debug for Subscriber<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscriber")
            .field("topic", &self.core.topic)
            .field("received", &self.received())
            .finish()
    }
}
