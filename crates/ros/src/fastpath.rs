//! Zero-copy same-machine fast path (transport tier between the
//! in-process [`LocalBus`](crate::LocalBus) and remote TCP).
//!
//! When the master resolves a subscription whose publisher endpoint lives
//! on the same simulated machine *within the same process*, the subscriber
//! attaches to the publisher's transmission queue directly: `publish`
//! deposits the encoded [`OutFrame`] — for serialization-free messages, a
//! refcount-managed buffer pointer ([`rossf_sfm::PublishedBuffer`]) — and
//! the subscriber adopts that very allocation via
//! [`Decode::from_local_frame`](crate::Decode::from_local_frame). No
//! socket, no kernel copies, no re-materialization: publisher and
//! subscriber observe the *same* bytes, `Published → Destructed` governed
//! purely by the buffer refcount (paper §4.2).
//!
//! The capability is negotiated through the connection header (`fastpath`
//! field) and guarded by the `enable_fastpath` flag on
//! [`TransportConfig`](crate::TransportConfig): either side opting out
//! falls back to TCP transparently, producing byte-identical frames. The fast
//! path keeps the TCP path's invariants — it consults the loopback
//! [`FaultInjector`](rossf_netsim::FaultInjector) per frame, honors
//! `queue_size` backpressure with `frames_dropped` accounting, and runs
//! `validate_on_receive` when enabled.

use crate::error::RosError;
use crate::wire::{ConnectionHeader, OutFrame};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use rossf_netsim::{FaultAction, FaultInjector};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Header value marking both the subscriber's request and the publisher's
/// reply as fast-path capable.
pub(crate) const FASTPATH_FIELD: &str = "fastpath";

/// A publisher that can accept same-process subscribers without a socket.
///
/// Implemented by the publisher core; the master holds a `Weak` reference
/// in its local-port registry so a dropped publisher disappears from
/// endpoint resolution automatically.
pub(crate) trait LocalAttach: Send + Sync {
    /// Validate `header` exactly like the TCP handshake would and, on
    /// success, splice a new bounded transmission queue into the
    /// publisher's connection list, returning the subscriber's end.
    ///
    /// # Errors
    ///
    /// * [`RosError::Rejected`] for permanent refusals (type mismatch,
    ///   missing `fastpath` capability field) — mirrors the TCP `error=`
    ///   reply header.
    /// * [`RosError::Io`] for transient refusals (severed link, publisher
    ///   shutting down) — mirrors a TCP connect/handshake failure, so the
    ///   subscriber retries under its backoff schedule.
    fn attach_local(&self, header: &ConnectionHeader) -> Result<LocalSinkHandle, RosError>;
}

/// The subscriber's end of a fast-path attachment: the reply header, the
/// receiving half of the transmission queue, and the liveness flag shared
/// with the publisher's connection entry.
pub(crate) struct LocalSinkHandle {
    /// The publisher's reply header (type/topic/endian/fastpath), checked
    /// by the subscriber exactly like a TCP reply.
    pub(crate) reply: ConnectionHeader,
    /// Receiving end of the bounded per-connection transmission queue.
    pub(crate) rx: Receiver<OutFrame>,
    /// Cleared on drop so the publisher's `subscriber_count` and pruning
    /// see the detach without a writer thread.
    pub(crate) alive: Arc<AtomicBool>,
    /// The loopback link's fault injector, consulted once per frame —
    /// drop/delay/sever apply to pointer handoff exactly as to sockets.
    pub(crate) injector: Option<Arc<FaultInjector>>,
}

impl LocalSinkHandle {
    /// Wait up to `timeout` for the next queued frame.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] if no frame arrived (poll the shutdown
    /// flag and retry); [`RecvTimeoutError::Disconnected`] once the
    /// publisher dropped the sending half (connection over).
    pub(crate) fn recv_timeout(&self, timeout: Duration) -> Result<OutFrame, RecvTimeoutError> {
        self.rx.recv_timeout(timeout)
    }

    /// The fault action for the next frame crossing the loopback link.
    pub(crate) fn frame_action(&self) -> FaultAction {
        self.injector
            .as_ref()
            .map_or(FaultAction::Pass, |f| f.next_frame_action())
    }
}

impl Drop for LocalSinkHandle {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
    }
}
