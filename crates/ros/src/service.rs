//! ROS services: the request/response half of the ROS1 API.
//!
//! The paper optimizes the publish/subscribe path, but a credible ROS
//! substrate also serves `rosservice`-style calls; and the same
//! [`Encode`]/[`Decode`] machinery makes service payloads
//! serialization-free when the request/response types are SFM messages.
//!
//! Protocol: one TCP connection per client, a connection-header handshake
//! (`service=`, `req_type=`, `res_type=`), then strictly alternating
//! length-prefixed request/response frames.
//!
//! The server side is event-driven like the pub/sub tiers: the listener
//! and every client connection are nonblocking state machines on the
//! process-wide [reactor](rossf_reactor), handshakes run as short jobs on
//! the job pool, and each handler invocation runs as its own pool job (so
//! a slow handler stalls one worker, never the shared event loop). The
//! synchronous [`ServiceClient`] blocks in the *caller's* thread — it owns
//! no thread of its own.

use crate::error::RosError;
use crate::master::Master;
use crate::node::NodeHandle;
use crate::traits::{Decode, Encode, RecvSlot};
use crate::wire::{
    frame_len_prefix, grow_socket_buffers, read_frame_len, write_frame, ConnectionHeader,
};
use parking_lot::Mutex;
use rossf_reactor::{runtime, Ctl, Event, Handler, Reactor};
use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

/// A client that connects but never completes the header exchange must
/// not pin a pool worker forever.
const SVC_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Where a service server accepts client connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEndpoint {
    /// TCP address of the server's listener.
    pub addr: SocketAddr,
    /// Request type name.
    pub req_type: String,
    /// Response type name.
    pub res_type: String,
    /// Registration id.
    pub id: u64,
}

/// Master-side service registry (held by [`Master`]).
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    services: Mutex<HashMap<String, ServiceEndpoint>>,
}

impl ServiceRegistry {
    /// Register a server. Errors if the name is taken.
    ///
    /// # Errors
    ///
    /// [`RosError::Rejected`] when the service name is already registered.
    pub fn register(&self, name: &str, ep: ServiceEndpoint) -> Result<(), RosError> {
        let mut services = self.services.lock();
        if services.contains_key(name) {
            return Err(RosError::Rejected(format!(
                "service `{name}` already advertised"
            )));
        }
        services.insert(name.to_string(), ep);
        Ok(())
    }

    /// Remove a registration by id.
    pub fn unregister(&self, name: &str, id: u64) {
        let mut services = self.services.lock();
        if services.get(name).is_some_and(|ep| ep.id == id) {
            services.remove(name);
        }
    }

    /// Look up a service by name.
    pub fn lookup(&self, name: &str) -> Option<ServiceEndpoint> {
        self.services.lock().get(name).cloned()
    }

    /// Names of all registered services, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

struct ServerCore {
    name: String,
    master: Master,
    registration: u64,
    shutdown: AtomicBool,
    calls: AtomicU64,
    /// The acceptor's reactor registration, deregistered on drop (which
    /// drops the listener and closes it).
    listener_token: OnceLock<rossf_reactor::Token>,
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        // Relaxed: standalone exit flag for the acceptor and serve
        // handlers, re-checked by each before acting.
        self.shutdown.store(true, Ordering::Relaxed);
        self.master
            .services()
            .unregister(&self.name, self.registration);
        if let Some(token) = self.listener_token.get() {
            runtime().reactor.deregister(*token);
        }
    }
}

/// A live service server; dropping it withdraws the service.
pub struct ServiceServer {
    core: Arc<ServerCore>,
}

impl ServiceServer {
    /// Advertise `name` on `nh`, serving requests with `handler`.
    ///
    /// `Req` is what arrives (e.g. `Arc<M>` or `SfmShared<T>`); `Res` is
    /// what the handler returns (e.g. a plain message or `SfmBox<T>`).
    ///
    /// # Errors
    ///
    /// [`RosError::Rejected`] if the name is taken, or I/O errors binding
    /// the listener.
    pub fn advertise<Req, Res, F>(
        nh: &NodeHandle,
        name: &str,
        handler: F,
    ) -> Result<ServiceServer, RosError>
    where
        Req: Decode,
        Res: Encode + 'static,
        F: Fn(Req) -> Res + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let registration = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        nh.master().services().register(
            name,
            ServiceEndpoint {
                addr,
                req_type: Req::topic_type().to_string(),
                res_type: Res::topic_type().to_string(),
                id: registration,
            },
        )?;
        let core = Arc::new(ServerCore {
            name: name.to_string(),
            master: nh.master().clone(),
            registration,
            shutdown: AtomicBool::new(false),
            calls: AtomicU64::new(0),
            listener_token: OnceLock::new(),
        });
        listener.set_nonblocking(true)?;
        let fd = listener.as_raw_fd();
        let acceptor: SvcAcceptor<Req, Res, F> = SvcAcceptor {
            listener,
            core: Arc::downgrade(&core),
            handler: Arc::new(handler),
            _marker: PhantomData,
        };
        let token = runtime()
            .reactor
            .register(fd, true, false, Box::new(acceptor));
        let _ = core.listener_token.set(token);
        Ok(ServiceServer { core })
    }

    /// Requests served so far.
    pub fn calls(&self) -> u64 {
        // ORDER: pairs with the SeqCst fetch_add in `serve_connection` —
        // a caller that has received a response must observe its count.
        self.core.calls.load(Ordering::SeqCst)
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.core.name
    }
}

/// Accepts service clients off the shared event loop and hands each to a
/// short handshake job on the pool — the reactor analogue of the old
/// accept thread.
struct SvcAcceptor<Req, Res, F> {
    listener: TcpListener,
    core: Weak<ServerCore>,
    handler: Arc<F>,
    _marker: PhantomData<fn(Req) -> Res>,
}

impl<Req, Res, F> Handler for SvcAcceptor<Req, Res, F>
where
    Req: Decode,
    Res: Encode + 'static,
    F: Fn(Req) -> Res + Send + Sync + 'static,
{
    fn on_event(&mut self, event: Event, ctl: &mut Ctl) {
        if matches!(event, Event::Closed) {
            ctl.close();
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let Some(core) = self.core.upgrade() else {
                        ctl.close();
                        return;
                    };
                    // Relaxed: standalone exit flag (see ServerCore::drop).
                    if core.shutdown.load(Ordering::Relaxed) {
                        ctl.close();
                        return;
                    }
                    let handler = Arc::clone(&self.handler);
                    let reactor = ctl.reactor().clone();
                    runtime().pool.spawn(move || {
                        let _ = handshake_service::<Req, Res, F>(core, handler, stream, &reactor);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                // Transient accept failure (e.g. the peer already reset):
                // keep listening.
                Err(_) => return,
            }
        }
    }
}

/// Blocking connection-header exchange — short, bounded by
/// [`SVC_HANDSHAKE_TIMEOUT`], run on the job pool — then the socket joins
/// the reactor as a [`SvcConn`]. The reply is read/written unbuffered so
/// no request bytes are swallowed before the nonblocking serve begins.
fn handshake_service<Req, Res, F>(
    core: Arc<ServerCore>,
    handler: Arc<F>,
    stream: TcpStream,
    reactor: &Reactor,
) -> Result<(), RosError>
where
    Req: Decode,
    Res: Encode + 'static,
    F: Fn(Req) -> Res + Send + Sync + 'static,
{
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(SVC_HANDSHAKE_TIMEOUT))?;
    let mut io = &stream;
    let header = ConnectionHeader::read_from(&mut io)?;
    let want_req = header.get("req_type").unwrap_or_default();
    let want_res = header.get("res_type").unwrap_or_default();
    if want_req != Req::topic_type() || want_res != Res::topic_type() {
        ConnectionHeader::new()
            .with(
                "error",
                format!(
                    "service types are {}/{}",
                    Req::topic_type(),
                    Res::topic_type()
                ),
            )
            .write_to(&mut io)?;
        return Err(RosError::TypeMismatch {
            topic: core.name.clone(),
            registered: format!("{}/{}", Req::topic_type(), Res::topic_type()),
            attempted: format!("{want_req}/{want_res}"),
        });
    }
    ConnectionHeader::new()
        .with("service", &core.name)
        .with("endian", ConnectionHeader::native_endian())
        .write_to(&mut io)?;
    stream.set_read_timeout(None)?;
    grow_socket_buffers(&stream);
    stream.set_nonblocking(true)?;
    let fd = stream.as_raw_fd();
    // Only a weak core reference rides along, so idle clients never block
    // server drop.
    let conn: SvcConn<Req, Res, F> = SvcConn {
        stream,
        core: Arc::downgrade(&core),
        handler,
        state: SvcRead::Prefix {
            prefix: [0; 4],
            filled: 0,
        },
        pending: None,
        out: None,
        want_writable: false,
        _marker: PhantomData,
    };
    reactor.register(fd, true, false, Box::new(conn));
    Ok(())
}

/// Which part of the current request the next bytes belong to.
enum SvcRead<Req: Decode> {
    Prefix {
        prefix: [u8; 4],
        filled: usize,
    },
    Body {
        slot: Req::Slot,
        len: usize,
        filled: usize,
    },
}

/// What a finished handler job posted back for the connection to act on.
enum JobOutcome {
    /// The encoded response (length prefix included), ready to write.
    Reply(Vec<u8>),
    /// The server shut down (or the response was unencodable): hang up.
    Close,
}

/// One client connection as a reactor state machine. The protocol is
/// strictly alternating, so the machine is too: read one request, run the
/// handler as a pool job (reads pause), write the response, repeat.
struct SvcConn<Req: Decode, Res, F> {
    stream: TcpStream,
    core: Weak<ServerCore>,
    handler: Arc<F>,
    state: SvcRead<Req>,
    /// In-flight handler job's result slot; `Some` while a request is
    /// being served. The job notifies this connection's token when it
    /// posts the outcome.
    pending: Option<Arc<Mutex<Option<JobOutcome>>>>,
    /// The response being written, and how much of it already was.
    out: Option<(Vec<u8>, usize)>,
    want_writable: bool,
    _marker: PhantomData<fn() -> Res>,
}

impl<Req, Res, F> Handler for SvcConn<Req, Res, F>
where
    Req: Decode,
    Res: Encode + 'static,
    F: Fn(Req) -> Res + Send + Sync + 'static,
{
    fn on_event(&mut self, _event: Event, ctl: &mut Ctl) {
        // Even `Closed` pumps: a response in flight still gets its write
        // attempted (the failure, if any, arrives as a write error), and
        // reads drain to a definite EOF.
        if let Some(cell) = &self.pending {
            let outcome = cell.lock().take();
            match outcome {
                Some(JobOutcome::Reply(buf)) => {
                    self.pending = None;
                    self.out = Some((buf, 0));
                }
                Some(JobOutcome::Close) => {
                    ctl.close();
                    return;
                }
                None => {} // handler still running; reads stay paused
            }
        }
        if let Some((buf, written)) = &mut self.out {
            loop {
                match self.stream.write(&buf[*written..]) {
                    Ok(0) => {
                        ctl.close();
                        return;
                    }
                    Ok(n) => {
                        *written += n;
                        if *written == buf.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        self.set_writable(true, ctl);
                        return;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        ctl.close();
                        return;
                    }
                }
            }
            self.out = None;
            self.set_writable(false, ctl);
        }
        if self.pending.is_some() {
            return;
        }
        self.advance(ctl);
    }
}

impl<Req, Res, F> SvcConn<Req, Res, F>
where
    Req: Decode,
    Res: Encode + 'static,
    F: Fn(Req) -> Res + Send + Sync + 'static,
{
    fn set_writable(&mut self, want: bool, ctl: &mut Ctl) {
        if self.want_writable != want {
            self.want_writable = want;
            ctl.set_interest(true, want);
        }
    }

    /// Read toward the next complete request; dispatch its handler job
    /// when it lands.
    fn advance(&mut self, ctl: &mut Ctl) {
        loop {
            match &mut self.state {
                SvcRead::Prefix { prefix, filled } => {
                    if *filled == 4 {
                        let len = u32::from_le_bytes(*prefix) as usize;
                        match Req::new_slot(len) {
                            Ok(slot) => {
                                self.state = SvcRead::Body {
                                    slot,
                                    len,
                                    filled: 0,
                                };
                                continue;
                            }
                            // A request the type cannot hold: the stream
                            // cannot be resynced reliably, hang up (the old
                            // thread did the same by erroring out).
                            Err(_) => {
                                ctl.close();
                                return;
                            }
                        }
                    }
                    match self.stream.read(&mut prefix[*filled..4]) {
                        // EOF between requests: client hung up cleanly.
                        // Mid-prefix it is equally final for this protocol.
                        Ok(0) => {
                            ctl.close();
                            return;
                        }
                        Ok(n) => *filled += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            ctl.close();
                            return;
                        }
                    }
                }
                SvcRead::Body { slot, len, filled } => {
                    if *filled == *len {
                        let state = std::mem::replace(
                            &mut self.state,
                            SvcRead::Prefix {
                                prefix: [0; 4],
                                filled: 0,
                            },
                        );
                        let SvcRead::Body { slot, .. } = state else {
                            unreachable!("checked Body above");
                        };
                        match Req::finish_slot(slot) {
                            Ok(request) => self.dispatch(request, ctl),
                            Err(_) => ctl.close(),
                        }
                        return;
                    }
                    match self.stream.read(&mut slot.as_mut_slice()[*filled..*len]) {
                        Ok(0) => {
                            ctl.close();
                            return;
                        }
                        Ok(n) => *filled += n,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            ctl.close();
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Run the handler on the job pool; the connection pauses until the
    /// job posts its outcome and notifies this token. A slow handler
    /// occupies one pool worker, never the event loop.
    fn dispatch(&mut self, request: Req, ctl: &mut Ctl) {
        let cell = Arc::new(Mutex::new(None));
        self.pending = Some(Arc::clone(&cell));
        let handler = Arc::clone(&self.handler);
        let weak = self.core.clone();
        let reactor = ctl.reactor().clone();
        let token = ctl.token();
        runtime().pool.spawn(move || {
            let response = handler(request);
            let outcome = match weak.upgrade() {
                Some(core) => {
                    // ORDER: the count must be globally visible before the
                    // reply bytes hit the wire so `calls()` read after a
                    // response is never behind it.
                    core.calls.fetch_add(1, Ordering::SeqCst);
                    // Relaxed: standalone exit flag (see ServerCore::drop).
                    if core.shutdown.load(Ordering::Relaxed) {
                        JobOutcome::Close
                    } else {
                        let frame = response.encode();
                        let payload = frame.as_slice();
                        match frame_len_prefix(payload.len()) {
                            Ok(prefix) => {
                                let mut buf = Vec::with_capacity(4 + payload.len());
                                buf.extend_from_slice(&prefix.to_le_bytes());
                                buf.extend_from_slice(payload);
                                JobOutcome::Reply(buf)
                            }
                            Err(_) => JobOutcome::Close,
                        }
                    }
                }
                None => JobOutcome::Close,
            };
            *cell.lock() = Some(outcome);
            reactor.notify(token);
        });
    }
}

/// A connected service client.
pub struct ServiceClient<Req: Encode, Res: Decode> {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    service: String,
    _marker: PhantomData<fn(&Req) -> Res>,
}

impl<Req: Encode, Res: Decode> ServiceClient<Req, Res> {
    /// Connect to service `name` through `nh`'s master.
    ///
    /// # Errors
    ///
    /// [`RosError::Rejected`] if the service does not exist or the types
    /// do not match; I/O errors on connect.
    pub fn connect(nh: &NodeHandle, name: &str) -> Result<Self, RosError> {
        let ep = nh
            .master()
            .services()
            .lookup(name)
            .ok_or_else(|| RosError::Rejected(format!("no such service `{name}`")))?;
        if ep.req_type != Req::topic_type() || ep.res_type != Res::topic_type() {
            return Err(RosError::TypeMismatch {
                topic: name.to_string(),
                registered: format!("{}/{}", ep.req_type, ep.res_type),
                attempted: format!("{}/{}", Req::topic_type(), Res::topic_type()),
            });
        }
        let mut stream = TcpStream::connect(ep.addr)?;
        stream.set_nodelay(true)?;
        grow_socket_buffers(&stream);
        ConnectionHeader::new()
            .with("service", name)
            .with("req_type", Req::topic_type())
            .with("res_type", Res::topic_type())
            .write_to(&mut stream)?;
        let mut reader = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
        let reply = ConnectionHeader::read_from(&mut reader)?;
        if let Some(err) = reply.get("error") {
            return Err(RosError::Rejected(err.to_string()));
        }
        Ok(ServiceClient {
            stream,
            reader,
            service: name.to_string(),
            _marker: PhantomData,
        })
    }

    /// Invoke the service synchronously.
    ///
    /// # Errors
    ///
    /// I/O errors if the server goes away mid-call; decode errors on a
    /// malformed response.
    pub fn call(&mut self, request: &Req) -> Result<Res, RosError> {
        let frame = request.encode();
        write_frame(&mut self.stream, frame.as_slice())?;
        let len = read_frame_len(&mut self.reader)?.ok_or_else(|| {
            RosError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed before responding",
            ))
        })?;
        let mut slot = Res::new_slot(len)?;
        self.reader.read_exact(slot.as_mut_slice())?;
        Res::finish_slot(slot)
    }

    /// The service name this client is bound to.
    pub fn service(&self) -> &str {
        &self.service
    }
}

impl<Req: Encode, Res: Decode> std::fmt::Debug for ServiceClient<Req, Res> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient")
            .field("service", &self.service)
            .finish()
    }
}
