//! ROS services: the request/response half of the ROS1 API.
//!
//! The paper optimizes the publish/subscribe path, but a credible ROS
//! substrate also serves `rosservice`-style calls; and the same
//! [`Encode`]/[`Decode`] machinery makes service payloads
//! serialization-free when the request/response types are SFM messages.
//!
//! Protocol: one TCP connection per client, a connection-header handshake
//! (`service=`, `req_type=`, `res_type=`), then strictly alternating
//! length-prefixed request/response frames.

use crate::error::RosError;
use crate::master::Master;
use crate::node::NodeHandle;
use crate::traits::{Decode, Encode, RecvSlot};
use crate::wire::{read_frame_len, write_frame, ConnectionHeader};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufReader, Read};
use std::marker::PhantomData;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Where a service server accepts client connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEndpoint {
    /// TCP address of the server's listener.
    pub addr: SocketAddr,
    /// Request type name.
    pub req_type: String,
    /// Response type name.
    pub res_type: String,
    /// Registration id.
    pub id: u64,
}

/// Master-side service registry (held by [`Master`]).
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    services: Mutex<HashMap<String, ServiceEndpoint>>,
}

impl ServiceRegistry {
    /// Register a server. Errors if the name is taken.
    ///
    /// # Errors
    ///
    /// [`RosError::Rejected`] when the service name is already registered.
    pub fn register(&self, name: &str, ep: ServiceEndpoint) -> Result<(), RosError> {
        let mut services = self.services.lock();
        if services.contains_key(name) {
            return Err(RosError::Rejected(format!(
                "service `{name}` already advertised"
            )));
        }
        services.insert(name.to_string(), ep);
        Ok(())
    }

    /// Remove a registration by id.
    pub fn unregister(&self, name: &str, id: u64) {
        let mut services = self.services.lock();
        if services.get(name).is_some_and(|ep| ep.id == id) {
            services.remove(name);
        }
    }

    /// Look up a service by name.
    pub fn lookup(&self, name: &str) -> Option<ServiceEndpoint> {
        self.services.lock().get(name).cloned()
    }

    /// Names of all registered services, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.services.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

struct ServerCore {
    name: String,
    master: Master,
    registration: u64,
    addr: SocketAddr,
    shutdown: AtomicBool,
    calls: AtomicU64,
}

impl Drop for ServerCore {
    fn drop(&mut self) {
        // Relaxed: standalone exit flag for the accept/serve loops.
        self.shutdown.store(true, Ordering::Relaxed);
        self.master
            .services()
            .unregister(&self.name, self.registration);
        // Wake the accept loop.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A live service server; dropping it withdraws the service.
pub struct ServiceServer {
    core: Arc<ServerCore>,
}

impl ServiceServer {
    /// Advertise `name` on `nh`, serving requests with `handler`.
    ///
    /// `Req` is what arrives (e.g. `Arc<M>` or `SfmShared<T>`); `Res` is
    /// what the handler returns (e.g. a plain message or `SfmBox<T>`).
    ///
    /// # Errors
    ///
    /// [`RosError::Rejected`] if the name is taken, or I/O errors binding
    /// the listener.
    pub fn advertise<Req, Res, F>(
        nh: &NodeHandle,
        name: &str,
        handler: F,
    ) -> Result<ServiceServer, RosError>
    where
        Req: Decode,
        Res: Encode + 'static,
        F: Fn(Req) -> Res + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        static NEXT_ID: AtomicU64 = AtomicU64::new(1);
        let registration = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        nh.master().services().register(
            name,
            ServiceEndpoint {
                addr,
                req_type: Req::topic_type().to_string(),
                res_type: Res::topic_type().to_string(),
                id: registration,
            },
        )?;
        let core = Arc::new(ServerCore {
            name: name.to_string(),
            master: nh.master().clone(),
            registration,
            addr,
            shutdown: AtomicBool::new(false),
            calls: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&core);
        let handler = Arc::new(handler);
        std::thread::spawn(move || loop {
            let Ok((stream, _)) = listener.accept() else {
                break;
            };
            let Some(core) = weak.upgrade() else { break };
            // Relaxed: standalone exit flag (see ServerCore::drop).
            if core.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let handler = Arc::clone(&handler);
            std::thread::spawn(move || {
                let _ = serve_connection::<Req, Res, F>(core, handler, stream);
            });
        });
        Ok(ServiceServer { core })
    }

    /// Requests served so far.
    pub fn calls(&self) -> u64 {
        // ORDER: pairs with the SeqCst fetch_add in `serve_connection` —
        // a caller that has received a response must observe its count.
        self.core.calls.load(Ordering::SeqCst)
    }

    /// The service name.
    pub fn name(&self) -> &str {
        &self.core.name
    }
}

fn serve_connection<Req, Res, F>(
    core: Arc<ServerCore>,
    handler: Arc<F>,
    mut stream: TcpStream,
) -> Result<(), RosError>
where
    Req: Decode,
    Res: Encode,
    F: Fn(Req) -> Res + Send + Sync,
{
    stream.set_nodelay(true)?;
    let header = {
        let mut r = BufReader::new(stream.try_clone()?);
        ConnectionHeader::read_from(&mut r)?
    };
    let want_req = header.get("req_type").unwrap_or_default();
    let want_res = header.get("res_type").unwrap_or_default();
    if want_req != Req::topic_type() || want_res != Res::topic_type() {
        ConnectionHeader::new()
            .with(
                "error",
                format!(
                    "service types are {}/{}",
                    Req::topic_type(),
                    Res::topic_type()
                ),
            )
            .write_to(&mut stream)?;
        return Err(RosError::TypeMismatch {
            topic: core.name.clone(),
            registered: format!("{}/{}", Req::topic_type(), Res::topic_type()),
            attempted: format!("{want_req}/{want_res}"),
        });
    }
    ConnectionHeader::new()
        .with("service", &core.name)
        .with("endian", ConnectionHeader::native_endian())
        .write_to(&mut stream)?;

    // Release the strong core reference before the serve loop so server
    // drop is never blocked by idle clients; keep a weak one for stats.
    let weak = Arc::downgrade(&core);
    drop(core);

    let mut reader = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
    loop {
        let Some(len) = read_frame_len(&mut reader)? else {
            return Ok(()); // client hung up
        };
        let mut slot = Req::new_slot(len)?;
        reader.read_exact(slot.as_mut_slice())?;
        let request = Req::finish_slot(slot)?;
        let response = handler(request);
        let frame = response.encode();
        // Count before replying so `calls()` is accurate the moment the
        // client observes the response.
        match weak.upgrade() {
            Some(core) => {
                // ORDER: the count must be globally visible before the
                // reply bytes hit the wire so `calls()` read after a
                // response is never behind it.
                core.calls.fetch_add(1, Ordering::SeqCst);
                // Relaxed: standalone exit flag (see ServerCore::drop).
                if core.shutdown.load(Ordering::Relaxed) {
                    return Ok(());
                }
            }
            None => return Ok(()),
        }
        write_frame(&mut stream, frame.as_slice())?;
    }
}

/// A connected service client.
pub struct ServiceClient<Req: Encode, Res: Decode> {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    service: String,
    _marker: PhantomData<fn(&Req) -> Res>,
}

impl<Req: Encode, Res: Decode> ServiceClient<Req, Res> {
    /// Connect to service `name` through `nh`'s master.
    ///
    /// # Errors
    ///
    /// [`RosError::Rejected`] if the service does not exist or the types
    /// do not match; I/O errors on connect.
    pub fn connect(nh: &NodeHandle, name: &str) -> Result<Self, RosError> {
        let ep = nh
            .master()
            .services()
            .lookup(name)
            .ok_or_else(|| RosError::Rejected(format!("no such service `{name}`")))?;
        if ep.req_type != Req::topic_type() || ep.res_type != Res::topic_type() {
            return Err(RosError::TypeMismatch {
                topic: name.to_string(),
                registered: format!("{}/{}", ep.req_type, ep.res_type),
                attempted: format!("{}/{}", Req::topic_type(), Res::topic_type()),
            });
        }
        let mut stream = TcpStream::connect(ep.addr)?;
        stream.set_nodelay(true)?;
        ConnectionHeader::new()
            .with("service", name)
            .with("req_type", Req::topic_type())
            .with("res_type", Res::topic_type())
            .write_to(&mut stream)?;
        let mut reader = BufReader::with_capacity(64 * 1024, stream.try_clone()?);
        let reply = ConnectionHeader::read_from(&mut reader)?;
        if let Some(err) = reply.get("error") {
            return Err(RosError::Rejected(err.to_string()));
        }
        Ok(ServiceClient {
            stream,
            reader,
            service: name.to_string(),
            _marker: PhantomData,
        })
    }

    /// Invoke the service synchronously.
    ///
    /// # Errors
    ///
    /// I/O errors if the server goes away mid-call; decode errors on a
    /// malformed response.
    pub fn call(&mut self, request: &Req) -> Result<Res, RosError> {
        let frame = request.encode();
        write_frame(&mut self.stream, frame.as_slice())?;
        let len = read_frame_len(&mut self.reader)?.ok_or_else(|| {
            RosError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "service closed before responding",
            ))
        })?;
        let mut slot = Res::new_slot(len)?;
        self.reader.read_exact(slot.as_mut_slice())?;
        Res::finish_slot(slot)
    }

    /// The service name this client is bound to.
    pub fn service(&self) -> &str {
        &self.service
    }
}

impl<Req: Encode, Res: Decode> std::fmt::Debug for ServiceClient<Req, Res> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceClient")
            .field("service", &self.service)
            .finish()
    }
}
