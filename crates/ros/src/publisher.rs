//! The publisher side of a topic.
//!
//! `advertise` binds a TCP listener and registers it with the master. Each
//! subscriber that connects gets its own bounded *transmission queue* and
//! writer thread (the queue of paper Fig. 8: `publish` deposits a cheap
//! clone of the encoded frame — for serialization-free messages, a clone of
//! the buffer pointer — and returns; the writer threads drain to the
//! sockets). Cross-machine connections are paced by the master's
//! [`LinkTable`](rossf_netsim::LinkTable), and any
//! [`FaultInjector`](rossf_netsim::FaultInjector) attached to the link is
//! applied frame-by-frame in the writer loop: delayed frames sleep, dropped
//! frames are skipped, and a severed link shuts the socket down and refuses
//! new connections until healed.

use crate::config::TransportConfig;
use crate::error::RosError;
use crate::master::Master;
use crate::metrics::TransportMetrics;
use crate::traits::Encode;
use crate::wire::{write_frame, ConnectionHeader, OutFrame};
use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use rossf_netsim::{FaultAction, MachineId, ShapedWriter};
use std::io::BufReader;
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct Conn {
    queue: Sender<OutFrame>,
    alive: Arc<AtomicBool>,
}

struct PubCore {
    topic: String,
    type_name: &'static str,
    addr: SocketAddr,
    machine: MachineId,
    queue_size: usize,
    config: TransportConfig,
    metrics: Arc<TransportMetrics>,
    master: Master,
    registration: u64,
    conns: Mutex<Vec<Conn>>,
    shutdown: AtomicBool,
    published: AtomicU64,
    dropped: AtomicU64,
}

impl PubCore {
    /// Accept loop. Holds only a `Weak` reference so that dropping the last
    /// `Publisher` clone tears the core down (its `Drop` then wakes this
    /// loop with a dummy connection, and the upgrade below fails).
    fn accept_loop(core: std::sync::Weak<Self>, listener: TcpListener) {
        loop {
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(_) => break,
            };
            let Some(strong) = core.upgrade() else { break };
            if strong.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Handshake on its own thread so a slow subscriber cannot
            // stall other joins.
            std::thread::spawn(move || {
                let _ = strong.handle_subscriber(stream);
            });
        }
    }

    fn handle_subscriber(self: Arc<Self>, mut stream: TcpStream) -> Result<(), RosError> {
        stream.set_nodelay(true)?;
        // Bound the handshake: a connector that never sends a header must
        // not pin this thread.
        stream.set_read_timeout(Some(self.config.handshake_timeout))?;
        let header = {
            let mut reader = BufReader::new(stream.try_clone()?);
            ConnectionHeader::read_from(&mut reader)?
        };
        stream.set_read_timeout(None)?;
        let sub_type = header.get("type").unwrap_or_default().to_string();
        if sub_type != self.type_name {
            let reply = ConnectionHeader::new().with(
                "error",
                format!("topic carries {} not {}", self.type_name, sub_type),
            );
            reply.write_to(&mut stream)?;
            return Err(RosError::TypeMismatch {
                topic: self.topic.clone(),
                registered: self.type_name.to_string(),
                attempted: sub_type,
            });
        }
        let sub_machine: MachineId = header
            .get("machine")
            .and_then(|m| m.parse::<u32>().ok())
            .unwrap_or_default()
            .into();

        // A severed link refuses new connections: close without a reply so
        // the subscriber sees a transport failure and keeps retrying under
        // its backoff schedule until the link heals.
        let injector = self.master.links().fault(self.machine, sub_machine);
        if injector.as_ref().is_some_and(|f| f.is_severed()) {
            return Err(RosError::Rejected("link severed".to_string()));
        }

        let reply = ConnectionHeader::new()
            .with("type", self.type_name)
            .with("topic", &self.topic)
            .with("endian", ConnectionHeader::native_endian());
        reply.write_to(&mut stream)?;
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);

        // Link shaping: pace the data path if the subscriber lives on a
        // different simulated machine.
        let profile = self.master.links().profile(self.machine, sub_machine);
        let mut wire = ShapedWriter::new(stream, profile);

        let (tx, rx) = bounded::<OutFrame>(self.queue_size.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        self.conns.lock().push(Conn {
            queue: tx,
            alive: Arc::clone(&alive),
        });
        let metrics = Arc::clone(&self.metrics);
        // Release our strong reference: the writer loop must not keep the
        // core alive, or dropping the last Publisher could never clear the
        // queues this loop waits on.
        drop(self);

        // Writer thread body (we are already on a dedicated thread).
        while let Ok(frame) = rx.recv() {
            match injector
                .as_ref()
                .map_or(FaultAction::Pass, |f| f.next_frame_action())
            {
                FaultAction::Pass => {}
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Drop => {
                    metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                FaultAction::Sever => {
                    // The frame is lost and the connection is cut at the
                    // transport level, exactly like a yanked cable.
                    metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                    let _ = wire.get_ref().shutdown(Shutdown::Both);
                    break;
                }
            }
            wire.start_frame();
            match write_frame(&mut wire, frame.as_slice()) {
                Ok(()) => {
                    metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
                    metrics
                        .bytes_sent
                        .fetch_add(frame.len() as u64, Ordering::Relaxed);
                }
                Err(_) => break, // subscriber went away
            }
        }
        alive.store(false, Ordering::SeqCst);
        metrics.disconnects.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl Drop for PubCore {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.master
            .unregister_publisher(&self.topic, self.registration);
        // Close all transmission queues so writer threads exit.
        self.conns.lock().clear();
        // Wake the accept loop so it observes the shutdown flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A handle for publishing messages of type `M` on one topic (the object
/// returned by `nh.advertise(...)` in the paper's Fig. 3).
///
/// Cloning shares the same underlying listener and connections; the
/// listener shuts down when the last clone drops.
pub struct Publisher<M: Encode> {
    core: Arc<PubCore>,
    _marker: PhantomData<fn(&M)>,
}

impl<M: Encode> Clone for Publisher<M> {
    fn clone(&self) -> Self {
        Publisher {
            core: Arc::clone(&self.core),
            _marker: PhantomData,
        }
    }
}

impl<M: Encode> Publisher<M> {
    pub(crate) fn create(
        master: &Master,
        topic: &str,
        queue_size: usize,
        machine: MachineId,
        config: TransportConfig,
    ) -> Result<Self, RosError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let registration = master.register_publisher(topic, M::topic_type(), addr, machine)?;
        let queue_size = if queue_size == 0 {
            config.queue_size
        } else {
            queue_size
        };
        let core = Arc::new(PubCore {
            topic: topic.to_string(),
            type_name: M::topic_type(),
            addr,
            machine,
            queue_size,
            config,
            metrics: master.metrics().topic(topic),
            master: master.clone(),
            registration,
            conns: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        });
        let weak = Arc::downgrade(&core);
        std::thread::spawn(move || PubCore::accept_loop(weak, listener));
        Ok(Publisher {
            core,
            _marker: PhantomData,
        })
    }

    /// Publish a message: encode once (for serialization-free messages this
    /// only clones the buffer pointer) and enqueue on every subscriber
    /// connection. Never blocks; if a connection's transmission queue is
    /// full the frame is dropped for that subscriber (counted in
    /// [`Publisher::dropped`]). A frame larger than the configured
    /// `max_frame_len` is refused outright — every subscriber would reject
    /// it anyway.
    pub fn publish(&self, msg: &M) {
        let frame = msg.encode();
        if frame.len() > self.core.config.max_frame_len {
            self.core
                .metrics
                .frames_dropped_oversized
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.core.published.fetch_add(1, Ordering::Relaxed);
        let metrics = &self.core.metrics;
        let mut conns = self.core.conns.lock();
        conns.retain(|conn| match conn.queue.try_send(frame.clone()) {
            Ok(()) => {
                metrics.observe_queue_depth(conn.queue.len() as u64);
                true
            }
            Err(TrySendError::Full(_)) => {
                self.core.dropped.fetch_add(1, Ordering::Relaxed);
                metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Disconnected(_)) => false,
        });
    }

    /// The topic this publisher serves.
    pub fn topic(&self) -> &str {
        &self.core.topic
    }

    /// Address subscribers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Number of currently connected subscribers.
    pub fn subscriber_count(&self) -> usize {
        let mut conns = self.core.conns.lock();
        // Prune connections whose writer thread exited (subscriber gone).
        conns.retain(|c| c.alive.load(Ordering::SeqCst));
        conns.len()
    }

    /// Frames published so far (per `publish` call, not per connection).
    pub fn published(&self) -> u64 {
        self.core.published.load(Ordering::Relaxed)
    }

    /// Frames dropped because a subscriber's queue was full.
    pub fn dropped(&self) -> u64 {
        self.core.dropped.load(Ordering::Relaxed)
    }

    /// The shared per-topic transport metrics this publisher reports into.
    pub fn metrics(&self) -> Arc<TransportMetrics> {
        Arc::clone(&self.core.metrics)
    }
}

impl<M: Encode> std::fmt::Debug for Publisher<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("topic", &self.core.topic)
            .field("type", &self.core.type_name)
            .field("subscribers", &self.core.conns.lock().len())
            .finish()
    }
}
