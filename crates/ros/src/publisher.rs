//! The publisher side of a topic.
//!
//! `advertise` binds a TCP listener and registers it with the master. Each
//! subscriber that connects gets its own bounded *transmission queue* and
//! writer thread (the queue of paper Fig. 8: `publish` deposits a cheap
//! clone of the encoded frame — for serialization-free messages, a clone of
//! the buffer pointer — and returns; the writer threads drain to the
//! sockets). Cross-machine connections are paced by the master's
//! [`LinkTable`](rossf_netsim::LinkTable), and any
//! [`FaultInjector`](rossf_netsim::FaultInjector) attached to the link is
//! applied frame-by-frame in the writer loop: delayed frames sleep, dropped
//! frames are skipped, and a severed link shuts the socket down and refuses
//! new connections until healed.

use crate::config::TransportConfig;
use crate::error::RosError;
use crate::fastpath::{LocalAttach, LocalSinkHandle, FASTPATH_FIELD};
use crate::loan::LoanedMessage;
use crate::master::Master;
use crate::metrics::TransportMetrics;
use crate::options::{PublisherOptions, PublisherStats};
use crate::shm::{SHM_EPOCH_FIELD, SHM_FD_FIELD, SHM_FIELD, SHM_PID_FIELD, SHM_PUB_PID_FIELD};
use crate::traits::Encode;
use crate::wire::{write_frame_vectored, ConnectionHeader, OutFrame, ShmSlot};
use crossbeam::channel::{bounded, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use rossf_netsim::{FaultAction, FaultInjector, MachineId, ShapedWriter};
use rossf_sfm::{SfmAlloc, SfmBox, SfmMessage};
use rossf_shm::{FrameMeta, PushOutcome, SegmentPool, SharedFrame, ShmLink};
use rossf_trace::{now_nanos, tracer, Stage, Tier, TopicTrace};
use std::io::{BufReader, Read, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

/// Most frames a writer wakeup drains into one socket flush. Bounds the
/// latency a freshly queued frame can hide behind a long batch while still
/// amortizing the per-wakeup syscall cost.
const WRITE_BATCH: usize = 32;

struct Conn {
    queue: Sender<OutFrame>,
    alive: Arc<AtomicBool>,
    /// Whether this connection drains into a shared-memory link — those
    /// clones get the publish's [`ShmSlot`] attached so all shm links of
    /// one publish share a single pooled segment.
    is_shm: bool,
}

struct PubCore {
    topic: String,
    type_name: &'static str,
    addr: SocketAddr,
    machine: MachineId,
    queue_size: usize,
    config: TransportConfig,
    metrics: Arc<TransportMetrics>,
    master: Master,
    /// Set once right after master registration (0 until then); the id is
    /// not known when the core is built because the fast-path registration
    /// needs a `Weak` of the finished core.
    registration: AtomicU64,
    conns: Mutex<Vec<Arc<Conn>>>,
    shutdown: AtomicBool,
    published: AtomicU64,
    dropped: AtomicU64,
    /// The topic's tracing table when this publisher was created with
    /// `PublisherOptions::trace(true)`; `None` keeps the publish path free
    /// of clock reads and histogram writes.
    trace: Option<Arc<TopicTrace>>,
    /// [`Tier`] index the publish-side `alloc`/`encode` spans are attributed
    /// to: set to fast path when a same-process subscriber attaches, back to
    /// TCP when a socket subscriber handshakes. A heuristic — a publisher
    /// serving both at once attributes to the most recent arrival.
    tier_hint: AtomicU8,
    /// Segment pool shared by every shm link this publisher grants, so the
    /// memfd count stays bounded by [`rossf_shm::DIR_CAP`] no matter how
    /// many subscribers attach. Created lazily on the first grant.
    shm_pool: Mutex<Option<Arc<SegmentPool>>>,
    /// Whether `Publisher::loan` may hand out shared-memory-backed loans
    /// ([`PublisherOptions::shm_loans`], on by default).
    shm_loans: bool,
}

impl PubCore {
    /// The tier the publish-side spans are currently attributed to.
    fn tier(&self) -> Tier {
        match self.tier_hint.load(Ordering::Relaxed) {
            1 => Tier::Fastpath,
            2 => Tier::Shm,
            _ => Tier::Tcp,
        }
    }

    /// Splice a new connection into the list, pruning dead entries while
    /// the lock is held anyway (the accept/attach-side half of the pruning
    /// that `subscriber_count` no longer does).
    fn add_conn(&self, conn: Arc<Conn>) {
        let mut conns = self.conns.lock();
        conns.retain(|c| c.alive.load(Ordering::Acquire));
        conns.push(conn);
    }

    /// Accept loop. Holds only a `Weak` reference so that dropping the last
    /// `Publisher` clone tears the core down (its `Drop` then wakes this
    /// loop with a dummy connection, and the upgrade below fails).
    fn accept_loop(core: std::sync::Weak<Self>, listener: TcpListener) {
        loop {
            let stream = match listener.accept() {
                Ok((s, _)) => s,
                Err(_) => break,
            };
            let Some(strong) = core.upgrade() else { break };
            // Relaxed: `shutdown` is a standalone exit flag — no data is
            // published through it, and a late observation only delays
            // this accept loop's exit by one connection.
            if strong.shutdown.load(Ordering::Relaxed) {
                break;
            }
            // Handshake on its own thread so a slow subscriber cannot
            // stall other joins.
            std::thread::spawn(move || {
                let _ = strong.handle_subscriber(stream);
            });
        }
    }

    fn handle_subscriber(self: Arc<Self>, mut stream: TcpStream) -> Result<(), RosError> {
        stream.set_nodelay(true)?;
        // Bound the handshake: a connector that never sends a header must
        // not pin this thread.
        stream.set_read_timeout(Some(self.config.handshake_timeout))?;
        let header = {
            let mut reader = BufReader::new(stream.try_clone()?);
            ConnectionHeader::read_from(&mut reader)?
        };
        stream.set_read_timeout(None)?;
        let sub_type = header.get("type").unwrap_or_default().to_string();
        if sub_type != self.type_name {
            let reply = ConnectionHeader::new().with(
                "error",
                format!("topic carries {} not {}", self.type_name, sub_type),
            );
            reply.write_to(&mut stream)?;
            return Err(RosError::TypeMismatch {
                topic: self.topic.clone(),
                registered: self.type_name.to_string(),
                attempted: sub_type,
            });
        }
        let sub_machine: MachineId = header
            .get("machine")
            .and_then(|m| m.parse::<u32>().ok())
            .unwrap_or_default()
            .into();

        // A severed link refuses new connections: close without a reply so
        // the subscriber sees a transport failure and keeps retrying under
        // its backoff schedule until the link heals.
        let injector = self.master.links().fault(self.machine, sub_machine);
        if injector.as_ref().is_some_and(|f| f.is_severed()) {
            return Err(RosError::Rejected("link severed".to_string()));
        }

        // Shared-memory eligibility: both sides opted in, same simulated
        // machine, a *different* process (same-process traffic prefers the
        // fast path unless `shm_same_process` overrides), and a supported
        // platform. Link creation failure withholds the grant silently —
        // the connection proceeds over TCP with byte-identical frames.
        let sub_pid = header
            .get(SHM_PID_FIELD)
            .and_then(|p| p.parse::<u32>().ok());
        let shm_link = if self.config.enable_shm
            && header.get(SHM_FIELD) == Some("1")
            && sub_machine == self.machine
            && rossf_shm::supported()
            && sub_pid.is_some_and(|p| p != std::process::id() || self.config.shm_same_process)
        {
            let pool = {
                let mut pool = self.shm_pool.lock();
                Arc::clone(pool.get_or_insert_with(|| Arc::new(SegmentPool::new())))
            };
            ShmLink::create(pool, self.queue_size.max(1), rossf_shm::fresh_epoch()).ok()
        } else {
            None
        };

        let mut reply = ConnectionHeader::new()
            .with("type", self.type_name)
            .with("topic", &self.topic)
            .with("endian", ConnectionHeader::native_endian());
        if let Some(link) = &shm_link {
            reply = reply
                .with(SHM_FIELD, "1")
                .with(SHM_PUB_PID_FIELD, std::process::id().to_string())
                .with(SHM_FD_FIELD, link.ctrl_fd().to_string())
                .with(SHM_EPOCH_FIELD, link.epoch().to_string());
        }
        reply.write_to(&mut stream)?;
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);

        if let Some(link) = shm_link {
            self.metrics.shm_handshakes.fetch_add(1, Ordering::Relaxed);
            // The grant condition above guarantees `sub_pid` is present.
            return self.run_shm_link(stream, link, injector, sub_pid.unwrap_or_default());
        }

        // Link shaping: pace the data path if the subscriber lives on a
        // different simulated machine.
        let profile = self.master.links().profile(self.machine, sub_machine);
        let mut wire = ShapedWriter::new(stream, profile);

        let (tx, rx) = bounded::<OutFrame>(self.queue_size.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        self.add_conn(Arc::new(Conn {
            queue: tx,
            alive: Arc::clone(&alive),
            is_shm: false,
        }));
        let metrics = Arc::clone(&self.metrics);
        // A socket subscriber arrived: attribute publish-side spans to TCP.
        self.tier_hint.store(0, Ordering::Relaxed);
        // Per-connection trace state, captured before the core reference is
        // released below. The connection key mirrors the reader's
        // `conn_key(peer, local)` — same address pair, same order.
        let trace = self.trace.clone();
        let conn_key = match (wire.get_ref().local_addr(), wire.get_ref().peer_addr()) {
            (Ok(local), Ok(peer)) => rossf_trace::conn_key(&local.to_string(), &peer.to_string()),
            _ => 0,
        };
        // Frames actually written on this socket, in wire order. Dropped and
        // severed frames never reach the stream, so they must not advance
        // the sequence the reader counts.
        let mut wire_seq: u64 = 0;
        // Release our strong reference: the writer loop must not keep the
        // core alive, or dropping the last Publisher could never clear the
        // queues this loop waits on.
        drop(self);

        // Writer thread body (we are already on a dedicated thread).
        // Drain-batch: block for the first frame of a wakeup, then pull
        // whatever else is already queued and flush the socket once for the
        // whole batch instead of once per frame.
        let mut batch: Vec<OutFrame> = Vec::with_capacity(WRITE_BATCH);
        'conn: while let Ok(first) = rx.recv() {
            batch.clear();
            batch.push(first);
            while batch.len() < WRITE_BATCH {
                match rx.try_recv() {
                    Ok(frame) => batch.push(frame),
                    Err(_) => break,
                }
            }
            let mut wrote = false;
            for frame in &batch {
                match injector
                    .as_ref()
                    .map_or(FaultAction::Pass, |f| f.next_frame_action())
                {
                    FaultAction::Pass => {}
                    FaultAction::Delay(d) => std::thread::sleep(d),
                    FaultAction::Drop => {
                        metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    FaultAction::Sever => {
                        // The frame is lost and the connection is cut at the
                        // transport level, exactly like a yanked cable.
                        metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                        let _ = wire.get_ref().shutdown(Shutdown::Both);
                        break 'conn;
                    }
                }
                // `enqueue` span ends (and the sidecar note lands) *before*
                // the frame bytes hit the socket, so the reader can never
                // observe the frame without its note.
                let tag = frame.trace();
                let t_write_start = match (trace.as_deref(), tag.id) {
                    (Some(table), id) if id != 0 => {
                        let t = now_nanos();
                        tracer().span(table, Stage::Enqueue, Tier::Tcp, id, tag.enqueued_ns, t);
                        tracer().sidecar().insert(conn_key, wire_seq, id, t);
                        Some(t)
                    }
                    _ => None,
                };
                wire.start_frame();
                match write_frame_vectored(&mut wire, frame.as_slice()) {
                    Ok(()) => {
                        wrote = true;
                        if let (Some(table), Some(t0)) = (trace.as_deref(), t_write_start) {
                            let t1 = now_nanos();
                            tracer().span(table, Stage::WireWrite, Tier::Tcp, tag.id, t0, t1);
                            tracer().sidecar().update_sent(conn_key, wire_seq, t1);
                        }
                        wire_seq += 1;
                        metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
                        metrics
                            .bytes_sent
                            .fetch_add(frame.len() as u64, Ordering::Relaxed);
                    }
                    Err(_) => break 'conn, // subscriber went away
                }
            }
            if wrote && wire.flush().is_err() {
                break;
            }
        }
        // Relaxed: `alive` is a standalone liveness flag; the pruner that
        // reads it takes the sink lock, which orders the removal.
        alive.store(false, Ordering::Relaxed);
        metrics.disconnects.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Producer half of one shared-memory link — the shm analogue of the
    /// TCP writer loop above. Frames drain from the transmission queue
    /// into the descriptor ring: one copy into a pooled segment
    /// (`wire_write`), then a lock-free descriptor publish. The handshake
    /// socket stays open as the liveness channel: the subscriber never
    /// writes on it again, so any read outcome other than `WouldBlock`
    /// means the subscriber is gone and the link tears down — closing the
    /// ring, draining unconsumed descriptors, settling reader-abandoned
    /// references, and, if the subscriber *process* died, reclaiming the
    /// references it still held on popped frames so no pool slot stays
    /// pinned by a crashed reader.
    fn run_shm_link(
        self: Arc<Self>,
        mut stream: TcpStream,
        mut link: ShmLink,
        injector: Option<Arc<FaultInjector>>,
        sub_pid: u32,
    ) -> Result<(), RosError> {
        let (tx, rx) = bounded::<OutFrame>(self.queue_size.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        self.add_conn(Arc::new(Conn {
            queue: tx,
            alive: Arc::clone(&alive),
            is_shm: true,
        }));
        let metrics = Arc::clone(&self.metrics);
        // An shm subscriber arrived: attribute publish-side spans to it.
        self.tier_hint.store(2, Ordering::Relaxed);
        let trace = self.trace.clone();
        stream.set_nonblocking(true)?;
        // Release our strong reference: the producer loop must not keep
        // the core alive, or dropping the last Publisher could never close
        // the queue this loop waits on.
        drop(self);

        let mut probe = [0u8; 1];
        'link: loop {
            // Short timeout so subscriber departure (EOF on the liveness
            // socket) is noticed even when nothing is being published.
            let frame = match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(frame) => Some(frame),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break 'link, // publisher dropped
            };
            match stream.read(&mut probe) {
                // EOF — or protocol-violating bytes; either way the
                // subscriber's end of the link is dead.
                Ok(_) => break 'link,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => break 'link,
            }
            let Some(frame) = frame else {
                // Idle tick: settle any references the reader declared
                // abandoned (inherited but unmappable on its side) so the
                // pool slots un-pin without waiting for teardown.
                link.reconcile_abandoned();
                continue;
            };
            // Injected faults apply to the ring handoff exactly as they do
            // to socket writes: a dropped frame never reaches the ring, a
            // severed link cuts the socket so both sides tear down.
            match injector
                .as_ref()
                .map_or(FaultAction::Pass, |f| f.next_frame_action())
            {
                FaultAction::Pass => {}
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Drop => {
                    metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                FaultAction::Sever => {
                    metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                    let _ = stream.shutdown(Shutdown::Both);
                    break 'link;
                }
            }
            let tag = frame.trace();
            let t_copy_start = match (trace.as_deref(), tag.id) {
                (Some(table), id) if id != 0 => {
                    let t = now_nanos();
                    tracer().span(table, Stage::Enqueue, Tier::Shm, id, tag.enqueued_ns, t);
                    Some(t)
                }
                _ => None,
            };
            // Resolve the frame's shared-memory residency: the first link
            // thread of this publish performs the *single* copy into a
            // pooled segment; every later thread (and a loaned frame,
            // which arrives pre-resolved because it was built in the
            // segment) reuses that frame with a descriptor-only commit.
            // `wire_write` spans telescope around the copy exactly as
            // before, but only on the thread that actually copied —
            // descriptor-only commits have no copy stage to attribute.
            let mut copied_here = false;
            let shared: Option<SharedFrame> = match frame.shm_slot() {
                Some(slot) => slot
                    .get_or_init(|| {
                        copied_here = true;
                        link.pool().prepare_shared(frame.as_slice())
                    })
                    .clone(),
                // No slot attached (a frame enqueued before this link
                // joined the connection list mid-publish): fall back to a
                // private single-link copy.
                None => {
                    copied_here = true;
                    link.pool().prepare_shared(frame.as_slice())
                }
            };
            let outcome = match shared {
                None => PushOutcome::NoSegment,
                Some(sf) => {
                    let t_pushed = if t_copy_start.is_some() {
                        now_nanos()
                    } else {
                        0
                    };
                    if copied_here {
                        if let (Some(table), Some(t0)) = (trace.as_deref(), t_copy_start) {
                            tracer().span(table, Stage::WireWrite, Tier::Shm, tag.id, t0, t_pushed);
                        }
                    }
                    link.commit_shared(
                        &sf,
                        FrameMeta {
                            trace_id: tag.id,
                            born_ns: tag.born_ns,
                            enqueued_ns: tag.enqueued_ns,
                            pushed_ns: t_pushed,
                        },
                    )
                }
            };
            match outcome {
                PushOutcome::Pushed => {
                    metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
                    metrics
                        .bytes_sent
                        .fetch_add(frame.len() as u64, Ordering::Relaxed);
                    metrics.shm_frames.fetch_add(1, Ordering::Relaxed);
                }
                PushOutcome::RingFull => {
                    metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                }
                // Pool exhausted: some slots may only look pinned because
                // the reader abandoned their references — settle those
                // before the next frame retries.
                PushOutcome::NoSegment => {
                    metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                    link.reconcile_abandoned();
                }
            }
        }
        link.close();
        link.drain(); // unconsumed descriptors → their segments recycle
        link.reconcile_abandoned();
        // Relaxed: see the TCP writer above — pruning is lock-ordered.
        alive.store(false, Ordering::Relaxed);
        metrics.disconnects.fetch_add(1, Ordering::Relaxed);
        // A subscriber that *crashed* still holding popped frames would pin
        // their segments forever: the EOF above usually arrives while the
        // peer is mid-exit, so wait briefly for it to leave the process
        // table and then reclaim its outstanding holds. A peer that is
        // still alive keeps them — stashed message buffers may legally
        // outlive the subscription, and the reader releases them itself.
        if sub_pid != std::process::id() {
            for _ in 0..50 {
                if !rossf_shm::sys::process_alive(sub_pid) {
                    link.reclaim_reader_holds();
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        drop(link);
        Ok(())
    }

    /// Fan one encoded frame out to every subscriber connection — the
    /// shared tail of `publish` and `publish_loaned`. Never blocks; a full
    /// transmission queue drops the frame for that subscriber only.
    ///
    /// `loaned` carries the pre-resolved shared-memory residency of a
    /// loaned publish (the message was built inside a pool segment).
    /// Otherwise, when at least one live shm connection will receive the
    /// frame, an *empty* slot is created here so that however many shm
    /// links drain it, only the first performs the copy into a pooled
    /// segment and the rest commit descriptors against the same one (the
    /// copy-per-link fix). Clones bound for TCP or fast-path connections
    /// never carry the slot — holding it from a slow socket queue would
    /// pin the segment's write hold for no benefit.
    fn fan_out(&self, frame: OutFrame, loaned: Option<ShmSlot>) {
        if frame.len() > self.config.max_frame_len {
            self.metrics
                .frames_dropped_oversized
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.published.fetch_add(1, Ordering::Relaxed);
        let metrics = &self.metrics;
        // Snapshot the connection list so the fan-out (try_send plus its
        // metrics bookkeeping) runs without the lock: a concurrent accept,
        // attach, or `publish` from another clone is never serialized
        // behind this one.
        let snapshot: Vec<Arc<Conn>> = self.conns.lock().clone();
        let slot = loaned.or_else(|| {
            snapshot
                .iter()
                .any(|c| c.is_shm && c.alive.load(Ordering::Acquire))
                .then(|| Arc::new(OnceLock::new()))
        });
        let mut saw_dead = false;
        for conn in &snapshot {
            // Each connection's clone carries its own enqueue timestamp
            // (`TraceTag` is `Copy`, so clones do not alias).
            let mut per_conn = frame.clone();
            if per_conn.trace().id != 0 {
                per_conn.trace_mut().enqueued_ns = now_nanos();
            }
            if conn.is_shm {
                if let Some(slot) = &slot {
                    per_conn.set_shm_slot(Arc::clone(slot));
                }
            }
            match conn.queue.try_send(per_conn) {
                Ok(()) => metrics.observe_queue_depth(conn.queue.len() as u64),
                Err(TrySendError::Full(_)) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => {
                    conn.alive.store(false, Ordering::Release);
                    saw_dead = true;
                }
            }
        }
        if saw_dead {
            self.conns
                .lock()
                .retain(|c| c.alive.load(Ordering::Acquire));
        }
    }
}

impl LocalAttach for PubCore {
    fn attach_local(&self, header: &ConnectionHeader) -> Result<LocalSinkHandle, RosError> {
        // Relaxed: standalone exit flag (see the accept loop).
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(RosError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "publisher shutting down",
            )));
        }
        let sub_type = header.get("type").unwrap_or_default();
        if sub_type != self.type_name {
            // Same wording as the TCP `error=` reply so callers see one
            // diagnostic regardless of path.
            return Err(RosError::Rejected(format!(
                "topic carries {} not {}",
                self.type_name, sub_type
            )));
        }
        if header.get(FASTPATH_FIELD) != Some("1") {
            // Peer predates the capability: permanent refusal, the
            // subscriber falls back to TCP for this endpoint.
            return Err(RosError::Rejected(
                "fastpath capability missing from header".to_string(),
            ));
        }
        // The loopback link's fault injector governs this attachment; a
        // severed link refuses it transiently (retry under backoff until
        // healed), exactly like the TCP accept path.
        let injector = self.master.links().fault(self.machine, self.machine);
        if injector.as_ref().is_some_and(|f| f.is_severed()) {
            return Err(RosError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "link severed",
            )));
        }
        let reply = ConnectionHeader::new()
            .with("type", self.type_name)
            .with("topic", &self.topic)
            .with("endian", ConnectionHeader::native_endian())
            .with(FASTPATH_FIELD, "1");
        let (tx, rx) = bounded::<OutFrame>(self.queue_size.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        self.add_conn(Arc::new(Conn {
            queue: tx,
            alive: Arc::clone(&alive),
            is_shm: false,
        }));
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .fastpath_handshakes
            .fetch_add(1, Ordering::Relaxed);
        // A same-process subscriber attached: attribute publish-side spans
        // to the fast path.
        self.tier_hint.store(1, Ordering::Relaxed);
        Ok(LocalSinkHandle {
            reply,
            rx,
            alive,
            injector,
        })
    }
}

impl Drop for PubCore {
    fn drop(&mut self) {
        // Relaxed: standalone exit flag; worker threads only ever exit
        // on observing it, so no write ordering is required.
        self.shutdown.store(true, Ordering::Relaxed);
        // Relaxed: `registration` was stored before this core was shared
        // (`Arc::downgrade` in `advertise`), and Arc's refcount already
        // orders construction before Drop.
        self.master
            .unregister_publisher(&self.topic, self.registration.load(Ordering::Relaxed));
        // Close all transmission queues so writer threads exit.
        self.conns.lock().clear();
        // Wake the accept loop so it observes the shutdown flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A handle for publishing messages of type `M` on one topic (the object
/// returned by `nh.advertise(...)` in the paper's Fig. 3).
///
/// Cloning shares the same underlying listener and connections; the
/// listener shuts down when the last clone drops.
pub struct Publisher<M: Encode> {
    core: Arc<PubCore>,
    _marker: PhantomData<fn(&M)>,
}

impl<M: Encode> Clone for Publisher<M> {
    fn clone(&self) -> Self {
        Publisher {
            core: Arc::clone(&self.core),
            _marker: PhantomData,
        }
    }
}

impl<M: Encode> Publisher<M> {
    pub(crate) fn create_with(
        master: &Master,
        topic: &str,
        options: PublisherOptions,
        machine: MachineId,
        default_config: TransportConfig,
    ) -> Result<Self, RosError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let config = options.transport.unwrap_or(default_config);
        let queue_size = if options.queue_size == 0 {
            config.queue_size
        } else {
            options.queue_size
        };
        let trace = if options.trace {
            tracer().arm();
            Some(tracer().topic(topic))
        } else {
            None
        };
        let core = Arc::new(PubCore {
            topic: topic.to_string(),
            type_name: M::topic_type(),
            addr,
            machine,
            queue_size,
            config,
            metrics: master.metrics().topic(topic),
            master: master.clone(),
            registration: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            trace,
            tier_hint: AtomicU8::new(0),
            shm_pool: Mutex::new(None),
            shm_loans: options.shm_loans,
        });
        // Fast-path-capable publishers register a local attach port so
        // same-machine subscribers in this process can skip the socket.
        let registration = if core.config.enable_fastpath {
            let weak = Arc::downgrade(&core);
            let port: Weak<dyn LocalAttach> = weak;
            master.register_publisher_local(topic, M::topic_type(), addr, machine, port)?
        } else {
            master.register_publisher(topic, M::topic_type(), addr, machine)?
        };
        // Relaxed: see the Drop-side load — Arc orders this store.
        core.registration.store(registration, Ordering::Relaxed);
        let weak = Arc::downgrade(&core);
        std::thread::spawn(move || PubCore::accept_loop(weak, listener));
        Ok(Publisher {
            core,
            _marker: PhantomData,
        })
    }

    /// Publish a message: encode once (for serialization-free messages this
    /// only clones the buffer pointer) and enqueue on every subscriber
    /// connection. Never blocks; if a connection's transmission queue is
    /// full the frame is dropped for that subscriber (counted in
    /// [`Publisher::dropped`]). A frame larger than the configured
    /// `max_frame_len` is refused outright — every subscriber would reject
    /// it anyway.
    pub fn publish(&self, msg: &M) {
        // Tracing rides on the frame's tag: a single clock read brackets
        // `encode`, and `alloc` falls out of the allocation timestamp the
        // buffer already carries. Untraced publishers skip every clock
        // read on this path.
        let t_pub = self.core.trace.as_ref().map(|_| now_nanos());
        let mut frame = msg.encode();
        if let (Some(table), Some(t0)) = (self.core.trace.as_deref(), t_pub) {
            let t1 = now_nanos();
            let id = tracer().next_trace_id();
            let tier = self.core.tier();
            let tag = frame.trace_mut();
            tag.id = id;
            if tag.born_ns != 0 && tag.born_ns <= t0 {
                tracer().span(table, Stage::Alloc, tier, id, tag.born_ns, t0);
            }
            tracer().span(table, Stage::Encode, tier, id, t0, t1);
        }
        self.core.fan_out(frame, None);
    }

    /// The topic this publisher serves.
    pub fn topic(&self) -> &str {
        &self.core.topic
    }

    /// Address subscribers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Number of currently connected subscribers.
    ///
    /// A pure read: dead entries are counted out here but pruned on the
    /// publish and accept/attach paths, so calling a getter never mutates
    /// transport state.
    pub fn subscriber_count(&self) -> usize {
        self.core
            .conns
            .lock()
            .iter()
            .filter(|c| c.alive.load(Ordering::Acquire))
            .count()
    }

    /// Frames published so far (per `publish` call, not per connection).
    pub fn published(&self) -> u64 {
        self.core.published.load(Ordering::Relaxed)
    }

    /// Frames dropped because a subscriber's queue was full.
    pub fn dropped(&self) -> u64 {
        self.core.dropped.load(Ordering::Relaxed)
    }

    /// The shared per-topic transport metrics this publisher reports into.
    pub fn metrics(&self) -> Arc<TransportMetrics> {
        Arc::clone(&self.core.metrics)
    }

    /// One coherent snapshot of this publisher's counters.
    pub fn stats(&self) -> PublisherStats {
        PublisherStats {
            published: self.published(),
            dropped: self.dropped(),
            subscribers: self.subscriber_count(),
            transport: self.core.metrics.snapshot(),
        }
    }
}

impl<T: SfmMessage> Publisher<SfmBox<T>> {
    /// Loan a message to build **in place inside a shared-memory pool
    /// segment** — the write-in-place publication API (paper §4.3's
    /// "message memory is the wire buffer", taken to its conclusion: the
    /// wire buffer is the *shared* buffer, so publishing copies nothing).
    ///
    /// The loan is segment-backed when the shm tier is live for this
    /// publisher (enabled, platform-supported, at least one shm subscriber
    /// has handshaken, and [`PublisherOptions::shm_loans`] was not turned
    /// off). Otherwise the loan transparently falls back to an ordinary
    /// heap allocation and behaves exactly like `SfmBox::new()` — caller
    /// code is identical either way.
    ///
    /// Returns `None` **only** as backpressure: the shm pool is active but
    /// every loanable segment's write hold is taken (by other outstanding
    /// loans or in-flight frames). Back off and retry, or fall back to
    /// [`publish`](Publisher::publish).
    ///
    /// Dropping the loan without publishing is clean — the segment's
    /// write hold returns to the pool and the allocation record is
    /// released (no sanitizer leak).
    pub fn loan(&self) -> Option<LoanedMessage<T>> {
        if self.core.config.enable_shm && self.core.shm_loans {
            let pool = self.core.shm_pool.lock().clone();
            if let Some(pool) = pool {
                let frame = pool.loan(T::max_size())?;
                // The SharedFrame clone in the guard keeps the segment's
                // write hold (and therefore its generation stamp) alive
                // for as long as any clone of the allocation lives —
                // including fast-path subscribers sharing the buffer.
                let guard: Box<dyn std::any::Any + Send + Sync> = Box::new(frame.clone());
                // SAFETY: the payload region is 64-byte offset into a
                // page-aligned mapping (so 8-aligned), valid for
                // `capacity() >= max_size` bytes while the guard lives,
                // and the write hold guarantees no other writer aliases
                // it until descriptors are committed.
                let mut alloc =
                    unsafe { SfmAlloc::from_extern(frame.payload_ptr(), T::max_size(), guard) };
                if tracer().armed() {
                    // A loan is a genuine allocation event: stamp its
                    // birth so the `alloc` span anchors here rather than
                    // vanishing with the reader-side `from_extern` zero.
                    alloc.set_born_ns(now_nanos());
                }
                // SAFETY: region writable for the full capacity (publisher
                // maps its own pool segments read-write) and un-aliased
                // while building (write hold held above).
                let msg = unsafe { SfmBox::from_alloc(Arc::new(alloc)) };
                return Some(LoanedMessage::new(msg, Some(frame)));
            }
        }
        Some(LoanedMessage::new(SfmBox::new(), None))
    }

    /// Publish a loaned message. For a segment-backed loan the payload is
    /// already in shared memory, so shm subscribers get **zero payload
    /// copies end to end**: the frame's residency slot arrives
    /// pre-resolved and every shm link commits only a 64-byte descriptor.
    /// TCP and fast-path subscribers are served from the same bytes
    /// through the ordinary serialization-free frame (the publisher's
    /// read-write mapping backs those reads), so mixed-tier fan-out needs
    /// no second encoding.
    ///
    /// Tracing mirrors [`publish`](Publisher::publish): `alloc` spans the
    /// loan's lifetime and `encode` the handle construction — with the
    /// `wire_write` copy stage absent by construction on shm links.
    pub fn publish_loaned(&self, loaned: LoanedMessage<T>) {
        let (msg, shm) = loaned.into_parts();
        let t_pub = self.core.trace.as_ref().map(|_| now_nanos());
        let mut frame = msg.encode();
        if let (Some(table), Some(t0)) = (self.core.trace.as_deref(), t_pub) {
            let t1 = now_nanos();
            let id = tracer().next_trace_id();
            let tier = self.core.tier();
            let tag = frame.trace_mut();
            tag.id = id;
            if tag.born_ns != 0 && tag.born_ns <= t0 {
                tracer().span(table, Stage::Alloc, tier, id, tag.born_ns, t0);
            }
            tracer().span(table, Stage::Encode, tier, id, t0, t1);
        }
        let prefilled = shm.map(|sf| {
            // Stamp how many bytes of the segment the message actually
            // used — descriptors publish this length, not the capacity.
            sf.set_len(frame.len());
            let slot: ShmSlot = Arc::new(OnceLock::new());
            let _ = slot.set(Some(sf));
            slot
        });
        self.core.fan_out(frame, prefilled);
    }
}

impl<M: Encode> std::fmt::Debug for Publisher<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("topic", &self.core.topic)
            .field("type", &self.core.type_name)
            .field("subscribers", &self.core.conns.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rossf_sfm::{SfmBox, SfmError, SfmMessage, SfmPod, SfmValidate, SfmVec};

    #[repr(C)]
    struct P {
        data: SfmVec<u8>,
    }
    unsafe impl SfmPod for P {}
    impl SfmValidate for P {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.data.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for P {
        fn type_name() -> &'static str {
            "test/AttachP"
        }
        fn max_size() -> usize {
            256
        }
    }

    fn request(ty: &str, fastpath: Option<&str>) -> ConnectionHeader {
        let mut h = ConnectionHeader::new()
            .with("topic", "attach/neg")
            .with("type", ty)
            .with("machine", "0")
            .with("endian", ConnectionHeader::native_endian());
        if let Some(v) = fastpath {
            h = h.with(FASTPATH_FIELD, v);
        }
        h
    }

    /// The connection-header capability negotiation: a peer that predates
    /// the fast path (no `fastpath` field) is refused *permanently* with a
    /// message naming the capability, so the subscriber knows to fall back
    /// to TCP rather than retry. Mismatched types get the same diagnostic
    /// as the TCP `error=` reply, and a severed loopback link refuses only
    /// *transiently* (an `Io` error the supervisor retries).
    #[test]
    fn attach_local_negotiates_capability_and_faults() {
        let master = Master::new();
        let machine = MachineId(77);
        let publisher: Publisher<SfmBox<P>> = Publisher::create_with(
            &master,
            "attach/neg",
            PublisherOptions::new().queue_size(4),
            machine,
            TransportConfig::default(),
        )
        .unwrap();
        let core = &*publisher.core;

        match core.attach_local(&request(P::type_name(), None)) {
            Err(RosError::Rejected(msg)) => assert!(msg.contains(FASTPATH_FIELD)),
            Err(e) => panic!("expected capability rejection, got {e:?}"),
            Ok(_) => panic!("attach without capability must fail"),
        }
        match core.attach_local(&request("wrong/Type", Some("1"))) {
            Err(RosError::Rejected(msg)) => {
                assert_eq!(msg, "topic carries test/AttachP not wrong/Type");
            }
            Err(e) => panic!("expected type rejection, got {e:?}"),
            Ok(_) => panic!("attach with wrong type must fail"),
        }

        let fault = master.links().inject(machine, machine);
        fault.sever_now();
        match core.attach_local(&request(P::type_name(), Some("1"))) {
            Err(RosError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionRefused);
            }
            Err(e) => panic!("expected transient refusal, got {e:?}"),
            Ok(_) => panic!("attach over a severed link must fail"),
        }
        fault.heal();

        let sink = core
            .attach_local(&request(P::type_name(), Some("1")))
            .map_err(|e| format!("healed attach must succeed: {e:?}"))
            .unwrap();
        assert_eq!(sink.reply.get(FASTPATH_FIELD), Some("1"));
        assert_eq!(sink.reply.get("type"), Some(P::type_name()));
        assert_eq!(publisher.subscriber_count(), 1);
        drop(sink);
        assert_eq!(
            publisher.subscriber_count(),
            0,
            "dropping the sink releases the connection without a publish"
        );
    }
}
