//! The publisher side of a topic.
//!
//! `advertise` binds a TCP listener and registers it with the master. Each
//! subscriber that connects gets its own bounded *transmission queue* (the
//! queue of paper Fig. 8: `publish` deposits a cheap clone of the encoded
//! frame — for serialization-free messages, a clone of the buffer pointer —
//! and returns). TCP queues drain on the process-wide
//! [reactor](rossf_reactor): the listener and every writer are nonblocking
//! state machines on one shared event loop, so the thread count stays O(1)
//! no matter how many subscribers connect. Cross-machine connections are
//! paced by the master's [`LinkTable`](rossf_netsim::LinkTable) through
//! reactor timers, and any [`FaultInjector`](rossf_netsim::FaultInjector)
//! attached to the link is applied frame-by-frame in the writer state
//! machine: delayed frames wait out a timer, dropped frames are skipped,
//! and a severed link shuts the socket down and refuses new connections
//! until healed.

use crate::config::TransportConfig;
use crate::error::RosError;
use crate::fastpath::{LocalAttach, LocalSinkHandle, FASTPATH_FIELD};
use crate::loan::LoanedMessage;
use crate::master::Master;
use crate::metrics::TransportMetrics;
use crate::options::{PublisherOptions, PublisherStats};
use crate::shm::{SHM_EPOCH_FIELD, SHM_FD_FIELD, SHM_FIELD, SHM_PID_FIELD, SHM_PUB_PID_FIELD};
use crate::traits::Encode;
use crate::wire::{
    frame_len_prefix, grow_socket_buffers, ConnectionHeader, OutFrame, ShmSlot, PROJECT_FIELD,
};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use rossf_netsim::{FaultAction, FaultInjector, MachineId, Shaper};
use rossf_reactor::{runtime, Ctl, Event, Handler, Reactor, Token};
use rossf_sfm::{SfmAlloc, SfmBox, SfmMessage};
use rossf_shm::{FrameMeta, SegmentPool, SharedFrame, ShmLink};
use rossf_trace::{now_nanos, tracer, Stage, Tier, TopicTrace};
use std::collections::VecDeque;
use std::io::{BufReader, IoSlice, Read, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Duration;

/// Most frames a writer wakeup admits into one socket flush. Bounds the
/// latency a freshly queued frame can hide behind a long batch while still
/// amortizing the per-wakeup syscall cost.
const WRITE_BATCH: usize = 32;

/// Admission batches one writer dispatch may process before yielding the
/// shared loop back (leftover frames re-notify the token), so a firehose
/// topic cannot starve other links.
const BATCHES_PER_DISPATCH: usize = 4;

struct Conn {
    queue: Sender<OutFrame>,
    alive: Arc<AtomicBool>,
    /// Whether this connection drains into a shared-memory link — those
    /// clones get the publish's [`ShmSlot`] attached so all shm links of
    /// one publish share a single pooled segment.
    is_shm: bool,
    /// Reactor registration of the TCP writer state machine draining this
    /// queue; `None` for shm and fast-path connections (their drains are
    /// channel-timeout loops, not fd-driven). `fan_out` notifies the token
    /// after depositing frames, and `Drop` notifies it after closing the
    /// queue so the writer observes the disconnect.
    token: Option<Token>,
}

/// Reactor handler for the publisher's listening socket: accepts ready
/// connections and hands each handshake to the job pool (header reads and
/// shm link creation block, so they must not run on the shared loop).
///
/// Holds only a `Weak` core reference — the accept path must not keep the
/// publisher alive. When the core is gone (or shutting down) the handler
/// closes itself, dropping the listener.
struct Acceptor {
    listener: TcpListener,
    core: Weak<PubCore>,
}

impl Handler for Acceptor {
    fn on_event(&mut self, event: Event, ctl: &mut Ctl) {
        if matches!(event, Event::Closed) {
            ctl.close();
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let Some(core) = self.core.upgrade() else {
                        ctl.close();
                        return;
                    };
                    // Relaxed: standalone exit flag.
                    if core.shutdown.load(Ordering::Relaxed) {
                        ctl.close();
                        return;
                    }
                    runtime().pool.spawn(move || {
                        let _ = core.handle_subscriber(stream);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                // Transient accept errors (ECONNABORTED and friends): the
                // next readable event retries.
                Err(_) => return,
            }
        }
    }
}

/// One frame admitted to the wire: its length prefix, payload, and the
/// trace bookkeeping captured at admission.
struct Pending {
    frame: OutFrame,
    prefix: [u8; 4],
    /// The projected slice plan when this link negotiated a projection:
    /// the wire unit is then the plan's patched skeleton plus the selected
    /// content segments of `frame`, not the whole frame. `None` = full
    /// frame.
    plan: Option<rossf_sfm::SlicedFrame>,
    /// Payload bytes this frame occupies on the wire (the plan's sub-frame
    /// length, or the full frame length).
    wire_len: usize,
    /// Trace id (0 = untraced) and the wire-write span's start time.
    trace_id: u64,
    t_start: u64,
    /// Position of this frame in the socket's wire order — the sidecar key
    /// the subscriber-side reader settles against.
    seq: u64,
}

/// Zero source for projected sub-frame alignment pads (at most 7 bytes
/// each, so one small constant serves every segment).
static PAD_ZEROS: [u8; 8] = [0; 8];

/// Append `p`'s wire slices — length prefix, then payload: the whole frame,
/// or for a projected link the patched skeleton followed by each selected
/// content segment behind its alignment pad — skipping the first `skip`
/// bytes (already on the wire from a previous partial write).
fn push_wire_slices<'a>(slices: &mut Vec<IoSlice<'a>>, p: &'a Pending, mut skip: usize) {
    let mut emit = |bytes: &'a [u8]| {
        if skip >= bytes.len() {
            skip -= bytes.len();
        } else {
            slices.push(IoSlice::new(&bytes[skip..]));
            skip = 0;
        }
    };
    emit(&p.prefix);
    match &p.plan {
        Some(plan) => {
            emit(&plan.skeleton);
            let frame = p.frame.as_slice();
            for seg in &plan.segments {
                emit(&PAD_ZEROS[..seg.pad]);
                emit(&frame[seg.src.clone()]);
            }
        }
        None => emit(p.frame.as_slice()),
    }
}

/// Why the writer is not admitting frames right now. At most one frame is
/// ever stalled; it rejoins the flow when the armed timer fires.
enum Stall {
    /// An injected [`FaultAction::Delay`]: the frame waits out the delay
    /// *before* admission (faults precede sequencing, so a frame that is
    /// subsequently dropped never consumes a wire seq).
    FaultDelay(OutFrame),
    /// Link pacing: the admitted frame waits out its modeled latency +
    /// transmit time before joining the write queue.
    Pacing(Pending),
}

/// Outcome of one attempt to flush the write queue to the socket.
enum Flush {
    /// Everything queued is on the wire.
    Drained,
    /// The socket would block; wait for writability.
    Blocked,
    /// The peer is gone (EOF on write or a hard error).
    Dead,
}

/// Reactor handler for one TCP subscriber link — the state-machine form of
/// the old per-connection writer thread. Frames arrive on the bounded
/// transmission queue (`fan_out` notifies the token after depositing),
/// pass fault injection, pick up their enqueue/wire-write trace spans and
/// sidecar notes, and drain to the nonblocking socket in vectored batches.
/// Link shaping becomes reactor timers instead of sleeps: each frame's
/// modeled `latency + transmit` wait is charged before it joins the write
/// queue, reproducing the serial per-frame pacing of the threaded writer.
struct TcpWriter {
    stream: TcpStream,
    rx: Receiver<OutFrame>,
    alive: Arc<AtomicBool>,
    injector: Option<Arc<FaultInjector>>,
    metrics: Arc<TransportMetrics>,
    trace: Option<Arc<TopicTrace>>,
    conn_key: u64,
    /// The field projection negotiated at handshake time: every frame on
    /// this link is sliced to the selected ranges before it hits the wire.
    /// `None` = full frames.
    projection: Option<Arc<rossf_sfm::Projection>>,
    /// Frames actually written on this socket, in wire order. Dropped and
    /// severed frames never reach the stream, so they must not advance the
    /// sequence the reader counts.
    wire_seq: u64,
    shaper: Shaper,
    /// Frames admitted and (possibly partially) written; head first.
    writeq: VecDeque<Pending>,
    /// Bytes of the head frame (prefix + payload) already on the wire.
    head_written: usize,
    stall: Option<Stall>,
    /// Current writability interest, tracked to skip no-op updates.
    want_writable: bool,
    /// The transmission queue's senders are gone (publisher dropped): die
    /// once the tail drains.
    disconnected: bool,
}

impl Handler for TcpWriter {
    fn on_event(&mut self, event: Event, ctl: &mut Ctl) {
        match event {
            Event::Closed => self.die(ctl),
            Event::Timer => {
                match self.stall.take() {
                    Some(Stall::FaultDelay(frame)) => self.admit(frame, ctl),
                    Some(Stall::Pacing(pending)) => self.writeq.push_back(pending),
                    None => {}
                }
                self.pump(ctl);
            }
            // Notify (frames deposited / queue closed), Writable (socket
            // unblocked), or a spurious Readable: drive the machine.
            _ => self.pump(ctl),
        }
    }
}

impl TcpWriter {
    /// Admit one fault-passed frame: stamp trace spans and the sidecar
    /// note, assign its wire sequence, then either queue it for writing or
    /// stall it behind a pacing timer.
    fn admit(&mut self, frame: OutFrame, ctl: &mut Ctl) {
        // Slice the frame down to the negotiated projection. Slicing fails
        // only when the frame violates its own schema (unreachable for
        // locally built messages): drop it rather than leak a full frame
        // onto a link whose reader verifies against the projected schema.
        let plan = match self.projection.as_deref() {
            Some(projection) => match projection.slice(frame.as_slice()) {
                Ok(plan) => Some(plan),
                Err(_) => {
                    self.metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            },
            None => None,
        };
        let wire_len = plan.as_ref().map_or(frame.len(), |p| p.wire_len);
        let prefix = match frame_len_prefix(wire_len) {
            Ok(len) => len.to_le_bytes(),
            // Unreachable in practice (`fan_out` bounds frames by
            // `max_frame_len`); treat like the old writer's write failure.
            Err(_) => {
                self.metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        // `enqueue` span ends (and the sidecar note lands) *before* the
        // frame bytes can hit the socket, so the reader can never observe
        // the frame without its note.
        let tag = frame.trace();
        let (trace_id, t_start) = match (self.trace.as_deref(), tag.id) {
            (Some(table), id) if id != 0 => {
                let t = now_nanos();
                tracer().span(table, Stage::Enqueue, Tier::Tcp, id, tag.enqueued_ns, t);
                tracer()
                    .sidecar()
                    .insert(self.conn_key, self.wire_seq, id, t);
                (id, t)
            }
            _ => (0, 0),
        };
        let seq = self.wire_seq;
        self.wire_seq += 1;
        let pending = Pending {
            prefix,
            plan,
            wire_len,
            trace_id,
            t_start,
            seq,
            frame,
        };
        // Per-frame pacing parity with the threaded `ShapedWriter`: charge
        // the link latency once per frame plus the transmit time of prefix
        // and payload — the *wire* payload, so a projected link is paced by
        // what it actually transmits.
        let wait = self.shaper.profile().latency + self.shaper.reserve(4 + pending.wire_len);
        if wait.is_zero() {
            self.writeq.push_back(pending);
        } else {
            self.stall = Some(Stall::Pacing(pending));
            ctl.arm_timer(wait);
        }
    }

    /// Drive the machine: flush queued bytes, then admit more frames, up
    /// to [`BATCHES_PER_DISPATCH`] rounds before yielding the shared loop.
    fn pump(&mut self, ctl: &mut Ctl) {
        for _ in 0..BATCHES_PER_DISPATCH {
            match self.flush_writeq() {
                Flush::Blocked => {
                    self.set_writable(true, ctl);
                    return;
                }
                Flush::Dead => {
                    self.die(ctl);
                    return;
                }
                Flush::Drained => self.set_writable(false, ctl),
            }
            if self.stall.is_some() {
                // A timer owns the next step; nothing to do until it fires.
                return;
            }
            let mut admitted = false;
            while self.writeq.len() < WRITE_BATCH {
                match self.rx.try_recv() {
                    Ok(frame) => {
                        admitted = true;
                        match self
                            .injector
                            .as_ref()
                            .map_or(FaultAction::Pass, |f| f.next_frame_action())
                        {
                            FaultAction::Pass => {
                                self.admit(frame, ctl);
                                if self.stall.is_some() {
                                    break;
                                }
                            }
                            FaultAction::Delay(d) => {
                                self.stall = Some(Stall::FaultDelay(frame));
                                ctl.arm_timer(d);
                                break;
                            }
                            FaultAction::Drop => {
                                self.metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                            }
                            FaultAction::Sever => {
                                // The frame is lost and the connection cut
                                // at the transport level, exactly like a
                                // yanked cable.
                                self.metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                                let _ = self.stream.shutdown(Shutdown::Both);
                                self.die(ctl);
                                return;
                            }
                        }
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        self.disconnected = true;
                        break;
                    }
                }
            }
            if self.writeq.is_empty() {
                if self.stall.is_some() {
                    return;
                }
                if self.disconnected {
                    self.die(ctl);
                    return;
                }
                if !admitted {
                    return; // idle: wait for the next notify
                }
                // Admitted but everything was fault-dropped: poll again.
            }
        }
        // Batch cap hit with work remaining: hand the loop back to other
        // links and reschedule ourselves.
        if !self.writeq.is_empty() || !self.rx.is_empty() {
            let token = ctl.token();
            ctl.reactor().notify(token);
        }
    }

    /// One vectored write over everything queued, resuming the head frame
    /// at its partial-write offset.
    fn flush_writeq(&mut self) -> Flush {
        while !self.writeq.is_empty() {
            let wrote = {
                let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(self.writeq.len() * 2);
                for (i, p) in self.writeq.iter().enumerate() {
                    let skip = if i == 0 { self.head_written } else { 0 };
                    push_wire_slices(&mut slices, p, skip);
                }
                self.stream.write_vectored(&slices)
            };
            match wrote {
                Ok(0) => return Flush::Dead,
                Ok(mut n) => {
                    while n > 0 {
                        let head_len = match self.writeq.front() {
                            Some(p) => 4 + p.wire_len,
                            None => break,
                        };
                        let remaining = head_len - self.head_written;
                        if n >= remaining {
                            n -= remaining;
                            self.head_written = 0;
                            let done = self.writeq.pop_front().expect("head frame exists");
                            self.frame_done(done);
                        } else {
                            self.head_written += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Flush::Blocked,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Flush::Dead,
            }
        }
        Flush::Drained
    }

    /// A frame's last byte hit the socket: close its wire-write span,
    /// settle its sidecar note, and count it sent.
    fn frame_done(&mut self, p: Pending) {
        if let (Some(table), true) = (self.trace.as_deref(), p.trace_id != 0) {
            let t1 = now_nanos();
            tracer().span(
                table,
                Stage::WireWrite,
                Tier::Tcp,
                p.trace_id,
                p.t_start,
                t1,
            );
            tracer().sidecar().update_sent(self.conn_key, p.seq, t1);
        }
        self.metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .bytes_sent
            .fetch_add(p.wire_len as u64, Ordering::Relaxed);
        if p.plan.is_some() {
            self.metrics
                .projection_frames
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn set_writable(&mut self, want: bool, ctl: &mut Ctl) {
        if self.want_writable != want {
            self.want_writable = want;
            // Readability is never wanted: hangup delivery does not
            // require it.
            ctl.set_interest(false, want);
        }
    }

    /// Tear the link down: mark the connection dead for the pruners, count
    /// the disconnect once, and drop out of the loop (closing the socket).
    fn die(&mut self, ctl: &mut Ctl) {
        // Swap so a Closed event racing a sever counts one disconnect.
        // Relaxed: standalone liveness flag; the pruner that reads it takes
        // the sink lock, which orders the removal.
        if self.alive.swap(false, Ordering::Relaxed) {
            self.metrics.disconnects.fetch_add(1, Ordering::Relaxed);
        }
        ctl.close();
    }
}

struct PubCore {
    topic: String,
    type_name: &'static str,
    addr: SocketAddr,
    machine: MachineId,
    queue_size: usize,
    config: TransportConfig,
    metrics: Arc<TransportMetrics>,
    master: Master,
    /// Set once right after master registration (0 until then); the id is
    /// not known when the core is built because the fast-path registration
    /// needs a `Weak` of the finished core.
    registration: AtomicU64,
    conns: Mutex<Vec<Arc<Conn>>>,
    shutdown: AtomicBool,
    published: AtomicU64,
    dropped: AtomicU64,
    /// The topic's tracing table when this publisher was created with
    /// `PublisherOptions::trace(true)`; `None` keeps the publish path free
    /// of clock reads and histogram writes.
    trace: Option<Arc<TopicTrace>>,
    /// [`Tier`] index the publish-side `alloc`/`encode` spans are attributed
    /// to: set to fast path when a same-process subscriber attaches, back to
    /// TCP when a socket subscriber handshakes. A heuristic — a publisher
    /// serving both at once attributes to the most recent arrival.
    tier_hint: AtomicU8,
    /// Segment pool shared by every shm link this publisher grants, so the
    /// memfd count stays bounded by [`rossf_shm::DIR_CAP`] no matter how
    /// many subscribers attach. Created lazily on the first grant.
    shm_pool: Mutex<Option<Arc<SegmentPool>>>,
    /// Whether `Publisher::loan` may hand out shared-memory-backed loans
    /// ([`PublisherOptions::shm_loans`], on by default).
    shm_loans: bool,
    /// The message type's layout schema, resolved from `M::schema()` at
    /// advertise time; used to answer subscriber projection requests.
    /// `None` means projection requests are silently declined (the link
    /// carries full frames).
    schema: Option<&'static rossf_sfm::MessageSchema>,
    /// The process-wide event loop this publisher's listener and TCP
    /// writers are registered on.
    reactor: Reactor,
    /// Reactor registration of the accept handler; set once right after
    /// `advertise` registers it, deregistered (closing the listener) when
    /// the core drops.
    listener_token: OnceLock<Token>,
}

impl PubCore {
    /// The tier the publish-side spans are currently attributed to.
    fn tier(&self) -> Tier {
        match self.tier_hint.load(Ordering::Relaxed) {
            1 => Tier::Fastpath,
            2 => Tier::Shm,
            _ => Tier::Tcp,
        }
    }

    /// Splice a new connection into the list, pruning dead entries while
    /// the lock is held anyway (the accept/attach-side half of the pruning
    /// that `subscriber_count` no longer does).
    fn add_conn(&self, conn: Arc<Conn>) {
        let mut conns = self.conns.lock();
        conns.retain(|c| c.alive.load(Ordering::Acquire));
        conns.push(conn);
    }

    fn handle_subscriber(self: Arc<Self>, mut stream: TcpStream) -> Result<(), RosError> {
        stream.set_nodelay(true)?;
        // Bound the handshake: a connector that never sends a header must
        // not pin this thread.
        stream.set_read_timeout(Some(self.config.handshake_timeout))?;
        let header = {
            let mut reader = BufReader::new(stream.try_clone()?);
            ConnectionHeader::read_from(&mut reader)?
        };
        stream.set_read_timeout(None)?;
        let sub_type = header.get("type").unwrap_or_default().to_string();
        if sub_type != self.type_name {
            let reply = ConnectionHeader::new().with(
                "error",
                format!("topic carries {} not {}", self.type_name, sub_type),
            );
            reply.write_to(&mut stream)?;
            return Err(RosError::TypeMismatch {
                topic: self.topic.clone(),
                registered: self.type_name.to_string(),
                attempted: sub_type,
            });
        }
        let sub_machine: MachineId = header
            .get("machine")
            .and_then(|m| m.parse::<u32>().ok())
            .unwrap_or_default()
            .into();

        // A severed link refuses new connections: close without a reply so
        // the subscriber sees a transport failure and keeps retrying under
        // its backoff schedule until the link heals.
        let injector = self.master.links().fault(self.machine, sub_machine);
        if injector.as_ref().is_some_and(|f| f.is_severed()) {
            return Err(RosError::Rejected("link severed".to_string()));
        }

        // Shared-memory eligibility: both sides opted in, same simulated
        // machine, a *different* process (same-process traffic prefers the
        // fast path unless `shm_same_process` overrides), and a supported
        // platform. Link creation failure withholds the grant silently —
        // the connection proceeds over TCP with byte-identical frames.
        let sub_pid = header
            .get(SHM_PID_FIELD)
            .and_then(|p| p.parse::<u32>().ok());
        let shm_link = if self.config.enable_shm
            && header.get(SHM_FIELD) == Some("1")
            && sub_machine == self.machine
            && rossf_shm::supported()
            && sub_pid.is_some_and(|p| p != std::process::id() || self.config.shm_same_process)
        {
            let pool = {
                let mut pool = self.shm_pool.lock();
                Arc::clone(pool.get_or_insert_with(|| Arc::new(SegmentPool::new())))
            };
            ShmLink::create(pool, self.queue_size.max(1), rossf_shm::fresh_epoch()).ok()
        } else {
            None
        };

        // Field-projection negotiation (TCP only — the zero-copy tiers
        // always carry the full frame). The grant is echoed back only when
        // the spec resolves against this publisher's schema *and* is already
        // canonical, so both sides agree byte-for-byte on what was granted;
        // anything else falls back to full frames, which old subscribers
        // (that never sent the field) handle unchanged.
        let projection = match (&shm_link, header.get(PROJECT_FIELD), self.schema) {
            (None, Some(spec), Some(schema)) => rossf_sfm::Projection::from_spec(schema, spec)
                .ok()
                .filter(|p| p.spec() == spec)
                .map(Arc::new),
            _ => None,
        };

        let mut reply = ConnectionHeader::new()
            .with("type", self.type_name)
            .with("topic", &self.topic)
            .with("endian", ConnectionHeader::native_endian());
        if let Some(link) = &shm_link {
            reply = reply
                .with(SHM_FIELD, "1")
                .with(SHM_PUB_PID_FIELD, std::process::id().to_string())
                .with(SHM_FD_FIELD, link.ctrl_fd().to_string())
                .with(SHM_EPOCH_FIELD, link.epoch().to_string());
        }
        if let Some(p) = &projection {
            reply = reply.with(PROJECT_FIELD, p.spec());
        }
        reply.write_to(&mut stream)?;
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);

        if let Some(link) = shm_link {
            self.metrics.shm_handshakes.fetch_add(1, Ordering::Relaxed);
            // The ring producer blocks on the transmission queue for the
            // life of the link — a dedicated thread, never a pool worker
            // (this function runs on the pool, and four shm links would
            // otherwise starve it). The grant condition above guarantees
            // `sub_pid` is present.
            let core = Arc::clone(&self);
            let pid = sub_pid.unwrap_or_default();
            let spawned = std::thread::Builder::new()
                .name("rossf-shm-pub".to_string())
                .spawn(move || {
                    let _ = core.run_shm_link(stream, link, injector, pid);
                });
            if let Err(e) = spawned {
                return Err(RosError::Io(e));
            }
            return Ok(());
        }

        // Link shaping: pace the data path if the subscriber lives on a
        // different simulated machine.
        let profile = self.master.links().profile(self.machine, sub_machine);

        let (tx, rx) = bounded::<OutFrame>(self.queue_size.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        // A socket subscriber arrived: attribute publish-side spans to TCP.
        self.tier_hint.store(0, Ordering::Relaxed);
        // Per-connection trace state. The connection key mirrors the
        // reader's `conn_key(peer, local)` — same address pair, same order.
        let trace = self.trace.clone();
        let conn_key = match (stream.local_addr(), stream.peer_addr()) {
            (Ok(local), Ok(peer)) => rossf_trace::conn_key(&local.to_string(), &peer.to_string()),
            _ => 0,
        };
        // Hand the socket to the shared event loop: the writer is a
        // nonblocking state machine driven by notify/timer/writable events,
        // not a dedicated thread. The handler owns the stream; it must not
        // hold a strong core reference, or dropping the last Publisher
        // could never close the queue it drains.
        grow_socket_buffers(&stream);
        stream.set_nonblocking(true)?;
        let fd = stream.as_raw_fd();
        if projection.is_some() {
            self.metrics
                .projection_handshakes
                .fetch_add(1, Ordering::Relaxed);
        }
        let writer = TcpWriter {
            stream,
            rx,
            alive: Arc::clone(&alive),
            injector,
            metrics: Arc::clone(&self.metrics),
            trace,
            conn_key,
            projection,
            wire_seq: 0,
            shaper: Shaper::new(profile),
            writeq: VecDeque::new(),
            head_written: 0,
            stall: None,
            want_writable: false,
            disconnected: false,
        };
        let token = self.reactor.register(fd, false, false, Box::new(writer));
        self.add_conn(Arc::new(Conn {
            queue: tx,
            alive,
            is_shm: false,
            token: Some(token),
        }));
        Ok(())
    }

    /// Producer half of one shared-memory link — the shm analogue of the
    /// TCP writer loop above. Frames drain from the transmission queue
    /// into the descriptor ring: one copy into a pooled segment
    /// (`wire_write`), then a lock-free descriptor publish. The handshake
    /// socket stays open as the liveness channel: the subscriber never
    /// writes on it again, so any read outcome other than `WouldBlock`
    /// means the subscriber is gone and the link tears down — closing the
    /// ring, draining unconsumed descriptors, settling reader-abandoned
    /// references, and, if the subscriber *process* died, reclaiming the
    /// references it still held on popped frames so no pool slot stays
    /// pinned by a crashed reader.
    fn run_shm_link(
        self: Arc<Self>,
        mut stream: TcpStream,
        mut link: ShmLink,
        injector: Option<Arc<FaultInjector>>,
        sub_pid: u32,
    ) -> Result<(), RosError> {
        let (tx, rx) = bounded::<OutFrame>(self.queue_size.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        self.add_conn(Arc::new(Conn {
            queue: tx,
            alive: Arc::clone(&alive),
            is_shm: true,
            token: None,
        }));
        let metrics = Arc::clone(&self.metrics);
        // An shm subscriber arrived: attribute publish-side spans to it.
        self.tier_hint.store(2, Ordering::Relaxed);
        let trace = self.trace.clone();
        stream.set_nonblocking(true)?;
        // Release our strong reference: the producer loop must not keep
        // the core alive, or dropping the last Publisher could never close
        // the queue this loop waits on.
        drop(self);

        let mut probe = [0u8; 1];
        // Descriptor publication is batched: frames that accumulated in
        // the transmission queue ride one ring publication and one reader
        // wake (`commit_shared_n`/`push_n`) instead of one each.
        const SHM_BATCH: usize = 32;
        'link: loop {
            // Short timeout so subscriber departure (EOF on the liveness
            // socket) is noticed even when nothing is being published.
            let first = match rx.recv_timeout(Duration::from_millis(20)) {
                Ok(frame) => Some(frame),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => break 'link, // publisher dropped
            };
            match stream.read(&mut probe) {
                // EOF — or protocol-violating bytes; either way the
                // subscriber's end of the link is dead.
                Ok(_) => break 'link,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(_) => break 'link,
            }
            let Some(first) = first else {
                // Idle tick: settle any references the reader declared
                // abandoned (inherited but unmappable on its side) so the
                // pool slots un-pin without waiting for teardown.
                link.reconcile_abandoned();
                continue;
            };
            let mut frames = vec![first];
            while frames.len() < SHM_BATCH {
                match rx.try_recv() {
                    Ok(frame) => frames.push(frame),
                    // Empty now; a disconnect is caught by the next recv.
                    Err(_) => break,
                }
            }
            // Frames admitted before a sever still get published below;
            // the sever cuts the link after them, like a socket would.
            let mut sever = false;
            let mut batch: Vec<(SharedFrame, FrameMeta)> = Vec::with_capacity(frames.len());
            for frame in &frames {
                // Injected faults apply to the ring handoff exactly as
                // they do to socket writes: a dropped frame never reaches
                // the ring, a severed link cuts the socket so both sides
                // tear down.
                match injector
                    .as_ref()
                    .map_or(FaultAction::Pass, |f| f.next_frame_action())
                {
                    FaultAction::Pass => {}
                    FaultAction::Delay(d) => std::thread::sleep(d),
                    FaultAction::Drop => {
                        metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    FaultAction::Sever => {
                        metrics.frames_faulted.fetch_add(1, Ordering::Relaxed);
                        sever = true;
                        break;
                    }
                }
                let tag = frame.trace();
                let t_copy_start = match (trace.as_deref(), tag.id) {
                    (Some(table), id) if id != 0 => {
                        let t = now_nanos();
                        tracer().span(table, Stage::Enqueue, Tier::Shm, id, tag.enqueued_ns, t);
                        Some(t)
                    }
                    _ => None,
                };
                // Resolve the frame's shared-memory residency: the first
                // link thread of this publish performs the *single* copy
                // into a pooled segment; every later thread (and a loaned
                // frame, which arrives pre-resolved because it was built
                // in the segment) reuses that frame with a descriptor-only
                // commit. `wire_write` spans telescope around the copy
                // exactly as before, but only on the thread that actually
                // copied — descriptor-only commits have no copy stage to
                // attribute.
                let mut copied_here = false;
                let shared: Option<SharedFrame> = match frame.shm_slot() {
                    Some(slot) => slot
                        .get_or_init(|| {
                            copied_here = true;
                            link.pool().prepare_shared(frame.as_slice())
                        })
                        .clone(),
                    // No slot attached (a frame enqueued before this link
                    // joined the connection list mid-publish): fall back to
                    // a private single-link copy.
                    None => {
                        copied_here = true;
                        link.pool().prepare_shared(frame.as_slice())
                    }
                };
                match shared {
                    // Pool exhausted: some slots may only look pinned
                    // because the reader abandoned their references —
                    // settle those before the next frame retries.
                    None => {
                        metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                        link.reconcile_abandoned();
                    }
                    Some(sf) => {
                        let t_pushed = if t_copy_start.is_some() {
                            now_nanos()
                        } else {
                            0
                        };
                        if copied_here {
                            if let (Some(table), Some(t0)) = (trace.as_deref(), t_copy_start) {
                                tracer().span(
                                    table,
                                    Stage::WireWrite,
                                    Tier::Shm,
                                    tag.id,
                                    t0,
                                    t_pushed,
                                );
                            }
                        }
                        batch.push((
                            sf,
                            FrameMeta {
                                trace_id: tag.id,
                                born_ns: tag.born_ns,
                                enqueued_ns: tag.enqueued_ns,
                                pushed_ns: t_pushed,
                            },
                        ));
                    }
                }
            }
            let pushed = link.commit_shared_n(&batch);
            for (sf, _) in &batch[..pushed] {
                metrics.frames_sent.fetch_add(1, Ordering::Relaxed);
                metrics
                    .bytes_sent
                    .fetch_add(sf.len() as u64, Ordering::Relaxed);
                metrics.shm_frames.fetch_add(1, Ordering::Relaxed);
            }
            if pushed < batch.len() {
                // Ring full mid-batch: the suffix was rolled back.
                metrics
                    .frames_dropped
                    .fetch_add((batch.len() - pushed) as u64, Ordering::Relaxed);
            }
            if sever {
                let _ = stream.shutdown(Shutdown::Both);
                break 'link;
            }
        }
        link.close();
        link.drain(); // unconsumed descriptors → their segments recycle
        link.reconcile_abandoned();
        // Relaxed: see the TCP writer above — pruning is lock-ordered.
        alive.store(false, Ordering::Relaxed);
        metrics.disconnects.fetch_add(1, Ordering::Relaxed);
        // A subscriber that *crashed* still holding popped frames would pin
        // their segments forever: the EOF above usually arrives while the
        // peer is mid-exit, so wait briefly for it to leave the process
        // table and then reclaim its outstanding holds. A peer that is
        // still alive keeps them — stashed message buffers may legally
        // outlive the subscription, and the reader releases them itself.
        if sub_pid != std::process::id() {
            for _ in 0..50 {
                if !rossf_shm::sys::process_alive(sub_pid) {
                    link.reclaim_reader_holds();
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
        drop(link);
        Ok(())
    }

    /// Fan one encoded frame out to every subscriber connection — the
    /// shared tail of `publish` and `publish_loaned`. Never blocks; a full
    /// transmission queue drops the frame for that subscriber only.
    ///
    /// `loaned` carries the pre-resolved shared-memory residency of a
    /// loaned publish (the message was built inside a pool segment).
    /// Otherwise, when at least one live shm connection will receive the
    /// frame, an *empty* slot is created here so that however many shm
    /// links drain it, only the first performs the copy into a pooled
    /// segment and the rest commit descriptors against the same one (the
    /// copy-per-link fix). Clones bound for TCP or fast-path connections
    /// never carry the slot — holding it from a slow socket queue would
    /// pin the segment's write hold for no benefit.
    fn fan_out(&self, frame: OutFrame, loaned: Option<ShmSlot>) {
        if frame.len() > self.config.max_frame_len {
            self.metrics
                .frames_dropped_oversized
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.published.fetch_add(1, Ordering::Relaxed);
        let metrics = &self.metrics;
        // Snapshot the connection list so the fan-out (try_send plus its
        // metrics bookkeeping) runs without the lock: a concurrent accept,
        // attach, or `publish` from another clone is never serialized
        // behind this one.
        let snapshot: Vec<Arc<Conn>> = self.conns.lock().clone();
        let slot = loaned.or_else(|| {
            snapshot
                .iter()
                .any(|c| c.is_shm && c.alive.load(Ordering::Acquire))
                .then(|| Arc::new(OnceLock::new()))
        });
        let mut saw_dead = false;
        for conn in &snapshot {
            // Each connection's clone carries its own enqueue timestamp
            // (`TraceTag` is `Copy`, so clones do not alias).
            let mut per_conn = frame.clone();
            if per_conn.trace().id != 0 {
                per_conn.trace_mut().enqueued_ns = now_nanos();
            }
            if conn.is_shm {
                if let Some(slot) = &slot {
                    per_conn.set_shm_slot(Arc::clone(slot));
                }
            }
            match conn.queue.try_send(per_conn) {
                Ok(()) => {
                    metrics.observe_queue_depth(conn.queue.len() as u64);
                    // Wake the reactor-side writer; coalesced, so a burst
                    // of publishes costs one dispatch.
                    if let Some(token) = conn.token {
                        self.reactor.notify(token);
                    }
                }
                Err(TrySendError::Full(_)) => {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    metrics.frames_dropped.fetch_add(1, Ordering::Relaxed);
                }
                Err(TrySendError::Disconnected(_)) => {
                    conn.alive.store(false, Ordering::Release);
                    saw_dead = true;
                }
            }
        }
        if saw_dead {
            self.conns
                .lock()
                .retain(|c| c.alive.load(Ordering::Acquire));
        }
    }
}

impl LocalAttach for PubCore {
    fn attach_local(&self, header: &ConnectionHeader) -> Result<LocalSinkHandle, RosError> {
        // Relaxed: standalone exit flag (see the accept loop).
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(RosError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "publisher shutting down",
            )));
        }
        let sub_type = header.get("type").unwrap_or_default();
        if sub_type != self.type_name {
            // Same wording as the TCP `error=` reply so callers see one
            // diagnostic regardless of path.
            return Err(RosError::Rejected(format!(
                "topic carries {} not {}",
                self.type_name, sub_type
            )));
        }
        if header.get(FASTPATH_FIELD) != Some("1") {
            // Peer predates the capability: permanent refusal, the
            // subscriber falls back to TCP for this endpoint.
            return Err(RosError::Rejected(
                "fastpath capability missing from header".to_string(),
            ));
        }
        // The loopback link's fault injector governs this attachment; a
        // severed link refuses it transiently (retry under backoff until
        // healed), exactly like the TCP accept path.
        let injector = self.master.links().fault(self.machine, self.machine);
        if injector.as_ref().is_some_and(|f| f.is_severed()) {
            return Err(RosError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "link severed",
            )));
        }
        let reply = ConnectionHeader::new()
            .with("type", self.type_name)
            .with("topic", &self.topic)
            .with("endian", ConnectionHeader::native_endian())
            .with(FASTPATH_FIELD, "1");
        let (tx, rx) = bounded::<OutFrame>(self.queue_size.max(1));
        let alive = Arc::new(AtomicBool::new(true));
        self.add_conn(Arc::new(Conn {
            queue: tx,
            alive: Arc::clone(&alive),
            is_shm: false,
            token: None,
        }));
        self.metrics.handshakes.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .fastpath_handshakes
            .fetch_add(1, Ordering::Relaxed);
        // A same-process subscriber attached: attribute publish-side spans
        // to the fast path.
        self.tier_hint.store(1, Ordering::Relaxed);
        Ok(LocalSinkHandle {
            reply,
            rx,
            alive,
            injector,
        })
    }
}

impl Drop for PubCore {
    fn drop(&mut self) {
        // Relaxed: standalone exit flag; worker threads only ever exit
        // on observing it, so no write ordering is required.
        self.shutdown.store(true, Ordering::Relaxed);
        // Relaxed: `registration` was stored before this core was shared
        // (`Arc::downgrade` in `advertise`), and Arc's refcount already
        // orders construction before Drop.
        self.master
            .unregister_publisher(&self.topic, self.registration.load(Ordering::Relaxed));
        // Close every transmission queue *before* notifying the writers:
        // the senders must be gone first so each woken writer observes the
        // disconnect, drains its tail, and deregisters itself.
        let conns: Vec<Arc<Conn>> = std::mem::take(&mut *self.conns.lock());
        let tokens: Vec<Token> = conns.iter().filter_map(|c| c.token).collect();
        drop(conns);
        for token in tokens {
            self.reactor.notify(token);
        }
        // Deregistering drops the accept handler and with it the listener.
        if let Some(token) = self.listener_token.get() {
            self.reactor.deregister(*token);
        }
    }
}

/// A handle for publishing messages of type `M` on one topic (the object
/// returned by `nh.advertise(...)` in the paper's Fig. 3).
///
/// Cloning shares the same underlying listener and connections; the
/// listener shuts down when the last clone drops.
pub struct Publisher<M: Encode> {
    core: Arc<PubCore>,
    _marker: PhantomData<fn(&M)>,
}

impl<M: Encode> Clone for Publisher<M> {
    fn clone(&self) -> Self {
        Publisher {
            core: Arc::clone(&self.core),
            _marker: PhantomData,
        }
    }
}

impl<M: Encode> Publisher<M> {
    pub(crate) fn create_with(
        master: &Master,
        topic: &str,
        options: PublisherOptions,
        machine: MachineId,
        default_config: TransportConfig,
    ) -> Result<Self, RosError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let config = options.transport.unwrap_or(default_config);
        let queue_size = if options.queue_size == 0 {
            config.queue_size
        } else {
            options.queue_size
        };
        let trace = if options.trace {
            tracer().arm();
            Some(tracer().topic(topic))
        } else {
            None
        };
        let core = Arc::new(PubCore {
            topic: topic.to_string(),
            type_name: M::topic_type(),
            addr,
            machine,
            queue_size,
            config,
            metrics: master.metrics().topic(topic),
            master: master.clone(),
            registration: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
            published: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            trace,
            tier_hint: AtomicU8::new(0),
            shm_pool: Mutex::new(None),
            shm_loans: options.shm_loans,
            schema: M::schema(),
            reactor: runtime().reactor,
            listener_token: OnceLock::new(),
        });
        // Fast-path-capable publishers register a local attach port so
        // same-machine subscribers in this process can skip the socket.
        let registration = if core.config.enable_fastpath {
            let weak = Arc::downgrade(&core);
            let port: Weak<dyn LocalAttach> = weak;
            master.register_publisher_local(topic, M::topic_type(), addr, machine, port)?
        } else {
            master.register_publisher(topic, M::topic_type(), addr, machine)?
        };
        // Relaxed: see the Drop-side load — Arc orders this store.
        core.registration.store(registration, Ordering::Relaxed);
        // The listener joins the shared event loop: the handler owns the
        // socket and only a `Weak` core reference, so an orphaned acceptor
        // cannot keep a dropped publisher alive.
        let fd = listener.as_raw_fd();
        let token = core.reactor.register(
            fd,
            true,
            false,
            Box::new(Acceptor {
                listener,
                core: Arc::downgrade(&core),
            }),
        );
        let _ = core.listener_token.set(token);
        Ok(Publisher {
            core,
            _marker: PhantomData,
        })
    }

    /// Publish a message: encode once (for serialization-free messages this
    /// only clones the buffer pointer) and enqueue on every subscriber
    /// connection. Never blocks; if a connection's transmission queue is
    /// full the frame is dropped for that subscriber (counted in
    /// [`Publisher::dropped`]). A frame larger than the configured
    /// `max_frame_len` is refused outright — every subscriber would reject
    /// it anyway.
    pub fn publish(&self, msg: &M) {
        // Tracing rides on the frame's tag: a single clock read brackets
        // `encode`, and `alloc` falls out of the allocation timestamp the
        // buffer already carries. Untraced publishers skip every clock
        // read on this path.
        let t_pub = self.core.trace.as_ref().map(|_| now_nanos());
        let mut frame = msg.encode();
        if let (Some(table), Some(t0)) = (self.core.trace.as_deref(), t_pub) {
            let t1 = now_nanos();
            let id = tracer().next_trace_id();
            let tier = self.core.tier();
            let tag = frame.trace_mut();
            tag.id = id;
            if tag.born_ns != 0 && tag.born_ns <= t0 {
                tracer().span(table, Stage::Alloc, tier, id, tag.born_ns, t0);
            }
            tracer().span(table, Stage::Encode, tier, id, t0, t1);
        }
        self.core.fan_out(frame, None);
    }

    /// The topic this publisher serves.
    pub fn topic(&self) -> &str {
        &self.core.topic
    }

    /// Address subscribers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.core.addr
    }

    /// Number of currently connected subscribers.
    ///
    /// A pure read: dead entries are counted out here but pruned on the
    /// publish and accept/attach paths, so calling a getter never mutates
    /// transport state.
    pub fn subscriber_count(&self) -> usize {
        self.core
            .conns
            .lock()
            .iter()
            .filter(|c| c.alive.load(Ordering::Acquire))
            .count()
    }

    /// Frames published so far (per `publish` call, not per connection).
    pub fn published(&self) -> u64 {
        self.core.published.load(Ordering::Relaxed)
    }

    /// Frames dropped because a subscriber's queue was full.
    pub fn dropped(&self) -> u64 {
        self.core.dropped.load(Ordering::Relaxed)
    }

    /// The shared per-topic transport metrics this publisher reports into.
    pub fn metrics(&self) -> Arc<TransportMetrics> {
        Arc::clone(&self.core.metrics)
    }

    /// One coherent snapshot of this publisher's counters.
    pub fn stats(&self) -> PublisherStats {
        let transport = self.core.metrics.snapshot();
        PublisherStats {
            published: self.published(),
            dropped: self.dropped(),
            subscribers: self.subscriber_count(),
            bytes_sent: transport.bytes_sent,
            bytes_received: transport.bytes_received,
            transport,
        }
    }
}

impl<T: SfmMessage> Publisher<SfmBox<T>> {
    /// Loan a message to build **in place inside a shared-memory pool
    /// segment** — the write-in-place publication API (paper §4.3's
    /// "message memory is the wire buffer", taken to its conclusion: the
    /// wire buffer is the *shared* buffer, so publishing copies nothing).
    ///
    /// The loan is segment-backed when the shm tier is live for this
    /// publisher (enabled, platform-supported, at least one shm subscriber
    /// has handshaken, and [`PublisherOptions::shm_loans`] was not turned
    /// off). Otherwise the loan transparently falls back to an ordinary
    /// heap allocation and behaves exactly like `SfmBox::new()` — caller
    /// code is identical either way.
    ///
    /// Returns `None` **only** as backpressure: the shm pool is active but
    /// every loanable segment's write hold is taken (by other outstanding
    /// loans or in-flight frames). Back off and retry, or fall back to
    /// [`publish`](Publisher::publish).
    ///
    /// Dropping the loan without publishing is clean — the segment's
    /// write hold returns to the pool and the allocation record is
    /// released (no sanitizer leak).
    pub fn loan(&self) -> Option<LoanedMessage<T>> {
        if self.core.config.enable_shm && self.core.shm_loans {
            let pool = self.core.shm_pool.lock().clone();
            if let Some(pool) = pool {
                let frame = pool.loan(T::max_size())?;
                // The SharedFrame clone in the guard keeps the segment's
                // write hold (and therefore its generation stamp) alive
                // for as long as any clone of the allocation lives —
                // including fast-path subscribers sharing the buffer.
                let guard: Box<dyn std::any::Any + Send + Sync> = Box::new(frame.clone());
                // SAFETY: the payload region is 64-byte offset into a
                // page-aligned mapping (so 8-aligned), valid for
                // `capacity() >= max_size` bytes while the guard lives,
                // and the write hold guarantees no other writer aliases
                // it until descriptors are committed.
                let mut alloc =
                    unsafe { SfmAlloc::from_extern(frame.payload_ptr(), T::max_size(), guard) };
                if tracer().armed() {
                    // A loan is a genuine allocation event: stamp its
                    // birth so the `alloc` span anchors here rather than
                    // vanishing with the reader-side `from_extern` zero.
                    alloc.set_born_ns(now_nanos());
                }
                // SAFETY: region writable for the full capacity (publisher
                // maps its own pool segments read-write) and un-aliased
                // while building (write hold held above).
                let msg = unsafe { SfmBox::from_alloc(Arc::new(alloc)) };
                return Some(LoanedMessage::new(msg, Some(frame)));
            }
        }
        Some(LoanedMessage::new(SfmBox::new(), None))
    }

    /// Publish a loaned message. For a segment-backed loan the payload is
    /// already in shared memory, so shm subscribers get **zero payload
    /// copies end to end**: the frame's residency slot arrives
    /// pre-resolved and every shm link commits only a 64-byte descriptor.
    /// TCP and fast-path subscribers are served from the same bytes
    /// through the ordinary serialization-free frame (the publisher's
    /// read-write mapping backs those reads), so mixed-tier fan-out needs
    /// no second encoding.
    ///
    /// Tracing mirrors [`publish`](Publisher::publish): `alloc` spans the
    /// loan's lifetime and `encode` the handle construction — with the
    /// `wire_write` copy stage absent by construction on shm links.
    pub fn publish_loaned(&self, loaned: LoanedMessage<T>) {
        let (msg, shm) = loaned.into_parts();
        let t_pub = self.core.trace.as_ref().map(|_| now_nanos());
        let mut frame = msg.encode();
        if let (Some(table), Some(t0)) = (self.core.trace.as_deref(), t_pub) {
            let t1 = now_nanos();
            let id = tracer().next_trace_id();
            let tier = self.core.tier();
            let tag = frame.trace_mut();
            tag.id = id;
            if tag.born_ns != 0 && tag.born_ns <= t0 {
                tracer().span(table, Stage::Alloc, tier, id, tag.born_ns, t0);
            }
            tracer().span(table, Stage::Encode, tier, id, t0, t1);
        }
        let prefilled = shm.map(|sf| {
            // Stamp how many bytes of the segment the message actually
            // used — descriptors publish this length, not the capacity.
            sf.set_len(frame.len());
            let slot: ShmSlot = Arc::new(OnceLock::new());
            let _ = slot.set(Some(sf));
            slot
        });
        self.core.fan_out(frame, prefilled);
    }
}

impl<M: Encode> std::fmt::Debug for Publisher<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("topic", &self.core.topic)
            .field("type", &self.core.type_name)
            .field("subscribers", &self.core.conns.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rossf_sfm::{SfmBox, SfmError, SfmMessage, SfmPod, SfmValidate, SfmVec};

    #[repr(C)]
    struct P {
        data: SfmVec<u8>,
    }
    unsafe impl SfmPod for P {}
    impl SfmValidate for P {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.data.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for P {
        fn type_name() -> &'static str {
            "test/AttachP"
        }
        fn max_size() -> usize {
            256
        }
    }

    fn request(ty: &str, fastpath: Option<&str>) -> ConnectionHeader {
        let mut h = ConnectionHeader::new()
            .with("topic", "attach/neg")
            .with("type", ty)
            .with("machine", "0")
            .with("endian", ConnectionHeader::native_endian());
        if let Some(v) = fastpath {
            h = h.with(FASTPATH_FIELD, v);
        }
        h
    }

    /// The connection-header capability negotiation: a peer that predates
    /// the fast path (no `fastpath` field) is refused *permanently* with a
    /// message naming the capability, so the subscriber knows to fall back
    /// to TCP rather than retry. Mismatched types get the same diagnostic
    /// as the TCP `error=` reply, and a severed loopback link refuses only
    /// *transiently* (an `Io` error the supervisor retries).
    #[test]
    fn attach_local_negotiates_capability_and_faults() {
        let master = Master::new();
        let machine = MachineId(77);
        let publisher: Publisher<SfmBox<P>> = Publisher::create_with(
            &master,
            "attach/neg",
            PublisherOptions::new().queue_size(4),
            machine,
            TransportConfig::default(),
        )
        .unwrap();
        let core = &*publisher.core;

        match core.attach_local(&request(P::type_name(), None)) {
            Err(RosError::Rejected(msg)) => assert!(msg.contains(FASTPATH_FIELD)),
            Err(e) => panic!("expected capability rejection, got {e:?}"),
            Ok(_) => panic!("attach without capability must fail"),
        }
        match core.attach_local(&request("wrong/Type", Some("1"))) {
            Err(RosError::Rejected(msg)) => {
                assert_eq!(msg, "topic carries test/AttachP not wrong/Type");
            }
            Err(e) => panic!("expected type rejection, got {e:?}"),
            Ok(_) => panic!("attach with wrong type must fail"),
        }

        let fault = master.links().inject(machine, machine);
        fault.sever_now();
        match core.attach_local(&request(P::type_name(), Some("1"))) {
            Err(RosError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::ConnectionRefused);
            }
            Err(e) => panic!("expected transient refusal, got {e:?}"),
            Ok(_) => panic!("attach over a severed link must fail"),
        }
        fault.heal();

        let sink = core
            .attach_local(&request(P::type_name(), Some("1")))
            .map_err(|e| format!("healed attach must succeed: {e:?}"))
            .unwrap();
        assert_eq!(sink.reply.get(FASTPATH_FIELD), Some("1"));
        assert_eq!(sink.reply.get("type"), Some(P::type_name()));
        assert_eq!(publisher.subscriber_count(), 1);
        drop(sink);
        assert_eq!(
            publisher.subscriber_count(),
            0,
            "dropping the sink releases the connection without a publish"
        );
    }
}
