//! Wire framing and the TCPROS-style connection header.
//!
//! Each (publisher, subscriber) pair speaks over one TCP connection:
//!
//! 1. the subscriber sends a [`ConnectionHeader`] (topic, type, machine,
//!    endianness);
//! 2. the publisher validates and replies with its own header (or an
//!    `error=` header);
//! 3. message frames follow, each a little-endian `u32` length + payload.
//!
//! The payload of a frame is either serialized bytes (ordinary messages) or
//! the whole serialization-free message verbatim ([`OutFrame::Sfm`]).

use crate::error::RosError;
use rossf_sfm::PublishedBuffer;
use rossf_shm::SharedFrame;
use std::collections::BTreeMap;
use std::io::{IoSlice, Read, Write};
use std::sync::{Arc, OnceLock};

/// Shared-memory residency of one publish call, resolved at most once.
///
/// `publish` attaches one slot (an `Arc` of the same cell) to every
/// shm-connection clone of a frame; the first link thread to drain its
/// copy resolves the slot by copying the payload into a pooled segment
/// **once**, and every other link reuses that [`SharedFrame`] with a
/// descriptor-only commit. A loaned publish pre-resolves the slot — the
/// message was built inside the segment, so no thread copies at all.
///
/// The resolved value is `None` when the pool was exhausted at resolution
/// time; that verdict is shared too (the frame is dropped on every link,
/// counted as `NoSegment` backpressure).
pub type ShmSlot = Arc<OnceLock<Option<SharedFrame>>>;

/// The payload of an encoded message: serialized bytes or the whole
/// serialization-free message verbatim.
#[derive(Debug, Clone)]
pub enum FramePayload {
    /// Serialized bytes produced by a ROS1 serializer (baseline path).
    Owned(Arc<Vec<u8>>),
    /// The whole serialization-free message (zero-copy path).
    Sfm(PublishedBuffer),
}

/// Per-message tracing tag riding on a frame.
///
/// `Copy`, so each per-connection clone of an [`OutFrame`] carries an
/// *independent* tag — `publish` stamps a distinct `enqueued_ns` into every
/// transmission-queue copy without aliasing. An `id` of 0 means the frame is
/// untraced and every instrumentation site skips it.
///
/// On the fast path and the local bus the tag reaches the subscriber on the
/// frame object itself; over TCP the wire format stays untouched and the id
/// travels through the [`Sidecar`](rossf_trace::Sidecar) instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceTag {
    /// Process-unique trace id (0 = untraced).
    pub id: u64,
    /// Backing-buffer birth timestamp (0 when unknown): anchors the `alloc`
    /// stage. Republished messages zero this so a relay hop doesn't inherit
    /// the first hop's allocation span.
    pub born_ns: u64,
    /// When this copy was deposited into its transmission queue (0 until
    /// enqueued).
    pub enqueued_ns: u64,
}

/// One encoded message ready for transmission.
///
/// `Clone` is cheap (reference counted) — `publish` encodes once and hands
/// a clone to every per-connection transmission queue, which is exactly the
/// paper's "copy of the buffer pointer is provided to ROS" (Fig. 8).
#[derive(Debug, Clone)]
pub struct OutFrame {
    payload: FramePayload,
    trace: TraceTag,
    /// Shared-memory residency, present only on clones bound for shm
    /// connections (attached by `publish`). Cloning shares the cell: all
    /// shm links of one publish resolve to the same pooled segment.
    shm: Option<ShmSlot>,
}

impl OutFrame {
    /// A frame over serialized bytes (baseline path), untraced.
    pub fn owned(bytes: Arc<Vec<u8>>) -> Self {
        OutFrame {
            payload: FramePayload::Owned(bytes),
            trace: TraceTag::default(),
            shm: None,
        }
    }

    /// A frame over a serialization-free whole message (zero-copy path).
    /// Inherits the buffer's birth timestamp as the `alloc` anchor.
    pub fn sfm(buffer: PublishedBuffer) -> Self {
        let born_ns = buffer.alloc_ns();
        OutFrame {
            payload: FramePayload::Sfm(buffer),
            trace: TraceTag {
                born_ns,
                ..TraceTag::default()
            },
            shm: None,
        }
    }

    /// This clone's shared-memory residency slot, if one was attached.
    #[inline]
    pub fn shm_slot(&self) -> Option<&ShmSlot> {
        self.shm.as_ref()
    }

    /// Attach a shared-memory residency slot to this clone (done by
    /// `publish` for clones bound to shm connections).
    #[inline]
    pub fn set_shm_slot(&mut self, slot: ShmSlot) {
        self.shm = Some(slot);
    }

    /// The payload bytes.
    pub fn as_slice(&self) -> &[u8] {
        match &self.payload {
            FramePayload::Owned(v) => v.as_slice(),
            FramePayload::Sfm(b) => b.as_slice(),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        match &self.payload {
            FramePayload::Owned(v) => v.len(),
            FramePayload::Sfm(b) => b.len(),
        }
    }

    /// `true` for an empty payload (never produced by real messages).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The payload (serialized bytes or whole serialization-free message).
    pub fn payload(&self) -> &FramePayload {
        &self.payload
    }

    /// This copy's tracing tag.
    #[inline]
    pub fn trace(&self) -> TraceTag {
        self.trace
    }

    /// Mutable access to this copy's tracing tag (stamped by `publish`).
    #[inline]
    pub fn trace_mut(&mut self) -> &mut TraceTag {
        &mut self.trace
    }
}

/// Kernel socket buffer size requested for every data-path TCP link.
///
/// Nonblocking sockets move at most one kernel buffer per reactor round
/// trip (write → EAGAIN → EPOLLOUT → write), and TCP's *initial* buffers
/// are tens of kilobytes — a 6 MB frame would take hundreds of loop
/// iterations before auto-tuning catches up. Pre-sizing both directions
/// lets a paper-scale frame cross in a handful of syscalls. The kernel
/// clamps the request to `net.core.{w,r}mem_max`, and buffer memory is
/// only consumed by bytes actually queued, so idle links cost nothing.
const SOCK_BUF_BYTES: usize = 4 << 20;

/// Best-effort growth of `stream`'s kernel buffers to [`SOCK_BUF_BYTES`].
///
/// Failure is ignored: an untuned socket is slower, never incorrect
/// (and the stub sys module on non-Linux targets always reports success).
pub(crate) fn grow_socket_buffers(stream: &std::net::TcpStream) {
    use std::os::fd::AsRawFd;
    let _ = rossf_reactor::sys::set_socket_buffers(stream.as_raw_fd(), SOCK_BUF_BYTES);
}

/// Validate that a payload length fits the 4-byte frame prefix.
///
/// # Errors
///
/// [`RosError::FrameTooLarge`] for payloads the prefix cannot represent —
/// writing such a frame would silently truncate the length and desync the
/// stream.
pub fn frame_len_prefix(len: usize) -> Result<u32, RosError> {
    u32::try_from(len).map_err(|_| RosError::FrameTooLarge {
        len,
        max: u32::MAX as usize,
    })
}

/// Write one length-prefixed frame.
///
/// # Errors
///
/// [`RosError::FrameTooLarge`] if the payload cannot be represented by the
/// 4-byte length prefix (≥ 4 GiB); otherwise propagates I/O errors from the
/// underlying stream.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), RosError> {
    w.write_all(&frame_len_prefix(payload.len())?.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Write one length-prefixed frame with the 4-byte prefix and the payload
/// head coalesced into a single `write_vectored` call (one syscall on a
/// plain socket instead of two). Unlike [`write_frame`] this does **not**
/// flush — publishers drain-batch several frames and flush once per wakeup.
///
/// Short writes are handled: the loop re-slices both segments around the
/// bytes already accepted and keeps going until the whole frame is out.
///
/// # Errors
///
/// [`RosError::FrameTooLarge`] for payloads the 4-byte prefix cannot
/// represent; [`RosError::Io`] with `WriteZero` if the writer stops
/// accepting bytes mid-frame; otherwise propagates I/O errors.
pub fn write_frame_vectored<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), RosError> {
    let prefix = frame_len_prefix(payload.len())?.to_le_bytes();
    let total = prefix.len() + payload.len();
    let mut written = 0usize;
    while written < total {
        let n = if written < prefix.len() {
            let bufs = [IoSlice::new(&prefix[written..]), IoSlice::new(payload)];
            w.write_vectored(&bufs)?
        } else {
            w.write(&payload[written - prefix.len()..])?
        };
        if n == 0 {
            return Err(RosError::Io(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "writer accepted no bytes mid-frame",
            )));
        }
        written += n;
    }
    Ok(())
}

/// Read one frame length header. Returns `None` on clean EOF before the
/// header (peer closed).
///
/// # Errors
///
/// Propagates I/O errors from the underlying stream.
pub fn read_frame_len<R: Read>(r: &mut R) -> Result<Option<usize>, RosError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(RosError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )))
            }
            n => filled += n,
        }
    }
    Ok(Some(u32::from_le_bytes(len_buf) as usize))
}

/// Connection-header field carrying a subscriber's requested field
/// projection (the canonical comma-joined path spec). A publisher that can
/// honor it echoes the *exact* spec back in its reply; any other reply —
/// no echo, an error, a different spec — means the link carries full
/// frames. Old peers ignore the field entirely, so projection degrades to
/// full-frame delivery across version skew.
pub const PROJECT_FIELD: &str = "project";

/// The key/value connection header exchanged at connect time, mirroring
/// TCPROS (`topic=`, `type=`, plus this reproduction's `machine=` used for
/// link shaping and `endian=` per the paper's §4.4.1 discussion).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConnectionHeader {
    fields: BTreeMap<String, String>,
}

impl ConnectionHeader {
    /// Empty header.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a field, returning `self` for chaining.
    pub fn with(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.insert(key.to_string(), value.into());
        self
    }

    /// Get a field.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Host endianness marker for the `endian` field.
    pub fn native_endian() -> &'static str {
        if cfg!(target_endian = "little") {
            "le"
        } else {
            "be"
        }
    }

    /// Serialize and write as a length-prefixed blob.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), RosError> {
        let mut blob = Vec::new();
        for (k, v) in &self.fields {
            let field = format!("{k}={v}");
            (field.len() as u32)
                .to_le_bytes()
                .iter()
                .for_each(|b| blob.push(*b));
            blob.extend_from_slice(field.as_bytes());
        }
        write_frame(w, &blob)
    }

    /// Read a header previously written by [`ConnectionHeader::write_to`].
    ///
    /// # Errors
    ///
    /// [`RosError::BadHeader`] on malformed input, [`RosError::Io`] on
    /// transport failure or EOF.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, RosError> {
        let len = read_frame_len(r)?.ok_or_else(|| {
            RosError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof before connection header",
            ))
        })?;
        if len > 64 * 1024 {
            return Err(RosError::BadHeader(format!("header too large: {len}")));
        }
        let mut blob = vec![0u8; len];
        r.read_exact(&mut blob)?;
        let mut fields = BTreeMap::new();
        let mut pos = 0;
        while pos < blob.len() {
            if pos + 4 > blob.len() {
                return Err(RosError::BadHeader("truncated field length".into()));
            }
            let flen = u32::from_le_bytes(blob[pos..pos + 4].try_into().expect("4 bytes")) as usize;
            pos += 4;
            if pos + flen > blob.len() {
                return Err(RosError::BadHeader("truncated field".into()));
            }
            let field = std::str::from_utf8(&blob[pos..pos + flen])
                .map_err(|_| RosError::BadHeader("non-utf8 field".into()))?;
            pos += flen;
            let (k, v) = field
                .split_once('=')
                .ok_or_else(|| RosError::BadHeader(format!("missing `=` in `{field}`")))?;
            fields.insert(k.to_string(), v.to_string());
        }
        Ok(ConnectionHeader { fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        let mut r = &wire[..];
        let len = read_frame_len(&mut r).unwrap().unwrap();
        assert_eq!(len, 7);
        assert_eq!(r, b"payload");
    }

    #[test]
    fn unencodable_payload_length_is_an_error() {
        // 4 GiB and beyond cannot be described by the u32 prefix; the check
        // fires on the length alone, before any payload byte is touched.
        assert_eq!(frame_len_prefix(u32::MAX as usize).unwrap(), u32::MAX);
        let too_big = u32::MAX as usize + 1;
        assert!(matches!(
            frame_len_prefix(too_big),
            Err(RosError::FrameTooLarge { len, max })
                if len == too_big && max == u32::MAX as usize
        ));
    }

    /// Accepts at most `cap` bytes per call, across all segments — forces
    /// the short-write loop to re-slice both the prefix and the payload.
    struct Trickle {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> std::io::Result<usize> {
            let mut budget = self.cap;
            let mut n = 0;
            for buf in bufs {
                if budget == 0 {
                    break;
                }
                let take = buf.len().min(budget);
                self.out.extend_from_slice(&buf[..take]);
                budget -= take;
                n += take;
            }
            Ok(n)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_frame_matches_plain_frame() {
        let payload = b"serialization-free";
        let mut plain = Vec::new();
        write_frame(&mut plain, payload).unwrap();
        let mut vectored = Vec::new();
        write_frame_vectored(&mut vectored, payload).unwrap();
        assert_eq!(vectored, plain, "byte-identical wire format");
    }

    #[test]
    fn vectored_frame_survives_short_writes() {
        for cap in [1, 2, 3, 5, 7] {
            let payload: Vec<u8> = (0u8..=50).collect();
            let mut expected = Vec::new();
            write_frame(&mut expected, &payload).unwrap();
            let mut w = Trickle {
                out: Vec::new(),
                cap,
            };
            write_frame_vectored(&mut w, &payload).unwrap();
            assert_eq!(w.out, expected, "cap={cap}");
        }
    }

    #[test]
    fn vectored_frame_errors_on_write_zero() {
        let mut w = Trickle {
            out: Vec::new(),
            cap: 0,
        };
        let err = write_frame_vectored(&mut w, b"x").unwrap_err();
        assert!(matches!(err, RosError::Io(e)
            if e.kind() == std::io::ErrorKind::WriteZero));
    }

    #[test]
    fn vectored_empty_payload_is_just_prefix() {
        let mut wire = Vec::new();
        write_frame_vectored(&mut wire, b"").unwrap();
        assert_eq!(wire, 0u32.to_le_bytes());
    }

    #[test]
    fn eof_before_frame_is_none() {
        let mut r: &[u8] = &[];
        assert!(read_frame_len(&mut r).unwrap().is_none());
    }

    #[test]
    fn eof_inside_header_is_error() {
        let mut r: &[u8] = &[1, 2];
        assert!(read_frame_len(&mut r).is_err());
    }

    #[test]
    fn header_roundtrip() {
        let h = ConnectionHeader::new()
            .with("topic", "camera/image")
            .with("type", "sensor_msgs/Image")
            .with("machine", "0")
            .with("endian", ConnectionHeader::native_endian());
        let mut wire = Vec::new();
        h.write_to(&mut wire).unwrap();
        let back = ConnectionHeader::read_from(&mut &wire[..]).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.get("topic"), Some("camera/image"));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn malformed_headers_rejected() {
        // Field without '='.
        let mut blob = Vec::new();
        blob.extend_from_slice(&3u32.to_le_bytes());
        blob.extend_from_slice(b"abc");
        let mut wire = Vec::new();
        write_frame(&mut wire, &blob).unwrap();
        assert!(matches!(
            ConnectionHeader::read_from(&mut &wire[..]),
            Err(RosError::BadHeader(_))
        ));

        // Truncated inner field.
        let mut blob = Vec::new();
        blob.extend_from_slice(&100u32.to_le_bytes());
        blob.extend_from_slice(b"k=v");
        let mut wire = Vec::new();
        write_frame(&mut wire, &blob).unwrap();
        assert!(ConnectionHeader::read_from(&mut &wire[..]).is_err());
    }

    #[test]
    fn outframe_views() {
        let f = OutFrame::owned(Arc::new(vec![1, 2, 3]));
        assert_eq!(f.as_slice(), &[1, 2, 3]);
        assert_eq!(f.len(), 3);
        assert!(!f.is_empty());
        assert!(matches!(f.payload(), FramePayload::Owned(_)));
        let g = f.clone();
        assert_eq!(g.as_slice(), f.as_slice());
    }

    #[test]
    fn outframe_trace_tags_are_per_clone() {
        let mut f = OutFrame::owned(Arc::new(vec![9]));
        assert_eq!(f.trace(), TraceTag::default(), "untraced by default");
        f.trace_mut().id = 7;
        let mut g = f.clone();
        g.trace_mut().enqueued_ns = 123;
        assert_eq!(f.trace().enqueued_ns, 0, "clones carry independent tags");
        assert_eq!(g.trace().id, 7);
    }

    #[test]
    fn native_endian_matches_cfg() {
        assert_eq!(ConnectionHeader::native_endian(), "le");
    }
}
