//! Bag recording and playback — the `rosbag` facility of the ROS
//! ecosystem, reproduced over this middleware.
//!
//! A bag stores timestamped wire frames, so recording costs the same as
//! one extra subscriber (for serialization-free messages: zero
//! serialization — the whole message is appended verbatim), and playback
//! re-publishes the original bytes. Workloads captured from one run can
//! drive the benchmarks of another.
//!
//! Format (all integers little-endian):
//!
//! ```text
//! magic  "ROSSFBAG1"
//! record := u64 stamp_nanos
//!           u32 topic_len,  topic bytes (UTF-8)
//!           u32 type_len,   type bytes (UTF-8)
//!           u32 payload_len, payload bytes
//! ```

use crate::error::RosError;
use crate::node::NodeHandle;
use crate::subscriber::Subscriber;
use crate::time::now_nanos;
use crate::traits::{Decode, Encode, RecvSlot};
use parking_lot::Mutex;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: &[u8; 9] = b"ROSSFBAG1";

/// One recorded message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BagRecord {
    /// Capture time (monotonic experiment clock).
    pub stamp_nanos: u64,
    /// Topic the message was seen on.
    pub topic: String,
    /// ROS type name of the message.
    pub type_name: String,
    /// The wire payload, verbatim.
    pub payload: Vec<u8>,
}

/// An in-memory bag; serializable to/from the on-disk format.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bag {
    records: Vec<BagRecord>,
}

impl Bag {
    /// Empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records, in capture order.
    pub fn records(&self) -> &[BagRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append one record.
    pub fn push(&mut self, record: BagRecord) {
        self.records.push(record);
    }

    /// Serialize to any writer.
    ///
    /// # Errors
    ///
    /// I/O errors from the writer.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), RosError> {
        w.write_all(MAGIC)?;
        for r in &self.records {
            w.write_all(&r.stamp_nanos.to_le_bytes())?;
            w.write_all(&(r.topic.len() as u32).to_le_bytes())?;
            w.write_all(r.topic.as_bytes())?;
            w.write_all(&(r.type_name.len() as u32).to_le_bytes())?;
            w.write_all(r.type_name.as_bytes())?;
            w.write_all(&(r.payload.len() as u32).to_le_bytes())?;
            w.write_all(&r.payload)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Deserialize from any reader.
    ///
    /// # Errors
    ///
    /// [`RosError::BadHeader`] on a bad magic or truncated record; I/O
    /// errors from the reader.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, RosError> {
        let mut magic = [0u8; 9];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(RosError::BadHeader("not a ROSSFBAG1 file".to_string()));
        }
        let mut records = Vec::new();
        loop {
            let mut stamp = [0u8; 8];
            match r.read(&mut stamp)? {
                0 => break, // clean EOF between records
                8 => {}
                n => {
                    r.read_exact(&mut stamp[n..])?;
                }
            }
            let read_u32 = |r: &mut R| -> Result<u32, RosError> {
                let mut b = [0u8; 4];
                r.read_exact(&mut b)?;
                Ok(u32::from_le_bytes(b))
            };
            let read_blob = |r: &mut R, len: usize| -> Result<Vec<u8>, RosError> {
                if len > 256 << 20 {
                    return Err(RosError::BadHeader(format!("absurd record length {len}")));
                }
                let mut v = vec![0u8; len];
                r.read_exact(&mut v)?;
                Ok(v)
            };
            let topic_len = read_u32(r)? as usize;
            let topic = String::from_utf8(read_blob(r, topic_len)?)
                .map_err(|_| RosError::BadHeader("non-utf8 topic".to_string()))?;
            let type_len = read_u32(r)? as usize;
            let type_name = String::from_utf8(read_blob(r, type_len)?)
                .map_err(|_| RosError::BadHeader("non-utf8 type".to_string()))?;
            let payload_len = read_u32(r)? as usize;
            let payload = read_blob(r, payload_len)?;
            records.push(BagRecord {
                stamp_nanos: u64::from_le_bytes(stamp),
                topic,
                type_name,
                payload,
            });
        }
        Ok(Bag { records })
    }

    /// Write to a file.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), RosError> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)
    }

    /// Read from a file.
    ///
    /// # Errors
    ///
    /// I/O errors and format errors as [`Bag::read_from`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, RosError> {
        let mut r = BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }

    /// Re-publish every record for `topic` through `publisher`, decoding
    /// each stored payload into `D` first (so the bag can replay into
    /// either message family). Returns the number of messages replayed.
    ///
    /// # Errors
    ///
    /// Decoding errors if the bag's payloads do not match `D`.
    pub fn replay<D: Decode + Encode>(
        &self,
        topic: &str,
        publisher: &crate::publisher::Publisher<D>,
    ) -> Result<usize, RosError> {
        let mut count = 0;
        for r in self.records.iter().filter(|r| r.topic == topic) {
            if r.type_name != D::topic_type() {
                return Err(RosError::TypeMismatch {
                    topic: topic.to_string(),
                    registered: r.type_name.clone(),
                    attempted: D::topic_type().to_string(),
                });
            }
            let mut slot = D::new_slot(r.payload.len())?;
            slot.as_mut_slice().copy_from_slice(&r.payload);
            let msg = D::finish_slot(slot)?;
            publisher.publish(&msg);
            count += 1;
        }
        Ok(count)
    }
}

/// A live recorder: subscribes to a topic and appends every message to a
/// shared [`Bag`]. Dropping it stops recording.
pub struct BagRecorder<D: Decode> {
    _sub: Subscriber<D>,
    bag: Arc<Mutex<Bag>>,
    topic: String,
}

impl<D: Decode + Encode + 'static> BagRecorder<D> {
    /// Start recording `topic` through `nh`.
    ///
    /// # Errors
    ///
    /// [`RosError::TypeMismatch`] if the topic carries a different type.
    pub fn start(nh: &NodeHandle, topic: &str) -> Result<Self, RosError> {
        let bag = Arc::new(Mutex::new(Bag::new()));
        let bag_cb = Arc::clone(&bag);
        let topic_cb = topic.to_string();
        let sub =
            nh.try_subscribe_with(topic, crate::SubscriberOptions::new(), move |msg: D| {
                let frame = msg.encode();
                bag_cb.lock().push(BagRecord {
                    stamp_nanos: now_nanos(),
                    topic: topic_cb.clone(),
                    type_name: D::topic_type().to_string(),
                    payload: frame.as_slice().to_vec(),
                });
            })?;
        Ok(BagRecorder {
            _sub: sub,
            bag,
            topic: topic.to_string(),
        })
    }

    /// Messages recorded so far.
    pub fn count(&self) -> usize {
        self.bag.lock().len()
    }

    /// The topic being recorded.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Stop recording and take the bag.
    pub fn finish(self) -> Bag {
        // Dropping the subscriber first guarantees no further appends.
        drop(self._sub);
        Arc::try_unwrap(self.bag)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u64) -> BagRecord {
        BagRecord {
            stamp_nanos: i * 1000,
            topic: format!("topic_{}", i % 2),
            type_name: "test/T".to_string(),
            payload: vec![i as u8; (i as usize % 7) + 1],
        }
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut bag = Bag::new();
        for i in 0..10 {
            bag.push(record(i));
        }
        let mut bytes = Vec::new();
        bag.write_to(&mut bytes).unwrap();
        let back = Bag::read_from(&mut &bytes[..]).unwrap();
        assert_eq!(back, bag);
        assert_eq!(back.len(), 10);
        assert!(!back.is_empty());
    }

    #[test]
    fn empty_bag_roundtrips() {
        let bag = Bag::new();
        let mut bytes = Vec::new();
        bag.write_to(&mut bytes).unwrap();
        assert_eq!(bytes, MAGIC);
        assert!(Bag::read_from(&mut &bytes[..]).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOTABAG!!".to_vec();
        assert!(matches!(
            Bag::read_from(&mut &bytes[..]),
            Err(RosError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let mut bag = Bag::new();
        bag.push(record(1));
        let mut bytes = Vec::new();
        bag.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 2);
        assert!(Bag::read_from(&mut &bytes[..]).is_err());
    }

    #[test]
    fn file_save_and_load() {
        let mut bag = Bag::new();
        bag.push(record(3));
        let path = std::env::temp_dir().join(format!("rossf_bag_test_{}.bag", std::process::id()));
        bag.save(&path).unwrap();
        let back = Bag::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, bag);
    }

    #[test]
    fn absurd_length_rejected() {
        let mut bytes = MAGIC.to_vec();
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // topic_len
        assert!(Bag::read_from(&mut &bytes[..]).is_err());
    }
}
