//! Bag record/replay — the `rosbag` facility of the ROS ecosystem, built
//! on the [`rossf_bag`] subsystem.
//!
//! Two generations of API live here:
//!
//! * **Streaming (current).** [`Recorder`] taps every same-machine
//!   publisher of the selected topics through [`RawFrameTap`] and streams
//!   the publisher's own `Arc`'d frames to a [`rossf_bag::StreamRecorder`]
//!   writer thread — zero encode and zero payload copy on the capture
//!   path. [`Replayer`] maps a finished bag and re-publishes its frames on
//!   the recorded cadence; for SFM messages the frames are *adopted in
//!   place* out of the mapping ([`Replayer::route_adopted`]), so playback
//!   is also copy-free.
//! * **In-memory (deprecated).** [`Bag`]/[`BagRecorder`] keep the 0.6-era
//!   copy-everything API for callers that want a `Vec` of records; since
//!   0.7.0 they store the indexed v2 on-disk format (see
//!   [`rossf_bag::format`]) instead of the old `ROSSFBAG1` stream. Old
//!   files no longer load; empty payloads and per-topic non-monotonic
//!   stamps are no longer representable.
//!
//! Both layers account their traffic against the per-topic
//! [`TransportMetrics`](crate::metrics::TransportMetrics) counters
//! (`bag_frames_recorded`, `bag_frames_dropped`, `bag_bytes_written`,
//! `bag_frames_replayed`).

use crate::error::RosError;
use crate::node::NodeHandle;
use crate::publisher::Publisher;
use crate::subscriber::Subscriber;
use crate::tap::RawFrameTap;
use crate::time::now_nanos;
use crate::traits::{Decode, Encode, RecvSlot};
use crate::wire::OutFrame;
use parking_lot::Mutex;
use rossf_bag::{
    build_schedule, schema_hash, BagError, BagReader, BagSummary, FrameBytes, IndexEntry,
    RecorderStats, StreamRecorder, TopicSpec,
};
use rossf_sfm::{SfmMessage, SfmShared};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bridge a bag-subsystem error into the middleware's error type.
fn bag_err(e: BagError) -> RosError {
    match e {
        BagError::Io(e) => RosError::Io(e),
        BagError::TypeMismatch {
            topic,
            recorded,
            attempted,
        } => RosError::TypeMismatch {
            topic,
            registered: recorded,
            attempted,
        },
        other => RosError::BadHeader(format!("bag: {other}")),
    }
}

/// Adapter letting a captured [`OutFrame`] ride the recorder queue without
/// copying: the queue holds the publisher's `Arc`'d buffer until the writer
/// thread appends it.
struct FrameView(OutFrame);

impl FrameBytes for FrameView {
    fn bytes(&self) -> &[u8] {
        self.0.as_slice()
    }
}

/// Configures a streaming [`Recorder`]; see [`Recorder::builder`].
#[derive(Debug, Default)]
pub struct RecorderBuilder {
    topics: Vec<TopicSpec>,
    queue_capacity: usize,
}

impl RecorderBuilder {
    /// Record `topic`, carrying messages of type `M`. The bag stores `M`'s
    /// type name and schema fingerprint (0 when `M` exports no schema), so
    /// replay can refuse mismatched routes.
    #[must_use]
    pub fn topic<M: Encode>(mut self, topic: &str) -> Self {
        self.topics.push(TopicSpec {
            topic: topic.to_string(),
            type_name: M::topic_type().to_string(),
            schema_hash: M::schema().map(schema_hash).unwrap_or(0),
        });
        self
    }

    /// Capacity of the bounded writer queue (frames). When the disk cannot
    /// keep up the queue fills and further captures are *shed*, never
    /// blocking a publisher; sheds show up in `frames_dropped`.
    #[must_use]
    pub fn queue_capacity(mut self, frames: usize) -> Self {
        self.queue_capacity = frames.max(1);
        self
    }

    /// Create the bag file at `path` and attach a capture tap to every
    /// configured topic.
    ///
    /// # Errors
    ///
    /// I/O errors creating the file; [`RosError::TypeMismatch`] if a topic
    /// already carries a different type.
    pub fn start(self, nh: &NodeHandle, path: impl AsRef<Path>) -> Result<Recorder, RosError> {
        let capacity = if self.queue_capacity == 0 {
            256
        } else {
            self.queue_capacity
        };
        let stream =
            StreamRecorder::create(path.as_ref(), &self.topics, capacity).map_err(bag_err)?;
        let mut taps = Vec::with_capacity(self.topics.len());
        for (i, spec) in self.topics.iter().enumerate() {
            let channel = stream
                .channel(i as u32)
                .expect("connection ids are dense topic indices");
            let metrics = nh.master().metrics().topic(&spec.topic);
            let tap = RawFrameTap::attach(nh, &spec.topic, &spec.type_name, move |frame| {
                let len = frame.as_slice().len() as u64;
                if channel.record(now_nanos(), Box::new(FrameView(frame.clone()))) {
                    metrics.bag_frames_recorded.fetch_add(1, Ordering::Relaxed);
                    metrics.bag_bytes_written.fetch_add(len, Ordering::Relaxed);
                } else {
                    metrics.bag_frames_dropped.fetch_add(1, Ordering::Relaxed);
                }
            })?;
            taps.push(tap);
        }
        Ok(Recorder {
            stream: Some(stream),
            taps,
            topics: self.topics,
        })
    }
}

/// A live streaming bag recorder (see the module docs).
///
/// Dropping without [`Recorder::finish`] still closes the bag cleanly (the
/// writer thread appends the footer), but discards the summary.
pub struct Recorder {
    stream: Option<StreamRecorder>,
    taps: Vec<RawFrameTap>,
    topics: Vec<TopicSpec>,
}

impl Recorder {
    /// Start configuring a recorder.
    pub fn builder() -> RecorderBuilder {
        RecorderBuilder {
            topics: Vec::new(),
            queue_capacity: 256,
        }
    }

    /// The topics being recorded, in connection-id order.
    pub fn topics(&self) -> &[TopicSpec] {
        &self.topics
    }

    /// Live counters: frames accepted, frames shed, payload bytes queued.
    pub fn stats(&self) -> RecorderStats {
        self.stream
            .as_ref()
            .expect("stream lives until finish()")
            .stats()
    }

    /// `true` if the writer thread died (disk full, I/O error); captures
    /// after that are dropped.
    pub fn failed(&self) -> bool {
        self.stream
            .as_ref()
            .expect("stream lives until finish()")
            .failed()
    }

    /// Total frames the capture taps have observed (accepted + shed).
    pub fn frames_seen(&self) -> u64 {
        self.taps.iter().map(|t| t.frames_seen()).sum()
    }

    /// Publishers that could not be tapped (remote machine or fast path
    /// unavailable); their frames are not captured.
    pub fn skipped_publishers(&self) -> u64 {
        self.taps.iter().map(|t| t.skipped()).sum()
    }

    /// Wait until every topic has at least `publishers_per_topic` live
    /// capture attachments, so no frame published after this returns is
    /// missed. Returns `false` on timeout.
    pub fn wait_attached(&self, publishers_per_topic: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        self.taps.iter().all(|tap| {
            let left = deadline.saturating_duration_since(Instant::now());
            tap.wait_attached(publishers_per_topic, left)
        })
    }

    /// Detach every tap, drain the queue, write the footer index and close
    /// the file.
    ///
    /// # Errors
    ///
    /// I/O errors from the writer thread (the bag may be incomplete).
    pub fn finish(mut self) -> Result<BagSummary, RosError> {
        // Taps first: joining their drain threads guarantees no capture
        // races the queue drain below.
        self.taps.clear();
        let stream = self.stream.take().expect("finish consumes the recorder");
        stream.finish().map_err(bag_err)
    }
}

/// Playback pacing and verification options for [`Replayer::run`].
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    /// Rate multiplier: `2.0` replays twice as fast as recorded. Must be
    /// positive.
    pub rate: f64,
    /// Number of passes over the bag (minimum 1 even if 0 is given).
    pub loops: u32,
    /// Structurally verify each frame (`Decode::verify_frame`) before
    /// publishing it.
    pub verify: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            rate: 1.0,
            loops: 1,
            verify: false,
        }
    }
}

impl ReplayOptions {
    /// Set the rate multiplier.
    #[must_use]
    pub fn rate(mut self, rate: f64) -> Self {
        self.rate = rate;
        self
    }

    /// Set the number of passes.
    #[must_use]
    pub fn loops(mut self, loops: u32) -> Self {
        self.loops = loops;
        self
    }

    /// Enable per-frame structural verification.
    #[must_use]
    pub fn verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }
}

/// What a [`Replayer::run`] pass actually did.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayStats {
    /// Frames published (across all loops).
    pub frames_replayed: u64,
    /// Wall-clock duration of the whole run.
    pub duration: Duration,
    /// Mean absolute deviation of each frame's publish instant from its
    /// scheduled instant.
    pub pacing_mean_abs_error: Duration,
    /// Worst single-frame deviation.
    pub pacing_max_abs_error: Duration,
}

/// Publishes one routed connection's frame; `bool` is the verify flag.
type RouteFn = Box<dyn Fn(&IndexEntry, bool) -> Result<(), RosError> + Send>;

/// Replays a recorded bag through live publishers (see the module docs).
///
/// Route each recorded topic to a publisher with
/// [`route_adopted`](Replayer::route_adopted) (zero-copy, SFM types) or
/// [`route_decoded`](Replayer::route_decoded) (any `Decode + Encode`
/// type), then [`run`](Replayer::run). Unrouted topics are skipped.
pub struct Replayer {
    reader: Arc<BagReader>,
    routes: HashMap<u32, RouteFn>,
}

impl Replayer {
    /// Open the bag at `path` (tolerant mode: a torn tail from a crashed
    /// recorder is recovered, check [`BagReader::recovered`]).
    ///
    /// # Errors
    ///
    /// I/O and format errors from [`BagReader::open`].
    pub fn open(path: impl AsRef<Path>) -> Result<Self, RosError> {
        BagReader::open(path.as_ref())
            .map(Self::new)
            .map_err(bag_err)
    }

    /// Wrap an already-opened reader.
    pub fn new(reader: BagReader) -> Self {
        Replayer {
            reader: Arc::new(reader),
            routes: HashMap::new(),
        }
    }

    /// The underlying reader (topics, index, mapping address range).
    pub fn reader(&self) -> &BagReader {
        &self.reader
    }

    /// Validate a route against the recorded connection: topic known and
    /// not yet routed, type name equal, schema fingerprints equal when both
    /// sides have one.
    fn check_route<D: Decode>(&self, recorded_topic: &str) -> Result<u32, RosError> {
        let conn = self
            .reader
            .connection(recorded_topic)
            .ok_or_else(|| bag_err(BagError::UnknownTopic(recorded_topic.to_string())))?;
        if self.routes.contains_key(&conn.id) {
            return Err(RosError::BadHeader(format!(
                "bag topic `{recorded_topic}` already routed"
            )));
        }
        if conn.type_name != D::topic_type() {
            return Err(RosError::TypeMismatch {
                topic: recorded_topic.to_string(),
                registered: conn.type_name.clone(),
                attempted: D::topic_type().to_string(),
            });
        }
        let attempted = D::schema().map(schema_hash).unwrap_or(0);
        if conn.schema_hash != 0 && attempted != 0 && conn.schema_hash != attempted {
            return Err(bag_err(BagError::SchemaMismatch {
                topic: recorded_topic.to_string(),
                recorded: conn.schema_hash,
                attempted,
            }));
        }
        Ok(conn.id)
    }

    /// Route `recorded_topic` to `publisher`, adopting each frame *in
    /// place* out of the bag mapping — no decode, no payload copy; the
    /// published message points straight at the mapped file.
    ///
    /// # Errors
    ///
    /// [`RosError::TypeMismatch`]/[`RosError::BadHeader`] when the route
    /// does not match the recorded connection (unknown topic, duplicate
    /// route, wrong type, schema-fingerprint mismatch).
    pub fn route_adopted<T: SfmMessage>(
        &mut self,
        recorded_topic: &str,
        nh: &NodeHandle,
        publisher: Publisher<SfmShared<T>>,
    ) -> Result<(), RosError> {
        let conn_id = self.check_route::<SfmShared<T>>(recorded_topic)?;
        let reader = Arc::clone(&self.reader);
        let metrics = nh.master().metrics().topic(publisher.topic());
        self.routes.insert(
            conn_id,
            Box::new(move |entry, verify| {
                if verify {
                    let bytes = reader.frame_bytes(entry).map_err(bag_err)?;
                    <SfmShared<T> as Decode>::verify_frame(bytes)?;
                }
                let (alloc, len) = reader.adopt_frame(entry).map_err(bag_err)?;
                let msg = SfmShared::<T>::adopt_extern(alloc, len)?;
                publisher.publish(&msg);
                metrics.bag_frames_replayed.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        );
        Ok(())
    }

    /// Route `recorded_topic` to `publisher` through the generic decode
    /// path (one copy per frame): works for any message family, including
    /// plain serialized types.
    ///
    /// # Errors
    ///
    /// As [`Replayer::route_adopted`].
    pub fn route_decoded<D: Decode + Encode>(
        &mut self,
        recorded_topic: &str,
        nh: &NodeHandle,
        publisher: Publisher<D>,
    ) -> Result<(), RosError> {
        let conn_id = self.check_route::<D>(recorded_topic)?;
        let reader = Arc::clone(&self.reader);
        let metrics = nh.master().metrics().topic(publisher.topic());
        self.routes.insert(
            conn_id,
            Box::new(move |entry, verify| {
                let bytes = reader.frame_bytes(entry).map_err(bag_err)?;
                if verify {
                    D::verify_frame(bytes)?;
                }
                let mut slot = D::new_slot(bytes.len())?;
                slot.as_mut_slice().copy_from_slice(bytes);
                let msg = D::finish_slot(slot)?;
                publisher.publish(&msg);
                metrics.bag_frames_replayed.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }),
        );
        Ok(())
    }

    /// Replay every routed topic on the recorded cadence.
    ///
    /// Frames from all routed connections merge into one stamp-ordered
    /// stream; each frame's publish instant is the *cumulative* recorded
    /// gap from the start (rate-adjusted), so pacing error does not
    /// accumulate across frames.
    ///
    /// # Errors
    ///
    /// [`RosError::BadHeader`] on a non-positive rate; route errors
    /// (adoption, verification) abort the run.
    pub fn run(&self, opts: ReplayOptions) -> Result<ReplayStats, RosError> {
        if opts.rate.is_nan() || opts.rate <= 0.0 {
            return Err(RosError::BadHeader(format!(
                "replay rate must be positive, got {}",
                opts.rate
            )));
        }
        let mut conns: Vec<u32> = self.routes.keys().copied().collect();
        conns.sort_unstable();
        let schedule = build_schedule(&self.reader, &conns, opts.rate);
        let started = Instant::now();
        let mut frames = 0u64;
        let mut err_sum = Duration::ZERO;
        let mut err_max = Duration::ZERO;
        for pass in 0..opts.loops.max(1) {
            if pass > 0 {
                sleep_until(Instant::now() + schedule.loop_gap);
            }
            let mut target = Instant::now();
            for item in &schedule.items {
                target += item.delay;
                sleep_until(target);
                let lag = Instant::now().saturating_duration_since(target);
                let route = self
                    .routes
                    .get(&item.conn_id)
                    .expect("schedule only covers routed connections");
                route(&item.entry, opts.verify)?;
                frames += 1;
                err_sum += lag;
                err_max = err_max.max(lag);
            }
        }
        Ok(ReplayStats {
            frames_replayed: frames,
            duration: started.elapsed(),
            pacing_mean_abs_error: if frames > 0 {
                err_sum / frames as u32
            } else {
                Duration::ZERO
            },
            pacing_max_abs_error: err_max,
        })
    }
}

/// Sleep to `target` with sub-millisecond accuracy: coarse `thread::sleep`
/// for the bulk, then a short spin for the tail (OS sleep granularity is
/// too coarse for inter-frame gaps of a fast sensor).
fn sleep_until(target: Instant) {
    loop {
        let now = Instant::now();
        if now >= target {
            return;
        }
        let left = target - now;
        if left > Duration::from_micros(500) {
            std::thread::sleep(left - Duration::from_micros(400));
        } else {
            std::hint::spin_loop();
        }
    }
}

// === Deprecated in-memory API (0.6-era), now stored as v2 format ===

/// One recorded message.
#[deprecated(
    since = "0.7.0",
    note = "use the streaming `Recorder`/`Replayer` or `rossf_bag` directly"
)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BagRecord {
    /// Capture time (monotonic experiment clock).
    pub stamp_nanos: u64,
    /// Topic the message was seen on.
    pub topic: String,
    /// ROS type name of the message.
    pub type_name: String,
    /// The wire payload, verbatim.
    pub payload: Vec<u8>,
}

/// An in-memory bag; serializable to/from the indexed v2 on-disk format.
#[deprecated(
    since = "0.7.0",
    note = "use the streaming `Recorder`/`Replayer` or `rossf_bag` directly"
)]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[allow(deprecated)]
pub struct Bag {
    records: Vec<BagRecord>,
}

#[allow(deprecated)]
impl Bag {
    /// Empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// The records, in capture order.
    pub fn records(&self) -> &[BagRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append one record.
    pub fn push(&mut self, record: BagRecord) {
        self.records.push(record);
    }

    /// Serialize to any writer in the v2 format.
    ///
    /// The v2 format carries one message type per topic and no empty
    /// payloads; records violating either are rejected. Per-topic stamps
    /// are stored non-decreasing (out-of-order stamps are clamped).
    ///
    /// # Errors
    ///
    /// I/O errors from the writer; [`RosError::BadHeader`] for records the
    /// format cannot represent.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), RosError> {
        let mut writer = rossf_bag::BagWriter::new(&mut *w).map_err(bag_err)?;
        let mut conns: Vec<(String, String, u32)> = Vec::new();
        for r in &self.records {
            let id = match conns.iter().find(|(t, _, _)| t == &r.topic) {
                Some((_, ty, id)) => {
                    if *ty != r.type_name {
                        return Err(RosError::BadHeader(format!(
                            "bag topic `{}` recorded with two types (`{ty}`, `{}`)",
                            r.topic, r.type_name
                        )));
                    }
                    *id
                }
                None => {
                    let id = writer
                        .add_connection(&r.topic, &r.type_name, 0)
                        .map_err(bag_err)?;
                    conns.push((r.topic.clone(), r.type_name.clone(), id));
                    id
                }
            };
            writer
                .append(id, r.stamp_nanos, &r.payload)
                .map_err(bag_err)?;
        }
        writer.finish().map_err(bag_err)?;
        w.flush()?;
        Ok(())
    }

    /// Deserialize from any reader (strict mode: the footer index must be
    /// present and consistent).
    ///
    /// # Errors
    ///
    /// [`RosError::BadHeader`] on format violations; I/O errors from the
    /// reader.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self, RosError> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        let reader = BagReader::from_bytes_strict(&bytes).map_err(bag_err)?;
        let mut records = Vec::new();
        for (conn_id, entry) in reader.frames_in_order() {
            let conn = reader
                .connections()
                .iter()
                .find(|c| c.id == conn_id)
                .expect("index references declared connections");
            records.push(BagRecord {
                stamp_nanos: entry.stamp_nanos,
                topic: conn.topic.clone(),
                type_name: conn.type_name.clone(),
                payload: reader.frame_bytes(&entry).map_err(bag_err)?.to_vec(),
            });
        }
        Ok(Bag { records })
    }

    /// Write to a file.
    ///
    /// # Errors
    ///
    /// I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), RosError> {
        let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)
    }

    /// Read from a file.
    ///
    /// # Errors
    ///
    /// I/O errors and format errors as [`Bag::read_from`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, RosError> {
        let mut r = std::io::BufReader::new(std::fs::File::open(path)?);
        Self::read_from(&mut r)
    }

    /// Re-publish every record for `topic` through `publisher`, decoding
    /// each stored payload into `D` first (so the bag can replay into
    /// either message family). Returns the number of messages replayed.
    ///
    /// # Errors
    ///
    /// Decoding errors if the bag's payloads do not match `D`.
    pub fn replay<D: Decode + Encode>(
        &self,
        topic: &str,
        publisher: &crate::publisher::Publisher<D>,
    ) -> Result<usize, RosError> {
        let mut count = 0;
        for r in self.records.iter().filter(|r| r.topic == topic) {
            if r.type_name != D::topic_type() {
                return Err(RosError::TypeMismatch {
                    topic: topic.to_string(),
                    registered: r.type_name.clone(),
                    attempted: D::topic_type().to_string(),
                });
            }
            let mut slot = D::new_slot(r.payload.len())?;
            slot.as_mut_slice().copy_from_slice(&r.payload);
            let msg = D::finish_slot(slot)?;
            publisher.publish(&msg);
            count += 1;
        }
        Ok(count)
    }
}

/// A live recorder: subscribes to a topic and appends every message to a
/// shared [`Bag`]. Dropping it stops recording.
#[deprecated(
    since = "0.7.0",
    note = "use the streaming `Recorder` (taps frames with zero copy instead of subscribing)"
)]
#[allow(deprecated)]
pub struct BagRecorder<D: Decode> {
    _sub: Subscriber<D>,
    bag: Arc<Mutex<Bag>>,
    topic: String,
}

#[allow(deprecated)]
impl<D: Decode + Encode + 'static> BagRecorder<D> {
    /// Start recording `topic` through `nh`.
    ///
    /// # Errors
    ///
    /// [`RosError::TypeMismatch`] if the topic carries a different type.
    pub fn start(nh: &NodeHandle, topic: &str) -> Result<Self, RosError> {
        let bag = Arc::new(Mutex::new(Bag::new()));
        let bag_cb = Arc::clone(&bag);
        let topic_cb = topic.to_string();
        let sub =
            nh.try_subscribe_with(topic, crate::SubscriberOptions::new(), move |msg: D| {
                let frame = msg.encode();
                bag_cb.lock().push(BagRecord {
                    stamp_nanos: now_nanos(),
                    topic: topic_cb.clone(),
                    type_name: D::topic_type().to_string(),
                    payload: frame.as_slice().to_vec(),
                });
            })?;
        Ok(BagRecorder {
            _sub: sub,
            bag,
            topic: topic.to_string(),
        })
    }

    /// Messages recorded so far.
    pub fn count(&self) -> usize {
        self.bag.lock().len()
    }

    /// The topic being recorded.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// Stop recording and take the bag.
    pub fn finish(self) -> Bag {
        // Dropping the subscriber first guarantees no further appends.
        drop(self._sub);
        Arc::try_unwrap(self.bag)
            .map(|m| m.into_inner())
            .unwrap_or_else(|arc| arc.lock().clone())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::master::Master;
    use crate::options::PublisherOptions;
    use rossf_sfm::{SfmBox, SfmError, SfmPod, SfmValidate, SfmVec};

    fn record(i: u64) -> BagRecord {
        BagRecord {
            stamp_nanos: i * 1000,
            topic: format!("topic_{}", i % 2),
            type_name: "test/T".to_string(),
            payload: vec![i as u8; (i as usize % 7) + 1],
        }
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut bag = Bag::new();
        for i in 0..10 {
            bag.push(record(i));
        }
        let mut bytes = Vec::new();
        bag.write_to(&mut bytes).unwrap();
        let back = Bag::read_from(&mut &bytes[..]).unwrap();
        assert_eq!(back, bag);
        assert_eq!(back.len(), 10);
        assert!(!back.is_empty());
    }

    #[test]
    fn empty_bag_roundtrips() {
        let bag = Bag::new();
        let mut bytes = Vec::new();
        bag.write_to(&mut bytes).unwrap();
        assert!(bytes.starts_with(rossf_bag::format::MAGIC));
        assert!(Bag::read_from(&mut &bytes[..]).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let bytes = b"NOTABAG!! and assorted trailing junk".to_vec();
        assert!(matches!(
            Bag::read_from(&mut &bytes[..]),
            Err(RosError::BadHeader(_))
        ));
    }

    #[test]
    fn truncated_bag_rejected_by_strict_load() {
        let mut bag = Bag::new();
        bag.push(record(1));
        let mut bytes = Vec::new();
        bag.write_to(&mut bytes).unwrap();
        bytes.truncate(bytes.len() - 2);
        assert!(Bag::read_from(&mut &bytes[..]).is_err());
    }

    #[test]
    fn file_save_and_load() {
        let mut bag = Bag::new();
        bag.push(record(3));
        let path = std::env::temp_dir().join(format!("rossf_bag_test_{}.bag", std::process::id()));
        bag.save(&path).unwrap();
        let back = Bag::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, bag);
    }

    #[test]
    fn conflicting_types_on_one_topic_rejected() {
        let mut bag = Bag::new();
        let mut a = record(0);
        a.topic = "t".into();
        let mut b = record(1);
        b.topic = "t".into();
        b.type_name = "other/T".into();
        bag.push(a);
        bag.push(b);
        let mut bytes = Vec::new();
        assert!(matches!(
            bag.write_to(&mut bytes),
            Err(RosError::BadHeader(_))
        ));
    }

    // === streaming Recorder / Replayer ===

    #[repr(C)]
    struct BagMsg {
        data: SfmVec<u8>,
    }
    unsafe impl SfmPod for BagMsg {}
    impl SfmValidate for BagMsg {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.data.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for BagMsg {
        fn type_name() -> &'static str {
            "test/BagMsg"
        }
        fn max_size() -> usize {
            512
        }
    }

    fn fnv(bytes: &[u8]) -> u64 {
        rossf_bag::fnv1a64(bytes)
    }

    #[test]
    fn recorder_and_adopted_replay_end_to_end() {
        let master = Master::new();
        let nh = NodeHandle::new(&master, "bag_e2e");
        let publisher =
            nh.advertise_with::<SfmBox<BagMsg>>("bag/cam", PublisherOptions::new().queue_size(16));

        let path = std::env::temp_dir().join(format!("rossf_bag_e2e_{}.bag", std::process::id()));
        let recorder = Recorder::builder()
            .topic::<SfmBox<BagMsg>>("bag/cam")
            .queue_capacity(64)
            .start(&nh, &path)
            .unwrap();
        assert!(recorder.wait_attached(1, Duration::from_secs(5)));

        let mut published = Vec::new();
        for i in 0..8u8 {
            let mut msg = SfmBox::<BagMsg>::new();
            msg.data.resize((i as usize % 5) + 3);
            for (j, b) in msg.data.as_mut_slice().iter_mut().enumerate() {
                *b = i.wrapping_mul(31).wrapping_add(j as u8);
            }
            published.push(fnv(msg.encode().as_slice()));
            publisher.publish(&msg);
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while recorder.stats().frames_recorded < 8 {
            assert!(Instant::now() < deadline, "recorder never saw all frames");
            std::thread::sleep(Duration::from_millis(1));
        }
        let stats = recorder.stats();
        assert_eq!(stats.frames_dropped, 0);
        let summary = recorder.finish().unwrap();
        assert_eq!(summary.frames, 8);
        // The bag counters ride the topic's TransportMetrics, so they are
        // visible through the publisher's own stats() snapshot.
        let pub_stats = publisher.stats();
        assert_eq!(pub_stats.transport.bag_frames_recorded, 8);
        assert_eq!(pub_stats.transport.bag_frames_dropped, 0);
        assert!(pub_stats.transport.bag_bytes_written > 0);

        // Replay into a fresh topic; the subscriber proves zero-copy by
        // checking the delivered message aliases the bag mapping.
        let mut replayer = Replayer::open(&path).unwrap();
        assert!(!replayer.reader().recovered());
        let range = replayer.reader().addr_range();
        let replay_pub = nh.advertise_with::<SfmShared<BagMsg>>(
            "bag/cam_rp",
            PublisherOptions::new().queue_size(16),
        );
        let seen = Arc::new(Mutex::new(Vec::<(u64, bool)>::new()));
        let seen_cb = Arc::clone(&seen);
        let _sub = nh.subscribe("bag/cam_rp", 16, move |msg: SfmShared<BagMsg>| {
            let base = msg.base();
            let in_map = base >= range.0 && base < range.1;
            let frame = msg.encode();
            seen_cb.lock().push((fnv(frame.as_slice()), in_map));
        });
        std::thread::sleep(Duration::from_millis(50)); // let the sub attach
        replayer
            .route_adopted::<BagMsg>("bag/cam", &nh, replay_pub)
            .unwrap();
        let stats = replayer
            .run(ReplayOptions::default().rate(1000.0).verify(true))
            .unwrap();
        assert_eq!(stats.frames_replayed, 8);
        assert_eq!(
            master
                .metrics()
                .topic("bag/cam_rp")
                .snapshot()
                .bag_frames_replayed,
            8
        );

        let deadline = Instant::now() + Duration::from_secs(5);
        while seen.lock().len() < 8 {
            assert!(Instant::now() < deadline, "replayed frames never delivered");
            std::thread::sleep(Duration::from_millis(1));
        }
        let seen = seen.lock();
        assert_eq!(
            seen.iter().map(|(h, _)| *h).collect::<Vec<_>>(),
            published,
            "replayed bytes must equal recorded bytes, in order"
        );
        assert!(
            seen.iter().all(|(_, in_map)| *in_map),
            "every replayed message must alias the bag mapping (zero copy)"
        );
        drop(seen);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_route_type_mismatch_refused() {
        let master = Master::new();
        let nh = NodeHandle::new(&master, "bag_mismatch");
        let publisher =
            nh.advertise_with::<SfmBox<BagMsg>>("bag/typed", PublisherOptions::new().queue_size(4));
        let path = std::env::temp_dir().join(format!("rossf_bag_mm_{}.bag", std::process::id()));
        let recorder = Recorder::builder()
            .topic::<SfmBox<BagMsg>>("bag/typed")
            .start(&nh, &path)
            .unwrap();
        assert!(recorder.wait_attached(1, Duration::from_secs(5)));
        let mut msg = SfmBox::<BagMsg>::new();
        msg.data.resize(4);
        publisher.publish(&msg);
        let deadline = Instant::now() + Duration::from_secs(5);
        while recorder.stats().frames_recorded < 1 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(1));
        }
        recorder.finish().unwrap();

        #[repr(C)]
        struct OtherMsg {
            data: SfmVec<u8>,
        }
        unsafe impl SfmPod for OtherMsg {}
        impl SfmValidate for OtherMsg {
            fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
                self.data.validate_in(base, len)
            }
        }
        unsafe impl SfmMessage for OtherMsg {
            fn type_name() -> &'static str {
                "test/OtherMsg"
            }
            fn max_size() -> usize {
                512
            }
        }

        let mut replayer = Replayer::open(&path).unwrap();
        let wrong = nh.advertise_with::<SfmShared<OtherMsg>>(
            "bag/typed_rp",
            PublisherOptions::new().queue_size(4),
        );
        let err = replayer
            .route_adopted::<OtherMsg>("bag/typed", &nh, wrong)
            .unwrap_err();
        assert!(matches!(err, RosError::TypeMismatch { .. }));
        let missing = nh.advertise_with::<SfmShared<OtherMsg>>(
            "bag/typed_rp2",
            PublisherOptions::new().queue_size(4),
        );
        let err = replayer
            .route_adopted::<OtherMsg>("no/such_topic", &nh, missing)
            .unwrap_err();
        assert!(matches!(err, RosError::BadHeader(_)));
        std::fs::remove_file(&path).ok();
    }
}
