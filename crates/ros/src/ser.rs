//! The ROS1 serialization format.
//!
//! This is the baseline the paper compares against: the format produced by
//! `roscpp`'s generated serializers. It is little-endian and packed:
//!
//! | IDL type        | wire form                              |
//! |-----------------|----------------------------------------|
//! | numeric         | little-endian bytes                    |
//! | `bool`          | one byte (0/1)                         |
//! | `string`        | `u32` length + UTF-8 bytes (no NUL)    |
//! | `T[]` (dynamic) | `u32` count + serialized elements      |
//! | `T[N]` (fixed)  | serialized elements only               |
//! | `time`          | `u32` sec + `u32` nsec                 |
//! | nested message  | fields in declaration order            |
//!
//! [`RosField`] implements the per-field encoding recursively;
//! [`RosMessage`] adds the message-level metadata. Both are generated for
//! user types by `ros_message!` in `rossf-msg`.

use crate::time::{RosDuration, RosTime};
use core::fmt;

/// Error produced when decoding a ROS1-serialized buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the field was complete.
    UnexpectedEof {
        /// Bytes needed by the field being decoded.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A `string` field held invalid UTF-8.
    InvalidUtf8,
    /// A declared length is absurd (longer than the remaining buffer) —
    /// corrupt data; refusing early avoids huge allocations.
    LengthOverrun {
        /// The declared element/byte count.
        declared: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// Bytes were left over after the message was fully decoded.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected end of buffer: needed {needed}, had {remaining}"
                )
            }
            DecodeError::InvalidUtf8 => write!(f, "string field holds invalid UTF-8"),
            DecodeError::LengthOverrun {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining buffer {remaining}"
            ),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor over a serialized buffer.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Error unless the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`] when bytes remain.
    pub fn finish(&self) -> Result<(), DecodeError> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(DecodeError::TrailingBytes(n)),
        }
    }
}

/// A value serializable as a ROS1 message field.
pub trait RosField: Sized {
    /// Exact number of bytes `write_field` will append.
    fn field_len(&self) -> usize;
    /// Append the wire form to `out`.
    fn write_field(&self, out: &mut Vec<u8>);
    /// Decode the wire form.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on truncated or corrupt input.
    fn read_field(r: &mut ByteReader<'_>) -> Result<Self, DecodeError>;
}

macro_rules! impl_numeric_field {
    ($($t:ty),*) => {$(
        impl RosField for $t {
            #[inline]
            fn field_len(&self) -> usize {
                core::mem::size_of::<$t>()
            }

            #[inline]
            fn write_field(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_field(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
                let bytes = r.take(core::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("exact take")))
            }
        }
    )*};
}
impl_numeric_field!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl RosField for bool {
    fn field_len(&self) -> usize {
        1
    }

    fn write_field(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }

    fn read_field(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(r.take(1)?[0] != 0)
    }
}

impl RosField for String {
    fn field_len(&self) -> usize {
        4 + self.len()
    }

    fn write_field(&self, out: &mut Vec<u8>) {
        (self.len() as u32).write_field(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn read_field(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = u32::read_field(r)? as usize;
        if len > r.remaining() {
            return Err(DecodeError::LengthOverrun {
                declared: len,
                remaining: r.remaining(),
            });
        }
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }
}

impl<T: RosField> RosField for Vec<T> {
    fn field_len(&self) -> usize {
        4 + self.iter().map(RosField::field_len).sum::<usize>()
    }

    fn write_field(&self, out: &mut Vec<u8>) {
        (self.len() as u32).write_field(out);
        // Fast path for byte arrays dominates image payloads.
        for item in self {
            item.write_field(out);
        }
    }

    fn read_field(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let count = u32::read_field(r)? as usize;
        // Each element occupies at least one byte on the wire.
        if count > r.remaining() {
            return Err(DecodeError::LengthOverrun {
                declared: count,
                remaining: r.remaining(),
            });
        }
        let mut v = Vec::with_capacity(count);
        for _ in 0..count {
            v.push(T::read_field(r)?);
        }
        Ok(v)
    }
}

impl<T: RosField + Default + Copy, const N: usize> RosField for [T; N] {
    fn field_len(&self) -> usize {
        self.iter().map(RosField::field_len).sum()
    }

    fn write_field(&self, out: &mut Vec<u8>) {
        for item in self {
            item.write_field(out);
        }
    }

    fn read_field(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let mut arr = [T::default(); N];
        for slot in &mut arr {
            *slot = T::read_field(r)?;
        }
        Ok(arr)
    }
}

impl RosField for RosTime {
    fn field_len(&self) -> usize {
        8
    }

    fn write_field(&self, out: &mut Vec<u8>) {
        self.sec.write_field(out);
        self.nsec.write_field(out);
    }

    fn read_field(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(RosTime {
            sec: u32::read_field(r)?,
            nsec: u32::read_field(r)?,
        })
    }
}

impl RosField for RosDuration {
    fn field_len(&self) -> usize {
        8
    }

    fn write_field(&self, out: &mut Vec<u8>) {
        self.sec.write_field(out);
        self.nsec.write_field(out);
    }

    fn read_field(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(RosDuration {
            sec: i32::read_field(r)?,
            nsec: i32::read_field(r)?,
        })
    }
}

/// A complete ROS1 message: a [`RosField`] with a registered type name.
///
/// The generated serializer/de-serializer pair of `roscpp` corresponds to
/// [`RosMessage::to_bytes`] / [`RosMessage::from_bytes`].
pub trait RosMessage: RosField + Clone + Send + Sync + fmt::Debug + 'static {
    /// ROS type name, e.g. `sensor_msgs/Image`.
    fn ros_type_name() -> &'static str;

    /// Serialize into a fresh buffer (what `publish` does internally for
    /// ordinary messages).
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.field_len());
        self.write_field(&mut out);
        out
    }

    /// De-serialize a full frame, requiring every byte to be consumed.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on truncated, trailing, or corrupt input.
    fn from_bytes(buf: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(buf);
        let msg = Self::read_field(&mut r)?;
        r.finish()?;
        Ok(msg)
    }
}

// Specialized byte-vector helpers used by generated code: `Vec<u8>` copies
// in bulk rather than element-wise, which matters for megabyte image
// payloads in the baseline serializer.
/// Append a `u8[]` field in bulk (helper for generated serializers).
pub fn write_bytes_field(data: &[u8], out: &mut Vec<u8>) {
    (data.len() as u32).write_field(out);
    out.extend_from_slice(data);
}

/// Read a `u8[]` field in bulk (helper for generated de-serializers).
///
/// # Errors
///
/// [`DecodeError::LengthOverrun`] / [`DecodeError::UnexpectedEof`] on
/// truncated input.
pub fn read_bytes_field(r: &mut ByteReader<'_>) -> Result<Vec<u8>, DecodeError> {
    let len = u32::read_field(r)? as usize;
    if len > r.remaining() {
        return Err(DecodeError::LengthOverrun {
            declared: len,
            remaining: r.remaining(),
        });
    }
    Ok(r.take(len)?.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: RosField + PartialEq + fmt::Debug>(value: T) {
        let mut buf = Vec::new();
        value.write_field(&mut buf);
        assert_eq!(buf.len(), value.field_len(), "field_len mismatch");
        let mut r = ByteReader::new(&buf);
        let back = T::read_field(&mut r).unwrap();
        assert_eq!(back, value);
        r.finish().unwrap();
    }

    #[test]
    fn numeric_roundtrips() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(-7i8);
        roundtrip(65535u16);
        roundtrip(-32768i16);
        roundtrip(0xdead_beefu32);
        roundtrip(i32::MIN);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-2.25f64);
        roundtrip(true);
        roundtrip(false);
    }

    #[test]
    fn numbers_are_little_endian() {
        let mut buf = Vec::new();
        0x0102_0304u32.write_field(&mut buf);
        assert_eq!(buf, [0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn string_roundtrip_and_layout() {
        roundtrip(String::from(""));
        roundtrip(String::from("rgb8"));
        roundtrip(String::from("héllo✓"));
        let mut buf = Vec::new();
        String::from("rgb8").write_field(&mut buf);
        // u32 len (4) + bytes, no NUL — the ROS1 layout.
        assert_eq!(buf, [4, 0, 0, 0, b'r', b'g', b'b', b'8']);
    }

    #[test]
    fn vec_roundtrips() {
        roundtrip(Vec::<u8>::new());
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(vec![1.5f64, -0.5]);
        roundtrip(vec![String::from("a"), String::from("bb")]);
        roundtrip(vec![vec![1u16, 2], vec![3u16]]);
    }

    #[test]
    fn fixed_array_has_no_length_prefix() {
        let arr = [1.0f64, 2.0, 3.0];
        let mut buf = Vec::new();
        arr.write_field(&mut buf);
        assert_eq!(buf.len(), 24);
        roundtrip(arr);
    }

    #[test]
    fn time_roundtrip() {
        roundtrip(RosTime {
            sec: 12,
            nsec: 345_678_910,
        });
    }

    #[test]
    fn truncated_inputs_error() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(matches!(
            u32::read_field(&mut r),
            Err(DecodeError::UnexpectedEof { .. })
        ));

        // String claiming 100 bytes with only 2 available.
        let mut buf = Vec::new();
        100u32.write_field(&mut buf);
        buf.extend_from_slice(b"ab");
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            String::read_field(&mut r),
            Err(DecodeError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn absurd_vec_count_rejected_before_allocating() {
        let mut buf = Vec::new();
        u32::MAX.write_field(&mut buf);
        let mut r = ByteReader::new(&buf);
        assert!(matches!(
            Vec::<u8>::read_field(&mut r),
            Err(DecodeError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        2u32.write_field(&mut buf);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = ByteReader::new(&buf);
        assert_eq!(String::read_field(&mut r), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = ByteReader::new(&[0u8; 3]);
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes(3)));
    }

    #[test]
    fn bulk_byte_helpers_match_generic_path() {
        let data = vec![7u8; 1000];
        let mut a = Vec::new();
        data.write_field(&mut a);
        let mut b = Vec::new();
        write_bytes_field(&data, &mut b);
        assert_eq!(a, b);
        let mut r = ByteReader::new(&b);
        assert_eq!(read_bytes_field(&mut r).unwrap(), data);
    }

    #[test]
    fn decode_error_display() {
        for e in [
            DecodeError::UnexpectedEof {
                needed: 4,
                remaining: 1,
            },
            DecodeError::InvalidUtf8,
            DecodeError::LengthOverrun {
                declared: 9,
                remaining: 2,
            },
            DecodeError::TrailingBytes(5),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
