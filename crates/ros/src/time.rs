//! ROS time: the `time` primitive of the ROS IDL plus a process-wide
//! monotonic clock used for latency measurement.
//!
//! The experiments stamp a message with its creation time at the publisher
//! and subtract at the subscriber (Fig. 12). All simulated machines live in
//! one OS process, so a single monotonic epoch gives the paper's machine-A
//! clock for free (the reason the paper uses ping-pong for inter-machine
//! tests is *avoided*, but we still reproduce the ping-pong topology).

/// The ROS `time` primitive: seconds + nanoseconds since an epoch. Wire
/// format: two little-endian `u32`s.
///
/// `#[repr(C)]` and [`SfmPod`](rossf_sfm::SfmPod) so the same type serves
/// as the `time` field of both plain and SFM message structs.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RosTime {
    /// Whole seconds.
    pub sec: u32,
    /// Nanoseconds within the second (`< 1_000_000_000`).
    pub nsec: u32,
}

impl RosTime {
    /// Zero time.
    pub const ZERO: RosTime = RosTime { sec: 0, nsec: 0 };

    /// Current time on the process-wide monotonic clock.
    pub fn now() -> RosTime {
        RosTime::from_nanos(now_nanos())
    }

    /// Build from a nanosecond count.
    pub fn from_nanos(nanos: u64) -> RosTime {
        RosTime {
            sec: (nanos / 1_000_000_000) as u32,
            nsec: (nanos % 1_000_000_000) as u32,
        }
    }

    /// Total nanoseconds represented.
    pub fn as_nanos(&self) -> u64 {
        self.sec as u64 * 1_000_000_000 + self.nsec as u64
    }

    /// `self - earlier` in nanoseconds; saturates at zero if `earlier` is
    /// later (clock misuse).
    pub fn nanos_since(&self, earlier: RosTime) -> u64 {
        self.as_nanos().saturating_sub(earlier.as_nanos())
    }
}

// SAFETY: two u32s, repr(C), all-zero is valid, no drop glue.
unsafe impl rossf_sfm::SfmPod for RosTime {}

impl rossf_sfm::SfmReflect for RosTime {
    /// A `time` is an indirection-free 8-byte leaf to the verifier.
    fn type_desc() -> rossf_sfm::TypeDesc {
        rossf_sfm::TypeDesc::Prim {
            size: core::mem::size_of::<RosTime>(),
            align: core::mem::align_of::<RosTime>(),
        }
    }
}

impl rossf_sfm::SfmValidate for RosTime {
    #[inline]
    fn validate_in(&self, _base: usize, _len: usize) -> Result<(), rossf_sfm::SfmError> {
        Ok(())
    }
}

impl rossf_sfm::SfmEndianSwap for RosTime {
    fn swap_in_place(
        &mut self,
        base: usize,
        len: usize,
        dir: rossf_sfm::SwapDirection,
    ) -> Result<(), rossf_sfm::SfmError> {
        self.sec.swap_in_place(base, len, dir)?;
        self.nsec.swap_in_place(base, len, dir)
    }
}

/// The ROS `duration` primitive: a signed seconds + nanoseconds span.
/// Wire format: two little-endian `i32`s.
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RosDuration {
    /// Whole seconds (may be negative).
    pub sec: i32,
    /// Nanoseconds within the second.
    pub nsec: i32,
}

// SAFETY: two i32s, repr(C), all-zero is valid, no drop glue.
unsafe impl rossf_sfm::SfmPod for RosDuration {}

impl rossf_sfm::SfmReflect for RosDuration {
    /// A `duration` is an indirection-free 8-byte leaf to the verifier.
    fn type_desc() -> rossf_sfm::TypeDesc {
        rossf_sfm::TypeDesc::Prim {
            size: core::mem::size_of::<RosDuration>(),
            align: core::mem::align_of::<RosDuration>(),
        }
    }
}

impl rossf_sfm::SfmValidate for RosDuration {
    #[inline]
    fn validate_in(&self, _base: usize, _len: usize) -> Result<(), rossf_sfm::SfmError> {
        Ok(())
    }
}

impl rossf_sfm::SfmEndianSwap for RosDuration {
    fn swap_in_place(
        &mut self,
        base: usize,
        len: usize,
        dir: rossf_sfm::SwapDirection,
    ) -> Result<(), rossf_sfm::SfmError> {
        self.sec.swap_in_place(base, len, dir)?;
        self.nsec.swap_in_place(base, len, dir)
    }
}

/// Nanoseconds since the process-wide monotonic epoch (first call).
///
/// Shares the tracing clock (`rossf_trace::now_nanos`): message stamps and
/// stage spans live on one timeline, so a trace waterfall can be correlated
/// with `RosTime` latency measurements directly.
pub fn now_nanos() -> u64 {
    rossf_trace::now_nanos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nanos() {
        for nanos in [0u64, 1, 999_999_999, 1_000_000_000, 1_234_567_891] {
            assert_eq!(RosTime::from_nanos(nanos).as_nanos(), nanos);
        }
    }

    #[test]
    fn now_is_monotone() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
        let t1 = RosTime::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let t2 = RosTime::now();
        assert!(t2.nanos_since(t1) >= 2_000_000);
    }

    #[test]
    fn nanos_since_saturates() {
        let early = RosTime::from_nanos(100);
        let late = RosTime::from_nanos(500);
        assert_eq!(late.nanos_since(early), 400);
        assert_eq!(early.nanos_since(late), 0);
    }

    #[test]
    fn nsec_stays_in_range() {
        let t = RosTime::from_nanos(7_999_999_999);
        assert_eq!(t.sec, 7);
        assert_eq!(t.nsec, 999_999_999);
    }
}
