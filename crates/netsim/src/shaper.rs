//! Pacing of a byte stream to a [`LinkProfile`].

use crate::link::LinkProfile;
use std::io::{self, IoSlice, Write};
use std::time::{Duration, Instant};

/// Stateful pacing engine: tracks when the simulated link next becomes
/// idle and computes how long a write must stall.
///
/// Separated from [`ShapedWriter`] so transports that manage their own
/// buffers can drive pacing directly.
#[derive(Debug)]
pub struct Shaper {
    profile: LinkProfile,
    busy_until: Instant,
}

impl Shaper {
    /// New shaper for `profile`; the link starts idle.
    pub fn new(profile: LinkProfile) -> Self {
        Shaper {
            profile,
            busy_until: Instant::now(),
        }
    }

    /// The profile being enforced.
    pub fn profile(&self) -> LinkProfile {
        self.profile
    }

    /// Account for transmitting `bytes` now; returns how long the caller
    /// must sleep before the bytes may be considered "on the wire".
    ///
    /// Uses the busy-until model: consecutive writes queue behind each
    /// other, so a burst of frames drains at exactly the link bandwidth.
    pub fn reserve(&mut self, bytes: usize) -> Duration {
        if self.profile.bandwidth_bps == 0 {
            return Duration::ZERO;
        }
        let now = Instant::now();
        let start = self.busy_until.max(now);
        self.busy_until = start + self.profile.transmit_time(bytes);
        self.busy_until.saturating_duration_since(now)
    }

    /// Block until `bytes` would have finished transmitting.
    pub fn pace(&mut self, bytes: usize) {
        let wait = self.reserve(bytes);
        if !wait.is_zero() {
            std::thread::sleep(wait);
        }
    }

    /// Pay the one-way propagation latency once (call per frame).
    pub fn propagate(&self) {
        if !self.profile.latency.is_zero() {
            std::thread::sleep(self.profile.latency);
        }
    }
}

/// A [`Write`] adaptor that paces all bytes through a [`Shaper`].
///
/// Latency is charged once per `write` call (transports call `write` once
/// per frame); bandwidth is charged per byte. Writes are chunked so that a
/// large frame's pacing interleaves with the underlying socket's own
/// buffering instead of sleeping the whole transmit time up front.
#[derive(Debug)]
pub struct ShapedWriter<W: Write> {
    inner: W,
    shaper: Shaper,
    chunk: usize,
}

/// Default pacing chunk: 64 KiB, roughly a TCP send-buffer quantum.
const DEFAULT_CHUNK: usize = 64 * 1024;

impl<W: Write> ShapedWriter<W> {
    /// Wrap `inner` with pacing per `profile`.
    pub fn new(inner: W, profile: LinkProfile) -> Self {
        ShapedWriter {
            inner,
            shaper: Shaper::new(profile),
            chunk: DEFAULT_CHUNK,
        }
    }

    /// Reference to the wrapped writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    /// Mutable reference to the wrapped writer.
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    /// Unwrap, discarding pacing state.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// Charge the per-frame propagation latency. Transports call this once
    /// per message frame before writing its bytes.
    pub fn start_frame(&mut self) {
        self.shaper.propagate();
    }
}

impl<W: Write> Write for ShapedWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        // Unshaped links pass whole buffers through (no artificial
        // chunking, no extra syscalls).
        if self.shaper.profile().bandwidth_bps == 0 {
            return self.inner.write(buf);
        }
        // Pace then forward one chunk; callers using write_all will loop.
        let n = buf.len().min(self.chunk);
        self.shaper.pace(n);
        self.inner.write(&buf[..n])
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        // Unshaped links forward the whole gather list so a coalesced
        // prefix+payload frame stays one syscall on the real socket.
        if self.shaper.profile().bandwidth_bps == 0 {
            return self.inner.write_vectored(bufs);
        }
        // Shaped links pace chunk-by-chunk; vectoring would not change the
        // simulated transmit time, so fall back to the chunked scalar path
        // on the first non-empty segment.
        match bufs.iter().find(|b| !b.is_empty()) {
            Some(buf) => self.write(buf),
            None => Ok(0),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkProfile;

    fn mbps(bits_per_sec: u64) -> LinkProfile {
        LinkProfile {
            bandwidth_bps: bits_per_sec,
            latency: Duration::ZERO,
        }
    }

    #[test]
    fn unlimited_is_instant() {
        let mut s = Shaper::new(LinkProfile::UNLIMITED);
        assert_eq!(s.reserve(10_000_000), Duration::ZERO);
    }

    #[test]
    fn reserve_accumulates_busy_time() {
        // 8 Mb/s → 1 byte per microsecond.
        let mut s = Shaper::new(mbps(8_000_000));
        let w1 = s.reserve(1000);
        let w2 = s.reserve(1000);
        // Second reservation queues behind the first.
        assert!(w2 > w1, "w1={w1:?} w2={w2:?}");
        assert!(w2.as_micros() >= 1900, "w2={w2:?}");
    }

    #[test]
    fn paced_write_takes_expected_time() {
        // 80 Mb/s → 10 bytes/µs; 100 KB ≈ 10 ms.
        let mut w = ShapedWriter::new(Vec::new(), mbps(80_000_000));
        let start = Instant::now();
        w.write_all(&vec![7u8; 100_000]).unwrap();
        let elapsed = start.elapsed();
        assert_eq!(w.get_ref().len(), 100_000);
        assert!(
            elapsed >= Duration::from_millis(9),
            "elapsed only {elapsed:?}"
        );
        assert!(w.get_ref().iter().all(|&b| b == 7));
    }

    #[test]
    fn latency_charged_per_frame() {
        let profile = LinkProfile {
            bandwidth_bps: 0,
            latency: Duration::from_millis(5),
        };
        let mut w = ShapedWriter::new(Vec::new(), profile);
        let start = Instant::now();
        w.start_frame();
        w.write_all(b"hello").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn unshaped_vectored_write_passes_all_segments() {
        let mut w = ShapedWriter::new(Vec::new(), LinkProfile::UNLIMITED);
        let n = w
            .write_vectored(&[IoSlice::new(b"abc"), IoSlice::new(b"defg")])
            .unwrap();
        assert_eq!(n, 7);
        assert_eq!(w.get_ref(), b"abcdefg");
    }

    #[test]
    fn shaped_vectored_write_still_paces() {
        // 80 Mb/s → 10 bytes/µs; 100 KB ≈ 10 ms, split across two segments.
        let mut w = ShapedWriter::new(Vec::new(), mbps(80_000_000));
        let (a, b) = (vec![7u8; 40_000], vec![8u8; 60_000]);
        let start = Instant::now();
        let mut written = 0;
        while written < a.len() + b.len() {
            let bufs = if written < a.len() {
                [IoSlice::new(&a[written..]), IoSlice::new(&b)]
            } else {
                [IoSlice::new(&b[written - a.len()..]), IoSlice::new(&[])]
            };
            written += w.write_vectored(&bufs).unwrap();
        }
        assert!(start.elapsed() >= Duration::from_millis(9));
        assert_eq!(w.get_ref().len(), 100_000);
    }

    #[test]
    fn into_inner_and_get_mut() {
        let mut w = ShapedWriter::new(Vec::new(), LinkProfile::UNLIMITED);
        w.write_all(b"abc").unwrap();
        w.get_mut().push(b'!');
        w.flush().unwrap();
        assert_eq!(w.into_inner(), b"abc!".to_vec());
    }
}
