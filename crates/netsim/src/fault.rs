//! Deterministic fault injection for simulated links.
//!
//! A [`FaultInjector`] attaches to one link of the
//! [`LinkTable`](crate::LinkTable) and tells the transport what to do with
//! each frame that crosses it. Faults are scheduled against a monotonically
//! increasing *frame index* (the order frames reach the link), so a test
//! can say "drop frame 3, delay frame 7 by 5 ms, sever the link at frame
//! 10" and get the same behaviour on every run — no randomness, no timing
//! dependence.
//!
//! A *severed* link is a latch: every frame after the sever point fails and
//! new connection attempts across the link are refused, until [`heal`] is
//! called. This models unplugging and replugging a cable mid-experiment —
//! the scenario a transport's reconnect logic exists for.
//!
//! [`heal`]: FaultInjector::heal

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// What the transport must do with one frame crossing a faulty link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver the frame normally.
    Pass,
    /// Deliver the frame after an added delay.
    Delay(Duration),
    /// Silently discard the frame (delivery continues with the next one).
    Drop,
    /// Cut the connection: the frame is lost and the link stays down until
    /// [`FaultInjector::heal`].
    Sever,
}

/// Per-link fault schedule plus the severed-link latch.
///
/// Shared between the link table and the transport writer threads via
/// `Arc`; all operations are lock-free except rule lookup.
#[derive(Debug, Default)]
pub struct FaultInjector {
    /// Frame index → scheduled action. Consulted once per frame.
    rules: Mutex<BTreeMap<u64, FaultAction>>,
    /// Frames that have crossed (or attempted to cross) the link.
    next_frame: AtomicU64,
    /// Severed latch: set by a `Sever` rule or [`FaultInjector::sever_now`],
    /// cleared only by [`FaultInjector::heal`].
    severed: AtomicBool,
    frames_dropped: AtomicU64,
    frames_delayed: AtomicU64,
    frames_passed: AtomicU64,
    severs: AtomicU64,
}

impl FaultInjector {
    /// A fresh injector with no scheduled faults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule the `index`-th frame (0-based, in link order) to be
    /// discarded.
    pub fn drop_frame(&self, index: u64) {
        self.rules.lock().insert(index, FaultAction::Drop);
    }

    /// Schedule the `index`-th frame to be delivered `delay` late.
    pub fn delay_frame(&self, index: u64, delay: Duration) {
        self.rules.lock().insert(index, FaultAction::Delay(delay));
    }

    /// Schedule the link to be cut when the `index`-th frame is sent.
    pub fn sever_at_frame(&self, index: u64) {
        self.rules.lock().insert(index, FaultAction::Sever);
    }

    /// Cut the link immediately: in-flight and future frames fail and new
    /// connections are refused until [`FaultInjector::heal`].
    pub fn sever_now(&self) {
        // Relaxed: `severed` is a standalone flag — no data is published
        // through it (rules live under their own lock), and the swap alone
        // guarantees the sever is counted exactly once.
        if !self.severed.swap(true, Ordering::Relaxed) {
            self.severs.fetch_add(1, Ordering::Relaxed);
            self.trace_fault("sever", 0);
        }
    }

    /// Restore a severed link. Scheduled rules for not-yet-reached frame
    /// indices remain in force.
    pub fn heal(&self) {
        // Relaxed: see `sever_now` — the flag is self-contained.
        self.severed.store(false, Ordering::Relaxed);
    }

    /// `true` while the link is cut.
    pub fn is_severed(&self) -> bool {
        // Relaxed: see `sever_now` — the flag is self-contained.
        self.severed.load(Ordering::Relaxed)
    }

    /// Consume the next frame index and return the action for it.
    ///
    /// While the link is severed this returns [`FaultAction::Sever`]
    /// without consuming an index, so every writer on the link observes the
    /// cut regardless of frame ordering.
    pub fn next_frame_action(&self) -> FaultAction {
        if self.is_severed() {
            return FaultAction::Sever;
        }
        // Relaxed: the fetch_add's atomicity alone guarantees unique
        // frame indices; the rules map is read under its own lock.
        let index = self.next_frame.fetch_add(1, Ordering::Relaxed);
        let action = self
            .rules
            .lock()
            .get(&index)
            .copied()
            .unwrap_or(FaultAction::Pass);
        match action {
            FaultAction::Pass => {
                self.frames_passed.fetch_add(1, Ordering::Relaxed);
            }
            FaultAction::Delay(d) => {
                self.frames_delayed.fetch_add(1, Ordering::Relaxed);
                self.trace_fault("delay", d.as_nanos() as u64);
            }
            FaultAction::Drop => {
                self.frames_dropped.fetch_add(1, Ordering::Relaxed);
                self.trace_fault("drop", 0);
            }
            FaultAction::Sever => {
                // `sever_now` tags the fault into the trace stream itself
                // (first sever only, matching the latch).
                self.sever_now();
            }
        }
        action
    }

    /// Tag an injected fault into the tracing event stream (trace id 0) so
    /// a waterfall can show a delayed frame next to its inflated wire span.
    /// A no-op unless the tracer is armed.
    fn trace_fault(&self, kind: &str, dur_ns: u64) {
        let tracer = rossf_trace::tracer();
        if tracer.armed() {
            tracer.fault_event(
                &format!("netsim/{kind}@frame{}", self.frames_seen()),
                rossf_trace::Tier::Tcp,
                dur_ns,
            );
        }
    }

    /// Frames discarded by `Drop` rules so far.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped.load(Ordering::Relaxed)
    }

    /// Frames delayed by `Delay` rules so far.
    pub fn frames_delayed(&self) -> u64 {
        self.frames_delayed.load(Ordering::Relaxed)
    }

    /// Frames that crossed the link untouched (`Pass`). Transports that
    /// bypass the socket — e.g. a same-machine pointer handoff — still
    /// consult the injector per frame, so this counts deliveries on *any*
    /// path over the link.
    pub fn frames_passed(&self) -> u64 {
        self.frames_passed.load(Ordering::Relaxed)
    }

    /// Times the link has been severed.
    pub fn severs(&self) -> u64 {
        self.severs.load(Ordering::Relaxed)
    }

    /// Frame indices consumed so far (frames that reached the link).
    pub fn frames_seen(&self) -> u64 {
        // Relaxed: monotonic counter read for diagnostics only.
        self.next_frame.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_all_pass() {
        let f = FaultInjector::new();
        for _ in 0..10 {
            assert_eq!(f.next_frame_action(), FaultAction::Pass);
        }
        assert_eq!(f.frames_seen(), 10);
        assert_eq!(f.frames_dropped(), 0);
    }

    #[test]
    fn scheduled_rules_fire_at_their_index() {
        let f = FaultInjector::new();
        f.drop_frame(1);
        f.delay_frame(2, Duration::from_millis(5));
        assert_eq!(f.next_frame_action(), FaultAction::Pass);
        assert_eq!(f.next_frame_action(), FaultAction::Drop);
        assert_eq!(
            f.next_frame_action(),
            FaultAction::Delay(Duration::from_millis(5))
        );
        assert_eq!(f.next_frame_action(), FaultAction::Pass);
        assert_eq!(f.frames_dropped(), 1);
        assert_eq!(f.frames_delayed(), 1);
        assert_eq!(f.frames_passed(), 2);
    }

    #[test]
    fn sever_latches_until_heal() {
        let f = FaultInjector::new();
        f.sever_at_frame(1);
        assert_eq!(f.next_frame_action(), FaultAction::Pass);
        assert_eq!(f.next_frame_action(), FaultAction::Sever);
        assert!(f.is_severed());
        // Latched: further frames sever without consuming indices.
        assert_eq!(f.next_frame_action(), FaultAction::Sever);
        assert_eq!(f.frames_seen(), 2);
        assert_eq!(f.severs(), 1);
        f.heal();
        assert!(!f.is_severed());
        assert_eq!(f.next_frame_action(), FaultAction::Pass);
    }

    #[test]
    fn sever_now_counts_once() {
        let f = FaultInjector::new();
        f.sever_now();
        f.sever_now();
        assert_eq!(f.severs(), 1);
        f.heal();
        f.sever_now();
        assert_eq!(f.severs(), 2);
    }
}
