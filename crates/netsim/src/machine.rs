//! Simulated machine identities.

use core::fmt;

/// Identifies a simulated machine. Nodes carry a `MachineId`; traffic
/// between two different ids is shaped by the
/// [`LinkTable`](crate::LinkTable), traffic within one id is not (it is the
/// paper's intra-machine loopback case).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MachineId(pub u32);

impl MachineId {
    /// The default machine every node starts on ("machine A" in Fig. 15).
    pub const A: MachineId = MachineId(0);
    /// A second machine ("machine B" in Fig. 15).
    pub const B: MachineId = MachineId(1);
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "machine-{}", self.0)
    }
}

impl From<u32> for MachineId {
    fn from(v: u32) -> Self {
        MachineId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_constants() {
        assert_eq!(MachineId::A.to_string(), "machine-0");
        assert_eq!(MachineId::B, MachineId::from(1));
        assert_ne!(MachineId::A, MachineId::B);
        assert_eq!(MachineId::default(), MachineId::A);
    }
}
