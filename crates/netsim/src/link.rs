//! Link profiles and the per-pair link table.

use crate::fault::FaultInjector;
use crate::machine::MachineId;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Characteristics of a simulated network link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Link bandwidth in bits per second. `0` means unlimited (no pacing).
    pub bandwidth_bps: u64,
    /// One-way propagation latency added once per frame.
    pub latency: Duration,
}

impl LinkProfile {
    /// An unlimited link — writes pass through unshaped.
    pub const UNLIMITED: LinkProfile = LinkProfile {
        bandwidth_bps: 0,
        latency: Duration::ZERO,
    };

    /// The paper's testbed link: Intel 82599 10 GbE. 50 µs one-way latency
    /// is typical for a back-to-back datacenter link.
    pub fn ten_gbe() -> LinkProfile {
        LinkProfile {
            bandwidth_bps: 10_000_000_000,
            latency: Duration::from_micros(50),
        }
    }

    /// A legacy 100 Mb/s link — the regime the paper's introduction calls
    /// out where "the time cost [of serialization] is negligible compared
    /// to network transmission time".
    pub fn fast_ethernet() -> LinkProfile {
        LinkProfile {
            bandwidth_bps: 100_000_000,
            latency: Duration::from_micros(200),
        }
    }

    /// A 1 Gb/s link, for sweeping the crossover region.
    pub fn gigabit() -> LinkProfile {
        LinkProfile {
            bandwidth_bps: 1_000_000_000,
            latency: Duration::from_micros(100),
        }
    }

    /// `true` when the profile performs no shaping at all.
    pub fn is_unlimited(&self) -> bool {
        self.bandwidth_bps == 0 && self.latency.is_zero()
    }

    /// Time the link is occupied transmitting `bytes` (excluding latency).
    pub fn transmit_time(&self, bytes: usize) -> Duration {
        if self.bandwidth_bps == 0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.bandwidth_bps as f64)
    }
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile::UNLIMITED
    }
}

/// Table of link profiles between simulated machines.
///
/// Lookups are symmetric: the profile registered for `(a, b)` also applies
/// to `(b, a)`. Same-machine traffic is always [`LinkProfile::UNLIMITED`]
/// (loopback is not shaped — that is the intra-machine case measured
/// directly in Fig. 13).
#[derive(Debug, Default)]
pub struct LinkTable {
    links: RwLock<HashMap<(MachineId, MachineId), LinkProfile>>,
    /// Profile used for machine pairs with no explicit entry.
    default: RwLock<LinkProfile>,
    /// Fault injectors, per pair. Unlike profiles, faults may also be
    /// attached to same-machine (loopback) "links" so intra-machine
    /// transports can be exercised too.
    faults: RwLock<HashMap<(MachineId, MachineId), Arc<FaultInjector>>>,
}

fn pair_key(a: MachineId, b: MachineId) -> (MachineId, MachineId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl LinkTable {
    /// Empty table: all cross-machine traffic uses the default profile
    /// (initially unlimited).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the profile used for cross-machine pairs without an explicit
    /// entry.
    pub fn set_default(&self, profile: LinkProfile) {
        *self.default.write() = profile;
    }

    /// Register `profile` for traffic between `a` and `b` (both ways).
    pub fn connect(&self, a: MachineId, b: MachineId, profile: LinkProfile) {
        self.links.write().insert(pair_key(a, b), profile);
    }

    /// Profile governing traffic from `a` to `b`.
    pub fn profile(&self, a: MachineId, b: MachineId) -> LinkProfile {
        if a == b {
            return LinkProfile::UNLIMITED;
        }
        self.links
            .read()
            .get(&pair_key(a, b))
            .copied()
            .unwrap_or(*self.default.read())
    }

    /// Attach (or fetch the existing) fault injector for the `a`↔`b` link.
    /// The same injector governs both directions; `a == b` targets the
    /// loopback path.
    pub fn inject(&self, a: MachineId, b: MachineId) -> Arc<FaultInjector> {
        Arc::clone(
            self.faults
                .write()
                .entry(pair_key(a, b))
                .or_insert_with(|| Arc::new(FaultInjector::new())),
        )
    }

    /// The fault injector currently attached to the `a`↔`b` link, if any.
    /// Transports consult this once per connection.
    pub fn fault(&self, a: MachineId, b: MachineId) -> Option<Arc<FaultInjector>> {
        self.faults.read().get(&pair_key(a, b)).cloned()
    }

    /// Detach the fault injector from the `a`↔`b` link. Connections that
    /// already hold it keep applying its remaining schedule.
    pub fn clear_fault(&self, a: MachineId, b: MachineId) {
        self.faults.write().remove(&pair_key(a, b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_machine_is_unlimited() {
        let t = LinkTable::new();
        t.set_default(LinkProfile::ten_gbe());
        assert!(t.profile(MachineId::A, MachineId::A).is_unlimited());
    }

    #[test]
    fn cross_machine_uses_default_then_explicit() {
        let t = LinkTable::new();
        assert!(t.profile(MachineId::A, MachineId::B).is_unlimited());
        t.set_default(LinkProfile::gigabit());
        assert_eq!(
            t.profile(MachineId::A, MachineId::B),
            LinkProfile::gigabit()
        );
        t.connect(MachineId::A, MachineId::B, LinkProfile::ten_gbe());
        assert_eq!(
            t.profile(MachineId::B, MachineId::A),
            LinkProfile::ten_gbe(),
            "lookups are symmetric"
        );
    }

    #[test]
    fn transmit_time_scales_linearly() {
        let p = LinkProfile::ten_gbe();
        let t1 = p.transmit_time(1_000_000);
        let t6 = p.transmit_time(6_000_000);
        // 1 MB at 10 Gb/s = 0.8 ms.
        assert!((t1.as_secs_f64() - 0.0008).abs() < 1e-9);
        assert!((t6.as_secs_f64() / t1.as_secs_f64() - 6.0).abs() < 1e-9);
        assert_eq!(
            LinkProfile::UNLIMITED.transmit_time(1 << 30),
            Duration::ZERO
        );
    }

    #[test]
    fn fault_injectors_are_shared_and_symmetric() {
        let t = LinkTable::new();
        assert!(t.fault(MachineId::A, MachineId::B).is_none());
        let f = t.inject(MachineId::A, MachineId::B);
        f.sever_now();
        // Same injector both ways and on repeat lookups.
        assert!(t.fault(MachineId::B, MachineId::A).unwrap().is_severed());
        assert!(Arc::ptr_eq(&t.inject(MachineId::A, MachineId::B), &f));
        // Loopback faults are allowed even though loopback is never shaped.
        let lo = t.inject(MachineId::A, MachineId::A);
        assert!(!Arc::ptr_eq(&lo, &f));
        t.clear_fault(MachineId::A, MachineId::B);
        assert!(t.fault(MachineId::A, MachineId::B).is_none());
        // Detaching doesn't invalidate held handles.
        assert!(f.is_severed());
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let sizes = 6_000_000usize;
        let fe = LinkProfile::fast_ethernet().transmit_time(sizes);
        let ge = LinkProfile::gigabit().transmit_time(sizes);
        let tg = LinkProfile::ten_gbe().transmit_time(sizes);
        assert!(fe > ge && ge > tg);
    }
}
