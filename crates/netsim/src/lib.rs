//! # rossf-netsim — link simulation for the inter-machine experiments
//!
//! The paper's inter-machine evaluation (§5.2) runs on two machines joined
//! by an Intel 82599 10 Gigabit Ethernet controller. This reproduction runs
//! on one host, so the "wire" is simulated: every byte stream crossing a
//! simulated machine boundary is shaped to a configurable bandwidth and
//! one-way latency.
//!
//! The model is deliberately simple — a busy-until pacing model:
//!
//! * transmitting `n` bytes occupies the link for `n * 8 / bandwidth`
//!   seconds, tracked by a per-link *busy-until* instant so back-to-back
//!   writes queue behind each other like frames on a NIC;
//! * each frame additionally pays the propagation `latency` once.
//!
//! What matters for reproducing Fig. 16 is the *ratio* between
//! serialization time and wire time, and a paced 10 Gb/s stream reproduces
//! exactly that (see DESIGN.md, substitutions table).
//!
//! ```
//! use rossf_netsim::{LinkProfile, ShapedWriter};
//! use std::io::Write;
//!
//! let profile = LinkProfile::ten_gbe();
//! let mut wire = ShapedWriter::new(Vec::new(), profile);
//! wire.write_all(&[0u8; 1500]).unwrap();
//! assert_eq!(wire.get_ref().len(), 1500);
//! ```

#![deny(missing_docs)]

mod fault;
mod link;
mod machine;
mod shaper;

pub use fault::{FaultAction, FaultInjector};
pub use link::{LinkProfile, LinkTable};
pub use machine::MachineId;
pub use shaper::{ShapedWriter, Shaper};
