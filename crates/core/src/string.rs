//! `sfm::string` — the SFM skeleton of a string field (§4.1, §4.3.3).

use crate::alert::{self, AlertKind};
use crate::align_up;
use crate::error::SfmError;
use crate::manager::mm;
use crate::message::{SfmPod, SfmValidate};
use core::fmt;

/// The 8-byte skeleton of a ROS `string` field.
///
/// Layout (paper Fig. 7): a `u32` *stored length* — content bytes **plus the
/// terminating NUL plus padding to a 4-byte multiple** (`"rgb8"` stores 8) —
/// followed by a `u32` offset from the address of the offset word itself to
/// the content bytes. `{0, 0}` is the unassigned/empty state.
///
/// The API mirrors the read-only and one-shot-write surface of
/// `std::string`; growing mutators are deliberately absent (*No Modifier
/// Assumption*).
///
/// An `SfmString` is only meaningful inside a managed message allocation
/// ([`SfmBox`](crate::SfmBox) / [`SfmShared`](crate::SfmShared)); assignment
/// asks the global message manager for content space by its own address.
#[repr(C)]
pub struct SfmString {
    stored: u32,
    off: u32,
}

// SAFETY: two u32s, repr(C), all-zero is the valid empty state, no drop.
unsafe impl SfmPod for SfmString {}

impl SfmString {
    /// Address of the offset word — the base all offsets are relative to.
    #[inline]
    fn off_addr(&self) -> usize {
        core::ptr::addr_of!(self.off) as usize
    }

    /// Absolute address of the content, or `None` when unassigned.
    #[inline]
    fn content_addr(&self) -> Option<usize> {
        (self.off != 0).then(|| self.off_addr() + self.off as usize)
    }

    /// `true` until the first assignment.
    #[inline]
    pub fn is_unassigned(&self) -> bool {
        self.stored == 0 && self.off == 0
    }

    /// The raw stored size: content + NUL + padding (the paper's "length of
    /// *encoding* = 8" for `"rgb8"`).
    #[inline]
    pub fn stored_len(&self) -> usize {
        self.stored as usize
    }

    /// Content length in bytes, `strlen`-style (NUL and padding excluded),
    /// mirroring `std::string::length()`.
    pub fn len(&self) -> usize {
        self.as_bytes().len()
    }

    /// `true` when the content is empty (including the unassigned state).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Content bytes up to (excluding) the terminating NUL.
    pub fn as_bytes(&self) -> &[u8] {
        let Some(addr) = self.content_addr() else {
            return &[];
        };
        let stored = self.stored as usize;
        // SAFETY: the region [addr, addr+stored) was reserved through the
        // message manager inside this message's allocation at assignment
        // time (or validated by `SfmValidate` for received frames), and is
        // never mutated after the one-shot write.
        let raw = unsafe { core::slice::from_raw_parts(addr as *const u8, stored) };
        let nul = raw.iter().position(|&b| b == 0).unwrap_or(stored);
        &raw[..nul]
    }

    /// Content as `&str`.
    ///
    /// # Panics
    ///
    /// Panics if the stored bytes are not valid UTF-8 (possible only for a
    /// corrupt or foreign frame); use [`SfmString::try_as_str`] to handle
    /// that case.
    pub fn as_str(&self) -> &str {
        self.try_as_str()
            .expect("SfmString content is not valid UTF-8")
    }

    /// Content as `&str`, or `None` if not valid UTF-8.
    pub fn try_as_str(&self) -> Option<&str> {
        core::str::from_utf8(self.as_bytes()).ok()
    }

    /// One-shot assignment (the `operator=` of the paper's `sfm::string`).
    ///
    /// The first assignment expands the whole message by
    /// `align_up(s.len() + 1, 4)` bytes and writes the content + NUL there.
    /// A second assignment violates the *One-Shot String Assignment
    /// Assumption*: an alert is raised through the active
    /// [`AlertPolicy`](crate::AlertPolicy); under `Warn`/`Count` the
    /// assignment still succeeds by appending a fresh region (leaking the
    /// old one inside the message — the memory waste the paper warns about).
    ///
    /// # Panics
    ///
    /// Panics if this string is not inside a managed message, if the
    /// message's `max_size` is exceeded, or (per policy) on reassignment.
    pub fn assign(&mut self, s: impl AsRef<str>) {
        if let Err(e) = self.try_assign(s) {
            panic!("SfmString::assign failed: {e}");
        }
    }

    /// Fallible variant of [`SfmString::assign`].
    ///
    /// # Errors
    ///
    /// * [`SfmError::UnmanagedAddress`] — not inside a managed message.
    /// * [`SfmError::CapacityExceeded`] — `max_size` would be exceeded.
    pub fn try_assign(&mut self, s: impl AsRef<str>) -> Result<(), SfmError> {
        let s = s.as_ref();
        let self_addr = self as *const _ as usize;
        if !self.is_unassigned() {
            let type_name = mm().info(self_addr).map_or("<unmanaged>", |i| i.type_name);
            alert::raise(AlertKind::OneShotStringAssignment, type_name);
        }
        let stored = align_up(s.len() + 1, 4);
        let addr = mm().expand(self_addr, stored, 1)?;
        // SAFETY: [addr, addr+stored) was just reserved for us inside the
        // allocation; regions are append-only and start zeroed, and we hold
        // `&mut self` on the owning message.
        unsafe {
            core::ptr::copy_nonoverlapping(s.as_ptr(), addr as *mut u8, s.len());
            // Explicit NUL + zero padding (regions start zeroed, but a
            // reassignment under Warn/Count must not inherit stale bytes).
            core::ptr::write_bytes((addr + s.len()) as *mut u8, 0, stored - s.len());
        }
        self.stored = stored as u32;
        self.off = (addr - self.off_addr()) as u32;
        Ok(())
    }
}

impl SfmValidate for SfmString {
    fn validate_in(&self, base: usize, whole_len: usize) -> Result<(), SfmError> {
        if self.off == 0 {
            return Ok(());
        }
        let start = self.content_addr().expect("off != 0").wrapping_sub(base);
        let end = start.wrapping_add(self.stored as usize);
        if start > whole_len || end > whole_len || end < start {
            return Err(SfmError::CorruptOffset {
                offset: end,
                len: whole_len,
            });
        }
        Ok(())
    }
}

impl fmt::Display for SfmString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.try_as_str().unwrap_or("<invalid utf-8>"))
    }
}

impl fmt::Debug for SfmString {
    // Debug shows the logical value, not the skeleton words.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.try_as_str().unwrap_or("<invalid utf-8>"))
    }
}

impl PartialEq<str> for SfmString {
    fn eq(&self, other: &str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq<&str> for SfmString {
    fn eq(&self, other: &&str) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

impl PartialEq for SfmString {
    fn eq(&self, other: &Self) -> bool {
        self.as_bytes() == other.as_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SfmBox, SfmMessage};

    #[repr(C)]
    #[derive(Debug)]
    struct OneString {
        s: SfmString,
        t: SfmString,
    }
    unsafe impl SfmPod for OneString {}
    impl SfmValidate for OneString {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.s.validate_in(base, len)?;
            self.t.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for OneString {
        fn type_name() -> &'static str {
            "test/OneString"
        }
        fn max_size() -> usize {
            256
        }
    }

    #[test]
    fn unassigned_reads_as_empty() {
        let msg = SfmBox::<OneString>::new();
        assert!(msg.s.is_unassigned());
        assert_eq!(msg.s.len(), 0);
        assert!(msg.s.is_empty());
        assert_eq!(msg.s.as_str(), "");
        assert_eq!(msg.s.as_bytes(), b"");
    }

    #[test]
    fn assign_and_read_back() {
        let mut msg = SfmBox::<OneString>::new();
        msg.s.assign("rgb8");
        assert_eq!(msg.s.as_str(), "rgb8");
        assert_eq!(msg.s.len(), 4);
        // Paper Fig. 7: "rgb8" stores 8 bytes (4 content + NUL + 3 pad).
        assert_eq!(msg.s.stored_len(), 8);
        assert!(msg.s == "rgb8");
        assert!(msg.s != "rgb");
    }

    #[test]
    fn stored_len_is_multiple_of_four() {
        for (input, expect) in [("", 4), ("a", 4), ("abc", 4), ("abcd", 8), ("abcdefg", 8)] {
            let mut msg = SfmBox::<OneString>::new();
            msg.s.assign(input);
            assert_eq!(msg.s.stored_len(), expect, "input {input:?}");
            assert_eq!(msg.s.as_str(), input);
        }
    }

    #[test]
    fn two_strings_share_the_message_tail() {
        let mut msg = SfmBox::<OneString>::new();
        msg.s.assign("hello");
        msg.t.assign("world!");
        assert_eq!(msg.s.as_str(), "hello");
        assert_eq!(msg.t.as_str(), "world!");
    }

    #[test]
    fn reassignment_raises_alert() {
        let _g = crate::alert::test_guard();
        let prev = crate::set_alert_policy(crate::AlertPolicy::Count);
        crate::reset_alert_counts();
        let mut msg = SfmBox::<OneString>::new();
        msg.s.assign("one");
        msg.s.assign("two"); // violates One-Shot String Assignment
        assert_eq!(crate::alert_counts().0, 1);
        // Under a continuing policy the new value is visible.
        assert_eq!(msg.s.as_str(), "two");
        crate::set_alert_policy(prev);
        crate::reset_alert_counts();
    }

    #[test]
    fn unmanaged_assignment_errors() {
        // Not inside a SfmBox — the condition the ROS-SF Converter prevents.
        let mut loose = OneString {
            s: SfmString { stored: 0, off: 0 },
            t: SfmString { stored: 0, off: 0 },
        };
        let err = loose.s.try_assign("x").unwrap_err();
        assert!(matches!(err, SfmError::UnmanagedAddress { .. }));
    }

    #[test]
    fn capacity_exhaustion_errors() {
        let mut msg = SfmBox::<OneString>::new();
        let long = "x".repeat(1024); // > max_size 256
        let err = msg.s.try_assign(&long).unwrap_err();
        assert!(matches!(err, SfmError::CapacityExceeded { .. }));
        assert!(msg.s.is_unassigned());
    }

    #[test]
    fn display_and_debug() {
        let mut msg = SfmBox::<OneString>::new();
        msg.s.assign("mono8");
        assert_eq!(format!("{}", msg.s), "mono8");
        assert_eq!(format!("{:?}", msg.s), "\"mono8\"");
    }

    #[test]
    fn eq_between_sfm_strings() {
        let mut a = SfmBox::<OneString>::new();
        let mut b = SfmBox::<OneString>::new();
        a.s.assign("same");
        b.s.assign("same");
        b.t.assign("diff");
        assert!(a.s == b.s);
        assert!(!(a.s == b.t));
    }
}
