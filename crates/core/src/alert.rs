//! Alerts for violations of the SFM usage assumptions (§4.3.3, §5.4).
//!
//! The paper enforces three assumptions on code that uses serialization-free
//! messages. The *No Modifier* assumption is enforced at compile time (the
//! modifier methods do not exist). The two *one-shot* assumptions are
//! enforced at run time by "raising an alert"; this module implements the
//! alert channel with a process-wide, configurable policy so that tests and
//! the applicability study can observe violations without aborting.

use core::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Which usage assumption was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertKind {
    /// A [`SfmString`](crate::SfmString) was assigned more than once
    /// (Assumption 1, "One-Shot String Assignment").
    OneShotStringAssignment,
    /// A [`SfmVec`](crate::SfmVec) was resized more than once
    /// (Assumption 2, "One-Shot Vector Resizing").
    OneShotVectorResizing,
    /// The lifecycle sanitizer saw a release for a record that was already
    /// released (use of a stale handle, or a manager bookkeeping bug).
    LifecycleDoubleRelease,
    /// The lifecycle sanitizer saw an `expand` targeting a message that was
    /// already released — content would be appended to freed memory.
    LifecycleExpandAfterRelease,
    /// The lifecycle sanitizer saw a refcount that cannot be right for the
    /// operation (e.g. a release while the manager held the only reference).
    LifecycleRefcountAnomaly,
    /// The lifecycle sanitizer found `Allocated` records that were never
    /// published or released (leak check, typically at shutdown).
    LifecycleLeak,
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertKind::OneShotStringAssignment => {
                write!(f, "string reassigned (One-Shot String Assignment)")
            }
            AlertKind::OneShotVectorResizing => {
                write!(f, "vector resized twice (One-Shot Vector Resizing)")
            }
            AlertKind::LifecycleDoubleRelease => {
                write!(f, "message released twice (lifecycle sanitizer)")
            }
            AlertKind::LifecycleExpandAfterRelease => {
                write!(f, "expand on a released message (lifecycle sanitizer)")
            }
            AlertKind::LifecycleRefcountAnomaly => {
                write!(f, "implausible buffer refcount (lifecycle sanitizer)")
            }
            AlertKind::LifecycleLeak => {
                write!(
                    f,
                    "allocated message never published or released (lifecycle sanitizer)"
                )
            }
        }
    }
}

/// What to do when an assumption is violated.
///
/// The paper "raises an alert" and expects the developer to rewrite the code
/// (§5.4 shows the rewrites). Three behaviours are useful in practice:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlertPolicy {
    /// Panic with a diagnostic (development default — loud and early).
    #[default]
    Panic,
    /// Print to stderr, count, and *continue*: the operation is still
    /// performed by appending fresh content space, leaking the old region
    /// inside the message (correct but wasteful — exactly the trade-off the
    /// paper describes for string reassignment).
    Warn,
    /// Silently count and continue. Used by the applicability harness to
    /// census violations over a whole run.
    Count,
}

static POLICY: AtomicU8 = AtomicU8::new(0); // 0=Panic 1=Warn 2=Count
static STRING_ALERTS: AtomicU64 = AtomicU64::new(0);
static VECTOR_ALERTS: AtomicU64 = AtomicU64::new(0);
static LIFECYCLE_ALERTS: AtomicU64 = AtomicU64::new(0);

/// Set the process-wide alert policy. Returns the previous policy.
pub fn set_alert_policy(policy: AlertPolicy) -> AlertPolicy {
    let raw = match policy {
        AlertPolicy::Panic => 0,
        AlertPolicy::Warn => 1,
        AlertPolicy::Count => 2,
    };
    // Relaxed: the policy byte carries no payload — readers only branch
    // on its value, and tests serialize via `alert_test_lock`.
    match POLICY.swap(raw, Ordering::Relaxed) {
        0 => AlertPolicy::Panic,
        1 => AlertPolicy::Warn,
        _ => AlertPolicy::Count,
    }
}

fn current_policy() -> AlertPolicy {
    // Relaxed: see `set_alert_policy` — the byte is self-contained.
    match POLICY.load(Ordering::Relaxed) {
        0 => AlertPolicy::Panic,
        1 => AlertPolicy::Warn,
        _ => AlertPolicy::Count,
    }
}

/// Numbers of alerts raised since the last [`reset_alert_counts`], as
/// `(string_reassignments, vector_multi_resizes)`.
pub fn alert_counts() -> (u64, u64) {
    // Relaxed: independent monotonic counters; no ordering is implied
    // between them and no other data is published through them.
    (
        STRING_ALERTS.load(Ordering::Relaxed),
        VECTOR_ALERTS.load(Ordering::Relaxed),
    )
}

/// Number of lifecycle-sanitizer alerts (all four lifecycle kinds combined)
/// raised since the last [`reset_alert_counts`]. Per-kind counts live on the
/// sanitizer report ([`mm().sanitizer_report()`](crate::MessageManager::sanitizer_report)).
pub fn lifecycle_alert_count() -> u64 {
    // Relaxed: standalone counter, same reasoning as `alert_counts`.
    LIFECYCLE_ALERTS.load(Ordering::Relaxed)
}

/// Reset all alert counters to zero.
pub fn reset_alert_counts() {
    // Relaxed: counter resets race benignly with concurrent raises;
    // tests holding `alert_test_lock` are the only precise observers.
    STRING_ALERTS.store(0, Ordering::Relaxed);
    VECTOR_ALERTS.store(0, Ordering::Relaxed);
    LIFECYCLE_ALERTS.store(0, Ordering::Relaxed);
}

/// Raise an alert for `kind` on behalf of message type `type_name`.
///
/// # Panics
///
/// Panics when the active policy is [`AlertPolicy::Panic`].
pub(crate) fn raise(kind: AlertKind, type_name: &str) {
    match kind {
        AlertKind::OneShotStringAssignment => {
            // Relaxed: monotonic tally; aggregation happens after the
            // run, never concurrently with a required ordering.
            STRING_ALERTS.fetch_add(1, Ordering::Relaxed);
        }
        AlertKind::OneShotVectorResizing => {
            // Relaxed: same reasoning as the string counter above.
            VECTOR_ALERTS.fetch_add(1, Ordering::Relaxed);
        }
        AlertKind::LifecycleDoubleRelease
        | AlertKind::LifecycleExpandAfterRelease
        | AlertKind::LifecycleRefcountAnomaly
        | AlertKind::LifecycleLeak => {
            // Relaxed: same reasoning as the string counter above.
            LIFECYCLE_ALERTS.fetch_add(1, Ordering::Relaxed);
        }
    }
    match current_policy() {
        AlertPolicy::Panic => panic!("ROS-SF alert in `{type_name}`: {kind}"),
        AlertPolicy::Warn => eprintln!("ROS-SF alert in `{type_name}`: {kind}"),
        AlertPolicy::Count => {}
    }
}

/// Serializes tests that mutate the process-global alert policy/counters.
#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    LOCK.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: policy is process-global; tests here only exercise the counting
    // policy to stay independent of test ordering.
    #[test]
    fn counting_policy_counts() {
        let _g = test_guard();
        let prev = set_alert_policy(AlertPolicy::Count);
        reset_alert_counts();
        raise(AlertKind::OneShotStringAssignment, "t/T");
        raise(AlertKind::OneShotVectorResizing, "t/T");
        raise(AlertKind::OneShotVectorResizing, "t/T");
        let (s, v) = alert_counts();
        assert_eq!((s, v), (1, 2));
        reset_alert_counts();
        assert_eq!(alert_counts(), (0, 0));
        set_alert_policy(prev);
    }

    #[test]
    fn swap_returns_previous() {
        let _g = test_guard();
        let prev = set_alert_policy(AlertPolicy::Warn);
        assert_eq!(set_alert_policy(prev), AlertPolicy::Warn);
    }

    #[test]
    fn kinds_display() {
        assert!(AlertKind::OneShotStringAssignment
            .to_string()
            .contains("One-Shot"));
        assert!(AlertKind::OneShotVectorResizing
            .to_string()
            .contains("resized"));
    }
}
