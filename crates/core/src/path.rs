//! First-class field paths into an SFM skeleton.
//!
//! A [`FieldPath`] names one field of a message by the same dotted/indexed
//! syntax the verifier prints in its diagnostics (`points[2].name`): field
//! segments descend into nested skeleton structs, index segments descend
//! into fixed arrays. [`MessageSchema::resolve_path`] turns a path into a
//! [`FieldRange`] — the field's inline byte range in the skeleton plus its
//! [`TypeDesc`] — which is what the projection resolver
//! ([`Projection`](crate::Projection)) and tooling (`sfm_verify
//! --dump-schema`) consume.
//!
//! The verifier's walker builds its diagnostic paths through the same
//! [`child_path`]/[`index_path`] helpers, so a path printed by a
//! [`VerifyError`](crate::VerifyError) parses back into the `FieldPath`
//! that resolves to the failing field (indices into dynamic `SfmVec`
//! content parse but resolve to [`PathError::DynamicIndex`] — their
//! offsets are runtime values, not schema constants).

use crate::verify::{MessageSchema, TypeDesc};
use core::fmt;

/// One step of a [`FieldPath`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathSegment {
    /// Descend into a named field of a struct skeleton.
    Field(String),
    /// Descend into one element of a fixed array (or, in verifier
    /// diagnostics, of a dynamic vector).
    Index(usize),
}

/// A parsed path from a message root to one of its fields, e.g.
/// `header.stamp` or `k[4]`.
///
/// ```
/// use rossf_sfm::FieldPath;
/// let p: FieldPath = "points[2].name".parse().unwrap();
/// assert_eq!(p.to_string(), "points[2].name");
/// assert_eq!(p.segments().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FieldPath {
    segments: Vec<PathSegment>,
}

impl FieldPath {
    /// Parse the dotted/indexed syntax (`a.b[3].c`).
    ///
    /// # Errors
    ///
    /// [`PathError::Parse`] on empty input, malformed brackets, or segment
    /// names that are not identifiers.
    pub fn parse(spec: &str) -> Result<FieldPath, PathError> {
        let malformed = |reason: &str| PathError::Parse {
            spec: spec.to_string(),
            reason: reason.to_string(),
        };
        let bytes = spec.as_bytes();
        let mut segments = Vec::new();
        let mut i = 0usize;
        let mut expect_name = true;
        while i < bytes.len() {
            match bytes[i] {
                b'[' => {
                    if expect_name || segments.is_empty() {
                        return Err(malformed("index before any field name"));
                    }
                    let close = spec[i..]
                        .find(']')
                        .map(|j| i + j)
                        .ok_or_else(|| malformed("unterminated `[`"))?;
                    let index: usize = spec[i + 1..close]
                        .parse()
                        .map_err(|_| malformed("index is not a number"))?;
                    segments.push(PathSegment::Index(index));
                    i = close + 1;
                }
                b'.' => {
                    if expect_name {
                        return Err(malformed("empty field name"));
                    }
                    expect_name = true;
                    i += 1;
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    if !expect_name {
                        return Err(malformed("field name not separated by `.`"));
                    }
                    let start = i;
                    while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                    {
                        i += 1;
                    }
                    segments.push(PathSegment::Field(spec[start..i].to_string()));
                    expect_name = false;
                }
                _ => return Err(malformed("unexpected character")),
            }
        }
        if segments.is_empty() {
            return Err(malformed("empty path"));
        }
        if expect_name {
            return Err(malformed("trailing `.`"));
        }
        Ok(FieldPath { segments })
    }

    /// The parsed segments, root first.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }
}

impl fmt::Display for FieldPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            match seg {
                PathSegment::Field(name) if i == 0 => write!(f, "{name}")?,
                PathSegment::Field(name) => write!(f, ".{name}")?,
                PathSegment::Index(idx) => write!(f, "[{idx}]")?,
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for FieldPath {
    type Err = PathError;
    fn from_str(s: &str) -> Result<Self, PathError> {
        FieldPath::parse(s)
    }
}

/// Why a path could not be parsed or resolved against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// No paths were given where at least one is required.
    Empty,
    /// The spec string does not parse as a field path.
    Parse {
        /// The offending input.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A named field does not exist in the struct reached so far.
    UnknownField {
        /// Path of the struct that was searched (empty = message root).
        path: String,
        /// The name that was not found.
        name: String,
    },
    /// A field segment was applied to a non-struct field.
    NotAStruct {
        /// Path of the non-struct field.
        path: String,
    },
    /// An index segment was applied to a field that is neither a fixed
    /// array nor a vector.
    NotIndexable {
        /// Path of the non-indexable field.
        path: String,
    },
    /// An index segment was applied to a dynamic `SfmVec`: element offsets
    /// are runtime values carried by each frame, not schema constants.
    DynamicIndex {
        /// Path of the vector field.
        path: String,
    },
    /// An index segment exceeds a fixed array's length.
    IndexOutOfRange {
        /// Path of the array field.
        path: String,
        /// The requested index.
        index: usize,
        /// The array's length.
        len: usize,
    },
    /// The field cannot be carried by a projected sub-frame (a vector whose
    /// elements hold their own `{len, offset}` pairs cannot be relocated
    /// without rewriting them).
    Unprojectable {
        /// Path of the unprojectable field.
        path: String,
    },
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "no field paths given"),
            PathError::Parse { spec, reason } => {
                write!(f, "cannot parse field path `{spec}`: {reason}")
            }
            PathError::UnknownField { path, name } if path.is_empty() => {
                write!(f, "no field `{name}` at the message root")
            }
            PathError::UnknownField { path, name } => {
                write!(f, "no field `{name}` in `{path}`")
            }
            PathError::NotAStruct { path } => {
                write!(f, "`{path}` is not a nested message")
            }
            PathError::NotIndexable { path } => {
                write!(f, "`{path}` is not an array or vector")
            }
            PathError::DynamicIndex { path } => {
                write!(
                    f,
                    "`{path}` is a dynamic vector; element offsets are not schema constants"
                )
            }
            PathError::IndexOutOfRange { path, index, len } => {
                write!(f, "index {index} exceeds the length {len} of `{path}`")
            }
            PathError::Unprojectable { path } => {
                write!(
                    f,
                    "`{path}` holds nested `{{len, offset}}` pairs and cannot be \
                     relocated into a projected sub-frame"
                )
            }
        }
    }
}

impl std::error::Error for PathError {}

/// The resolution of a [`FieldPath`]: where the field's inline bytes live
/// in the skeleton, and what type they are.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldRange {
    /// Byte offset of the field inside the root skeleton.
    pub offset: usize,
    /// Inline size of the field in bytes (8 for strings and vectors — the
    /// `{len, offset}` pair; content bytes live outside the skeleton).
    pub len: usize,
    /// The field's resolved type.
    pub ty: TypeDesc,
}

impl MessageSchema {
    /// Resolve `path` against this schema to the field's skeleton range.
    ///
    /// # Errors
    ///
    /// Any [`PathError`] resolution failure; parse errors cannot occur
    /// (the path is already parsed).
    pub fn resolve_path(&self, path: &FieldPath) -> Result<FieldRange, PathError> {
        let mut segs = path.segments().iter();
        let first = segs.next().ok_or(PathError::Empty)?;
        let PathSegment::Field(name) = first else {
            return Err(PathError::NotIndexable {
                path: String::new(),
            });
        };
        let field = self
            .root
            .fields
            .iter()
            .find(|f| f.name == *name)
            .ok_or_else(|| PathError::UnknownField {
                path: String::new(),
                name: name.clone(),
            })?;
        let mut at = field.offset;
        let mut ty = &field.ty;
        let mut walked = name.clone();
        for seg in segs {
            match (seg, ty) {
                (PathSegment::Field(name), TypeDesc::Struct(desc)) => {
                    let f = desc
                        .fields
                        .iter()
                        .find(|f| f.name == *name)
                        .ok_or_else(|| PathError::UnknownField {
                            path: walked.clone(),
                            name: name.clone(),
                        })?;
                    at += f.offset;
                    ty = &f.ty;
                    walked = child_path(&walked, name);
                }
                (PathSegment::Field(_), _) => return Err(PathError::NotAStruct { path: walked }),
                (PathSegment::Index(i), TypeDesc::Array { elem, len }) => {
                    if *i >= *len {
                        return Err(PathError::IndexOutOfRange {
                            path: walked,
                            index: *i,
                            len: *len,
                        });
                    }
                    at += i * elem.size();
                    ty = elem;
                    walked = index_path(&walked, *i);
                }
                (PathSegment::Index(_), TypeDesc::Vec(_)) => {
                    return Err(PathError::DynamicIndex { path: walked })
                }
                (PathSegment::Index(_), _) => return Err(PathError::NotIndexable { path: walked }),
            }
        }
        Ok(FieldRange {
            offset: at,
            len: ty.size(),
            ty: ty.clone(),
        })
    }

    /// Every path of this schema that [`MessageSchema::resolve_path`]
    /// resolves (leaves of the inline layout plus every enclosing struct),
    /// in layout order — what `sfm_verify --dump-schema` prints.
    pub fn resolvable_paths(&self) -> Vec<FieldPath> {
        fn walk(prefix: &str, ty: &TypeDesc, out: &mut Vec<FieldPath>) {
            match ty {
                TypeDesc::Struct(desc) => {
                    for f in &desc.fields {
                        let p = child_path(prefix, &f.name);
                        out.push(FieldPath::parse(&p).expect("generated path parses"));
                        walk(&p, &f.ty, out);
                    }
                }
                // One representative element is enough to show the shape.
                TypeDesc::Array { elem, len }
                    if *len > 0 && matches!(**elem, TypeDesc::Struct(_)) =>
                {
                    walk(&index_path(prefix, 0), elem, out);
                }
                _ => {}
            }
        }
        let mut out = Vec::new();
        walk("", &TypeDesc::Struct(self.root.clone()), &mut out);
        out
    }
}

/// Append a field name to a parent path (`""` + `header` → `header`,
/// `header` + `stamp` → `header.stamp`) — the verifier's diagnostics and
/// the projection resolver build paths through this same helper so the two
/// syntaxes can never drift apart.
pub fn child_path(parent: &str, name: &str) -> String {
    if parent.is_empty() {
        name.to_string()
    } else {
        format!("{parent}.{name}")
    }
}

/// Append an element index to a parent path (`points` + 2 → `points[2]`).
pub fn index_path(parent: &str, index: usize) -> String {
    format!("{parent}[{index}]")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for spec in [
            "header",
            "header.stamp",
            "fields[1].name",
            "k[4]",
            "a.b[0].c[12]",
        ] {
            let p = FieldPath::parse(spec).unwrap();
            assert_eq!(p.to_string(), spec, "{spec}");
            let again: FieldPath = p.to_string().parse().unwrap();
            assert_eq!(again, p);
        }
    }

    #[test]
    fn malformed_paths_rejected() {
        for bad in [
            "", ".", "a.", ".a", "a..b", "[0]", "a[", "a[x]", "a[0", "a b", "a.[0]",
        ] {
            assert!(
                matches!(FieldPath::parse(bad), Err(PathError::Parse { .. })),
                "{bad:?} should not parse"
            );
        }
    }

    #[test]
    fn path_helpers_match_parser() {
        let p = index_path(&child_path(&child_path("", "a"), "b"), 3);
        assert_eq!(p, "a.b[3]");
        FieldPath::parse(&p).unwrap();
    }
}
