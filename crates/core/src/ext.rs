//! Extensions discussed in the paper's §4.4.2 ("Other Data Structures").
//!
//! ROS's IDL has no `optional` or `map`, so the main SFM format does not
//! need them — but the paper sketches how they *would* be encoded, and
//! this module implements those sketches:
//!
//! * [`SfmOptional`] — "an optional field with other types could be
//!   treated as a vector with its upper bound set as 1": an 8-byte
//!   skeleton whose count is 0 or 1.
//! * [`SfmMap`] — "our SFM format can treat it as a vector of key-value
//!   pairs, which is also the solution used by ROS": a vector of
//!   [`SfmPair`] skeletons with linear-scan lookup.

use crate::error::SfmError;
use crate::message::{SfmPod, SfmValidate};
use crate::vec::SfmVec;

/// An optional field: a vector constrained to at most one element
/// (§4.4.2). `{0, 0}` is the absent state; setting it is one-shot like
/// every SFM assignment.
#[repr(C)]
pub struct SfmOptional<T: SfmPod> {
    inner: SfmVec<T>,
}

// SAFETY: transparent over SfmVec, which is pod.
unsafe impl<T: SfmPod> SfmPod for SfmOptional<T> {}

impl<T: SfmPod> SfmOptional<T> {
    /// `true` when no value has been set.
    pub fn is_none(&self) -> bool {
        self.inner.is_empty()
    }

    /// `true` when a value is present.
    pub fn is_some(&self) -> bool {
        !self.is_none()
    }

    /// The value, if present.
    pub fn get(&self) -> Option<&T> {
        self.inner.get(0)
    }

    /// Mutable access to the value, if present.
    pub fn get_mut(&mut self) -> Option<&mut T> {
        self.inner.get_mut(0)
    }

    /// One-shot: materialize the value slot (zero-initialized) and return
    /// it for filling. Counts as the single permitted sizing.
    ///
    /// # Panics
    ///
    /// As [`SfmVec::resize`] (unmanaged address, capacity, or — per the
    /// active alert policy — a second call).
    pub fn insert_default(&mut self) -> &mut T {
        self.inner.resize(1);
        self.inner.get_mut(0).expect("just sized to 1")
    }

    /// One-shot: set the value.
    ///
    /// # Panics
    ///
    /// As [`SfmOptional::insert_default`].
    pub fn set(&mut self, value: T)
    where
        T: Copy,
    {
        *self.insert_default() = value;
    }
}

impl<T: SfmPod + SfmValidate> SfmValidate for SfmOptional<T> {
    fn validate_in(&self, base: usize, whole_len: usize) -> Result<(), SfmError> {
        self.inner.validate_in(base, whole_len)?;
        if self.inner.len() > 1 {
            // An "optional" carrying more than one element is corrupt.
            return Err(SfmError::CorruptOffset {
                offset: self.inner.len(),
                len: whole_len,
            });
        }
        Ok(())
    }
}

impl<T: SfmPod + core::fmt::Debug> core::fmt::Debug for SfmOptional<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.get() {
            Some(v) => f.debug_tuple("Some").field(v).finish(),
            None => f.write_str("None"),
        }
    }
}

/// One key-value entry of an [`SfmMap`].
#[repr(C)]
#[derive(Debug)]
pub struct SfmPair<K: SfmPod, V: SfmPod> {
    /// The key.
    pub key: K,
    /// The value.
    pub value: V,
}

// SAFETY: repr(C) pair of pods.
unsafe impl<K: SfmPod, V: SfmPod> SfmPod for SfmPair<K, V> {}

impl<K: SfmPod + SfmValidate, V: SfmPod + SfmValidate> SfmValidate for SfmPair<K, V> {
    fn validate_in(&self, base: usize, whole_len: usize) -> Result<(), SfmError> {
        self.key.validate_in(base, whole_len)?;
        self.value.validate_in(base, whole_len)
    }
}

/// A key-value map encoded as a vector of pairs (§4.4.2). Lookup is a
/// linear scan — maps in messages are small (e.g. a dozen parameters),
/// and the encoding keeps the memory layout a plain array of fixed-size
/// skeletons, exactly like every other SFM vector.
#[repr(C)]
pub struct SfmMap<K: SfmPod, V: SfmPod> {
    entries: SfmVec<SfmPair<K, V>>,
}

// SAFETY: transparent over SfmVec, which is pod.
unsafe impl<K: SfmPod, V: SfmPod> SfmPod for SfmMap<K, V> {}

impl<K: SfmPod, V: SfmPod> SfmMap<K, V> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One-shot: size the map for exactly `n` entries (zero-initialized
    /// pairs, to be filled by index).
    ///
    /// # Panics
    ///
    /// As [`SfmVec::resize`].
    pub fn resize_entries(&mut self, n: usize) {
        self.entries.resize(n);
    }

    /// Entry at `index`.
    pub fn entry(&self, index: usize) -> Option<&SfmPair<K, V>> {
        self.entries.get(index)
    }

    /// Mutable entry at `index` (for the one-shot fill).
    pub fn entry_mut(&mut self, index: usize) -> Option<&mut SfmPair<K, V>> {
        self.entries.get_mut(index)
    }

    /// Iterate the entries.
    pub fn iter(&self) -> impl Iterator<Item = &SfmPair<K, V>> {
        self.entries.iter()
    }

    /// Linear-scan lookup with a caller-provided key comparison (keys may
    /// be `SfmString`, which has no `Eq` against arbitrary `K`).
    pub fn find_by<F: FnMut(&K) -> bool>(&self, mut pred: F) -> Option<&V> {
        self.entries
            .iter()
            .find(|pair| pred(&pair.key))
            .map(|pair| &pair.value)
    }
}

impl<K: SfmPod + SfmValidate, V: SfmPod + SfmValidate> SfmValidate for SfmMap<K, V> {
    fn validate_in(&self, base: usize, whole_len: usize) -> Result<(), SfmError> {
        self.entries.validate_in(base, whole_len)
    }
}

impl<K, V> core::fmt::Debug for SfmMap<K, V>
where
    K: SfmPod + core::fmt::Debug,
    V: SfmPod + core::fmt::Debug,
{
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_map()
            .entries(self.iter().map(|p| (&p.key, &p.value)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SfmBox, SfmMessage, SfmRecvBuffer, SfmString};

    /// A message exercising both extension types: an optional calibration
    /// scale and a string-keyed parameter map.
    #[repr(C)]
    #[derive(Debug)]
    struct ExtMsg {
        scale: SfmOptional<f64>,
        params: SfmMap<SfmString, f64>,
    }
    unsafe impl SfmPod for ExtMsg {}
    impl SfmValidate for ExtMsg {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.scale.validate_in(base, len)?;
            self.params.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for ExtMsg {
        fn type_name() -> &'static str {
            "test/ExtMsg"
        }
        fn max_size() -> usize {
            4096
        }
    }

    #[test]
    fn optional_starts_absent_and_sets_once() {
        let mut msg = SfmBox::<ExtMsg>::new();
        assert!(msg.scale.is_none());
        assert!(msg.scale.get().is_none());
        msg.scale.set(2.5);
        assert!(msg.scale.is_some());
        assert_eq!(msg.scale.get(), Some(&2.5));
        *msg.scale.get_mut().unwrap() = 3.0;
        assert_eq!(msg.scale.get(), Some(&3.0));
        assert_eq!(format!("{:?}", msg.scale), "Some(3.0)");
    }

    #[test]
    fn absent_optional_costs_nothing_on_the_wire() {
        let msg = SfmBox::<ExtMsg>::new();
        assert_eq!(msg.whole_len(), core::mem::size_of::<ExtMsg>());
        assert_eq!(format!("{:?}", msg.scale), "None");
    }

    #[test]
    fn map_fill_and_lookup() {
        let mut msg = SfmBox::<ExtMsg>::new();
        msg.params.resize_entries(3);
        let names = ["focal", "baseline", "exposure"];
        let values = [525.0, 0.12, 0.033];
        for i in 0..3 {
            let entry = msg.params.entry_mut(i).unwrap();
            entry.key.assign(names[i]);
            entry.value = values[i];
        }
        assert_eq!(msg.params.len(), 3);
        assert!(!msg.params.is_empty());
        let got = msg.params.find_by(|k| k.as_str() == "baseline");
        assert_eq!(got, Some(&0.12));
        assert!(msg.params.find_by(|k| k.as_str() == "missing").is_none());
        let debug = format!("{:?}", msg.params);
        assert!(debug.contains("focal"));
    }

    #[test]
    fn extensions_survive_the_wire() {
        let mut msg = SfmBox::<ExtMsg>::new();
        msg.scale.set(9.75);
        msg.params.resize_entries(2);
        msg.params.entry_mut(0).unwrap().key.assign("a");
        msg.params.entry_mut(0).unwrap().value = 1.0;
        msg.params.entry_mut(1).unwrap().key.assign("b");
        msg.params.entry_mut(1).unwrap().value = -1.0;

        let frame = msg.publish_handle();
        let mut rb = SfmRecvBuffer::<ExtMsg>::new(frame.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(frame.as_slice());
        let got = rb.finish().unwrap();
        assert_eq!(got.scale.get(), Some(&9.75));
        assert_eq!(got.params.find_by(|k| k.as_str() == "b"), Some(&-1.0));
    }

    #[test]
    fn corrupt_optional_with_two_elements_rejected() {
        let mut msg = SfmBox::<ExtMsg>::new();
        msg.scale.set(1.0);
        let frame = msg.publish_handle().as_slice().to_vec();
        let mut frame = frame;
        // The optional's skeleton is the first 8 bytes; poison its count.
        frame[0..4].copy_from_slice(&2u32.to_le_bytes());
        let mut rb = SfmRecvBuffer::<ExtMsg>::new(frame.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&frame);
        assert!(rb.finish().is_err());
    }

    #[test]
    fn double_set_raises_one_shot_alert() {
        let _g = crate::alert::test_guard();
        let prev = crate::set_alert_policy(crate::AlertPolicy::Count);
        crate::reset_alert_counts();
        let mut msg = SfmBox::<ExtMsg>::new();
        msg.scale.set(1.0);
        msg.scale.set(2.0);
        assert_eq!(crate::alert_counts().1, 1, "optional is vector-backed");
        crate::set_alert_policy(prev);
        crate::reset_alert_counts();
    }
}
