//! Projections: transmit (and verify) a declared field subset of an SFM
//! message.
//!
//! A subscriber that only needs a few fields of a multi-megabyte message
//! should not receive the whole frame. SFM makes the cut almost free:
//! every variable-size field already occupies a `{len, offset}` pair in
//! the fixed skeleton (§4.1), so a *projected sub-frame* is simply
//!
//! 1. the whole skeleton (a small, fixed-size copy) with the offset words
//!    of **selected** pairs patched to the content's position in the
//!    sub-frame and every **unselected** pair cleared to the all-zero
//!    unassigned state, followed by
//! 2. the selected content regions, appended in skeleton order with their
//!    element alignment preserved.
//!
//! [`Projection::resolve`] turns a set of [`FieldPath`]s into this plan
//! once, at subscribe time; [`Projection::slice`] applies it to a frame,
//! producing borrowed ranges the transport can hand straight to a
//! vectored write (no intermediate payload buffer);
//! [`Projection::verify_projected`] is the receive side — the ordinary
//! structural verifier against the full schema, plus the projection's own
//! invariant that cleared pairs really are zero. An accessor for a field
//! outside the projection returns a typed [`FieldAbsent`] error instead
//! of garbage ([`Projection::field_bytes`]).
//!
//! Selecting a nested struct (e.g. `header`) selects every pair inside
//! its skeleton range. Selecting a vector whose *elements* themselves
//! hold `{len, offset}` pairs is refused
//! ([`PathError::Unprojectable`]) — relocating such a region would
//! require rewriting the element-internal pairs recursively.

use crate::align_up;
use crate::path::{child_path, index_path, FieldPath, FieldRange, PathError};
use crate::verify::{
    verify_frame, MessageSchema, StructDesc, TypeDesc, VerifyError, VerifyErrorKind, VerifyReport,
};
use core::fmt;
use core::ops::Range;

/// What kind of `{len, offset}` pair a selected skeleton slot holds.
#[derive(Debug, Clone, PartialEq, Eq)]
enum PairKind {
    /// `SfmString`: the first word is the stored byte count.
    Str,
    /// `SfmVec`: the first word is the element count.
    Vec { elem_size: usize, elem_align: usize },
}

/// One `{len, offset}` pair the projection keeps, in skeleton order.
#[derive(Debug, Clone)]
struct PairSel {
    path: String,
    pair_at: usize,
    kind: PairKind,
}

/// A resolved projection of one message type: which skeleton ranges the
/// subscriber asked for, which `{len, offset}` pairs ship content and
/// which are cleared, and the canonical spec string both ends of a link
/// agree on during the connection handshake.
#[derive(Debug, Clone)]
pub struct Projection {
    schema: MessageSchema,
    spec: String,
    ranges: Vec<(FieldPath, FieldRange)>,
    selected: Vec<PairSel>,
    cleared: Vec<(String, usize)>,
}

/// One borrowed content range of a [`SlicedFrame`], preceded by `pad`
/// zero bytes that restore its element alignment in the sub-frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameSegment {
    /// Alignment padding bytes to emit before the content.
    pub pad: usize,
    /// The content's byte range in the *original* frame.
    pub src: Range<usize>,
}

/// The slicing plan for one frame: a patched skeleton copy plus borrowed
/// content ranges. The wire form is `skeleton ∥ (pad ∥ frame[src])…`, and
/// the transport can emit it as a vectored write without assembling a
/// contiguous payload.
#[derive(Debug, Clone)]
pub struct SlicedFrame {
    /// The skeleton bytes with selected offsets re-pointed and unselected
    /// pairs cleared to the all-zero unassigned state.
    pub skeleton: Vec<u8>,
    /// Selected content regions in skeleton order.
    pub segments: Vec<FrameSegment>,
    /// Total sub-frame length (`skeleton.len()` + pads + content bytes).
    pub wire_len: usize,
}

/// A field accessor was asked for a field the projection does not carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldAbsent {
    /// The requested field path.
    pub path: String,
}

impl fmt::Display for FieldAbsent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field `{}` is not carried by this projection", self.path)
    }
}

impl std::error::Error for FieldAbsent {}

/// Recursively list every `{len, offset}` pair in a skeleton's inline
/// layout, in layout order.
fn collect_pairs(
    path: &str,
    at: usize,
    desc: &StructDesc,
    out: &mut Vec<(String, usize, TypeDesc)>,
) {
    for f in &desc.fields {
        collect_pairs_ty(&child_path(path, &f.name), at + f.offset, &f.ty, out);
    }
}

fn collect_pairs_ty(
    path: &str,
    at: usize,
    ty: &TypeDesc,
    out: &mut Vec<(String, usize, TypeDesc)>,
) {
    match ty {
        TypeDesc::Prim { .. } => {}
        TypeDesc::Str | TypeDesc::Vec(_) => out.push((path.to_string(), at, ty.clone())),
        TypeDesc::Struct(desc) => collect_pairs(path, at, desc, out),
        TypeDesc::Array { elem, len } => {
            if elem.has_indirection() {
                for i in 0..*len {
                    collect_pairs_ty(&index_path(path, i), at + i * elem.size(), elem, out);
                }
            }
        }
    }
}

impl Projection {
    /// Resolve `paths` against `schema` into a projection plan.
    ///
    /// Paths are parsed, sorted, and deduplicated, so any two ends that
    /// name the same field set produce the same canonical
    /// [`Projection::spec`] — which is what makes the handshake's
    /// grant-by-echo exact.
    ///
    /// # Errors
    ///
    /// [`PathError`] on unparsable or unresolvable paths, and
    /// [`PathError::Unprojectable`] when a selected field is (or
    /// contains) a vector whose elements hold their own pairs.
    pub fn resolve(schema: &MessageSchema, paths: &[&str]) -> Result<Projection, PathError> {
        if paths.is_empty() {
            return Err(PathError::Empty);
        }
        let mut parsed = paths
            .iter()
            .map(|p| FieldPath::parse(p))
            .collect::<Result<Vec<_>, _>>()?;
        parsed.sort_by_key(|a| a.to_string());
        parsed.dedup();
        let mut ranges = Vec::with_capacity(parsed.len());
        for p in parsed {
            let range = schema.resolve_path(&p)?;
            ranges.push((p, range));
        }
        let spec = ranges
            .iter()
            .map(|(p, _)| p.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut pairs = Vec::new();
        collect_pairs("", 0, &schema.root, &mut pairs);
        let mut selected = Vec::new();
        let mut cleared = Vec::new();
        for (path, pair_at, ty) in pairs {
            let inside = ranges
                .iter()
                .any(|(_, r)| pair_at >= r.offset && pair_at + 8 <= r.offset + r.len);
            if !inside {
                cleared.push((path, pair_at));
                continue;
            }
            let kind = match &ty {
                TypeDesc::Str => PairKind::Str,
                TypeDesc::Vec(elem) => {
                    if elem.has_indirection() {
                        return Err(PathError::Unprojectable { path });
                    }
                    PairKind::Vec {
                        elem_size: elem.size(),
                        elem_align: elem.align(),
                    }
                }
                _ => unreachable!("collect_pairs only emits Str/Vec"),
            };
            selected.push(PairSel {
                path,
                pair_at,
                kind,
            });
        }
        selected.sort_by_key(|s| s.pair_at);
        Ok(Projection {
            schema: schema.clone(),
            spec,
            ranges,
            selected,
            cleared,
        })
    }

    /// Parse a canonical spec string (comma-joined paths, as produced by
    /// [`Projection::spec`]) and resolve it — the publisher-side entry
    /// point during the connection handshake.
    ///
    /// # Errors
    ///
    /// As [`Projection::resolve`].
    pub fn from_spec(schema: &MessageSchema, spec: &str) -> Result<Projection, PathError> {
        let paths: Vec<&str> = spec.split(',').filter(|s| !s.is_empty()).collect();
        Projection::resolve(schema, &paths)
    }

    /// The canonical, order-independent spec string (comma-joined sorted
    /// paths) that names this projection in the connection header.
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// The schema this projection was resolved against.
    pub fn schema(&self) -> &MessageSchema {
        &self.schema
    }

    /// The resolved selections, in canonical order.
    pub fn ranges(&self) -> impl Iterator<Item = (&FieldPath, &FieldRange)> {
        self.ranges.iter().map(|(p, r)| (p, r))
    }

    /// Whether `path` is one of the selected fields (exact match against
    /// the canonical selection, not a prefix test).
    pub fn contains(&self, path: &FieldPath) -> bool {
        self.ranges.iter().any(|(p, _)| p == path)
    }

    /// Worst-case sub-frame length: skeleton plus every selected region at
    /// its maximum possible extent (bounded by the type's `max_size`).
    /// Useful only as a sanity bound; real sub-frames are usually far
    /// smaller.
    pub fn max_wire_len(&self) -> usize {
        self.schema.max_size
    }

    /// Slice `frame` according to this projection.
    ///
    /// The returned plan borrows nothing from `frame` (ranges only), so it
    /// can outlive the borrow; content bytes are *not* copied here — the
    /// transport writes them straight out of the original frame.
    ///
    /// # Errors
    ///
    /// [`VerifyError`] when the frame's selected pairs are structurally
    /// invalid (the same invariants [`verify_frame`] enforces on them).
    pub fn slice(&self, frame: &[u8]) -> Result<SlicedFrame, VerifyError> {
        let root = self.schema.root.size;
        let fail = |path: &str, kind: VerifyErrorKind| VerifyError {
            path: path.to_string(),
            kind,
        };
        if frame.len() < root {
            return Err(fail(
                "<whole-message>",
                VerifyErrorKind::FrameTooSmall {
                    need: root,
                    have: frame.len(),
                },
            ));
        }
        let mut skeleton = frame[..root].to_vec();
        for (_, pair_at) in &self.cleared {
            skeleton[*pair_at..*pair_at + 8].fill(0);
        }
        let read_u32 =
            |at: usize| u32::from_ne_bytes(frame[at..at + 4].try_into().expect("4 bytes"));
        let mut segments = Vec::with_capacity(self.selected.len());
        let mut cursor = root;
        for sel in &self.selected {
            let word = read_u32(sel.pair_at);
            let off = read_u32(sel.pair_at + 4);
            if off == 0 {
                if word != 0 {
                    return Err(fail(
                        &sel.path,
                        VerifyErrorKind::ZeroOffsetNonZeroLen { len: word },
                    ));
                }
                continue; // unassigned at publish time: stays {0, 0}
            }
            let (bytes, align) = match sel.kind {
                PairKind::Str => {
                    if word == 0 || !word.is_multiple_of(4) {
                        return Err(fail(
                            &sel.path,
                            VerifyErrorKind::BadStringStored { stored: word },
                        ));
                    }
                    (word as usize, 1)
                }
                PairKind::Vec {
                    elem_size,
                    elem_align,
                } => {
                    if word == 0 {
                        return Err(fail(&sel.path, VerifyErrorKind::ZeroLenNonZeroOffset));
                    }
                    let bytes = (word as usize).checked_mul(elem_size).ok_or_else(|| {
                        fail(
                            &sel.path,
                            VerifyErrorKind::LengthOverflow {
                                len: word,
                                elem_size,
                            },
                        )
                    })?;
                    (bytes, elem_align)
                }
            };
            let start = sel.pair_at + 4 + off as usize;
            let end = start.saturating_add(bytes);
            if end > frame.len() {
                return Err(fail(
                    &sel.path,
                    VerifyErrorKind::OutOfBounds {
                        start,
                        end,
                        frame_len: frame.len(),
                    },
                ));
            }
            let pad = align_up(cursor, align.max(1)) - cursor;
            let new_start = cursor + pad;
            // The new offset is self-relative to the pair's offset word,
            // exactly like the original.
            let new_off = u32::try_from(new_start - (sel.pair_at + 4)).map_err(|_| {
                fail(
                    &sel.path,
                    VerifyErrorKind::OutOfBounds {
                        start: new_start,
                        end: new_start + bytes,
                        frame_len: frame.len(),
                    },
                )
            })?;
            skeleton[sel.pair_at + 4..sel.pair_at + 8].copy_from_slice(&new_off.to_ne_bytes());
            segments.push(FrameSegment {
                pad,
                src: start..end,
            });
            cursor = new_start + bytes;
        }
        Ok(SlicedFrame {
            skeleton,
            segments,
            wire_len: cursor,
        })
    }

    /// Assemble a contiguous projected sub-frame (test/tooling helper; the
    /// transport streams [`SlicedFrame`] segments directly instead).
    ///
    /// # Errors
    ///
    /// As [`Projection::slice`].
    pub fn project_frame(&self, frame: &[u8]) -> Result<Vec<u8>, VerifyError> {
        let plan = self.slice(frame)?;
        let mut out = Vec::with_capacity(plan.wire_len);
        out.extend_from_slice(&plan.skeleton);
        for seg in &plan.segments {
            out.resize(out.len() + seg.pad, 0);
            out.extend_from_slice(&frame[seg.src.clone()]);
        }
        debug_assert_eq!(out.len(), plan.wire_len);
        Ok(out)
    }

    /// Verify a received projected sub-frame: the full structural pass of
    /// [`verify_frame`] (cleared pairs are valid unassigned fields) plus
    /// the projection's own invariant that every cleared pair really is
    /// all-zero — a frame with content on an unselected field did not come
    /// from a conforming projecting publisher.
    ///
    /// # Errors
    ///
    /// Any [`VerifyErrorKind`], including
    /// [`VerifyErrorKind::UnprojectedNonZero`] for the cleared-pair
    /// invariant.
    pub fn verify_projected(&self, frame: &[u8]) -> Result<VerifyReport, VerifyError> {
        if frame.len() >= self.schema.root.size {
            for (path, pair_at) in &self.cleared {
                if frame[*pair_at..*pair_at + 8].iter().any(|&b| b != 0) {
                    return Err(VerifyError {
                        path: path.clone(),
                        kind: VerifyErrorKind::UnprojectedNonZero,
                    });
                }
            }
        }
        verify_frame(&self.schema, frame)
    }

    /// Borrow the bytes of a *selected* field from a (projected or full)
    /// frame: inline skeleton bytes for fixed-size fields, the content
    /// region for strings and vectors (empty slice when unassigned).
    ///
    /// The frame must have passed [`Projection::verify_projected`] (or
    /// [`verify_frame`]); the accessor does its own bounds checks but
    /// reports any inconsistency as the field being absent rather than
    /// returning garbage.
    ///
    /// # Errors
    ///
    /// [`FieldAbsent`] when `path` is not part of this projection (or the
    /// frame cannot supply it).
    pub fn field_bytes<'f>(
        &self,
        frame: &'f [u8],
        path: &FieldPath,
    ) -> Result<&'f [u8], FieldAbsent> {
        let absent = || FieldAbsent {
            path: path.to_string(),
        };
        let (_, range) = self
            .ranges
            .iter()
            .find(|(p, _)| p == path)
            .ok_or_else(absent)?;
        match &range.ty {
            TypeDesc::Str | TypeDesc::Vec(_) => {
                let pair = frame
                    .get(range.offset..range.offset + 8)
                    .ok_or_else(absent)?;
                let word = u32::from_ne_bytes(pair[..4].try_into().expect("4 bytes"));
                let off = u32::from_ne_bytes(pair[4..].try_into().expect("4 bytes"));
                if off == 0 {
                    return Ok(&[]);
                }
                let bytes = match &range.ty {
                    TypeDesc::Str => word as usize,
                    TypeDesc::Vec(elem) => (word as usize)
                        .checked_mul(elem.size())
                        .ok_or_else(absent)?,
                    _ => unreachable!(),
                };
                let start = range.offset + 4 + off as usize;
                frame.get(start..start + bytes).ok_or_else(absent)
            }
            _ => frame
                .get(range.offset..range.offset + range.len)
                .ok_or_else(absent),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{FieldDesc, SfmReflect};
    use crate::{SfmBox, SfmMessage, SfmPod, SfmString, SfmValidate, SfmVec};

    #[repr(C)]
    #[derive(Debug)]
    struct Inner {
        x: f64,
        name: SfmString,
    }
    unsafe impl SfmPod for Inner {}
    impl SfmValidate for Inner {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), crate::SfmError> {
            self.name.validate_in(base, len)
        }
    }
    impl SfmReflect for Inner {
        fn type_desc() -> TypeDesc {
            TypeDesc::Struct(StructDesc {
                name: "test/Inner".into(),
                size: core::mem::size_of::<Inner>(),
                align: core::mem::align_of::<Inner>(),
                fields: vec![
                    FieldDesc {
                        name: "x".into(),
                        offset: 0,
                        ty: f64::type_desc(),
                    },
                    FieldDesc {
                        name: "name".into(),
                        offset: 8,
                        ty: SfmString::type_desc(),
                    },
                ],
            })
        }
    }

    #[repr(C)]
    #[derive(Debug)]
    struct Outer {
        tag: SfmString,
        floats: SfmVec<f64>,
        inners: SfmVec<Inner>,
        count: u32,
        data: SfmVec<u8>,
    }
    unsafe impl SfmPod for Outer {}
    impl SfmValidate for Outer {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), crate::SfmError> {
            self.tag.validate_in(base, len)?;
            self.floats.validate_in(base, len)?;
            self.inners.validate_in(base, len)?;
            self.data.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for Outer {
        fn type_name() -> &'static str {
            "test/ProjOuter"
        }
        fn max_size() -> usize {
            1 << 16
        }
    }
    impl SfmReflect for Outer {
        fn type_desc() -> TypeDesc {
            TypeDesc::Struct(StructDesc {
                name: "test/ProjOuter".into(),
                size: core::mem::size_of::<Outer>(),
                align: core::mem::align_of::<Outer>(),
                fields: vec![
                    FieldDesc {
                        name: "tag".into(),
                        offset: 0,
                        ty: SfmString::type_desc(),
                    },
                    FieldDesc {
                        name: "floats".into(),
                        offset: 8,
                        ty: SfmVec::<f64>::type_desc(),
                    },
                    FieldDesc {
                        name: "inners".into(),
                        offset: 16,
                        ty: SfmVec::<Inner>::type_desc(),
                    },
                    FieldDesc {
                        name: "count".into(),
                        offset: 24,
                        ty: u32::type_desc(),
                    },
                    FieldDesc {
                        name: "data".into(),
                        offset: 28,
                        ty: SfmVec::<u8>::type_desc(),
                    },
                ],
            })
        }
    }

    fn schema() -> MessageSchema {
        MessageSchema::of::<Outer>()
    }

    fn sample() -> SfmBox<Outer> {
        let mut m = SfmBox::<Outer>::new();
        m.tag.assign("outer");
        m.floats.assign(&[1.5, 2.5, 3.5]);
        m.inners.resize(2);
        m.inners[0].x = 4.5;
        m.inners[0].name.assign("first");
        m.inners[1].name.assign("second!");
        m.count = 42;
        m.data.assign(&[7u8; 1000]);
        m
    }

    #[test]
    fn canonical_spec_is_sorted_and_deduped() {
        let s = schema();
        let a = Projection::resolve(&s, &["tag", "count", "tag"]).unwrap();
        let b = Projection::resolve(&s, &["count", "tag"]).unwrap();
        assert_eq!(a.spec(), "count,tag");
        assert_eq!(a.spec(), b.spec());
        let c = Projection::from_spec(&s, a.spec()).unwrap();
        assert_eq!(c.spec(), a.spec());
    }

    #[test]
    fn resolve_rejects_bad_paths() {
        let s = schema();
        assert!(matches!(
            Projection::resolve(&s, &[]),
            Err(PathError::Empty)
        ));
        assert!(matches!(
            Projection::resolve(&s, &["missing"]),
            Err(PathError::UnknownField { .. })
        ));
        assert!(matches!(
            Projection::resolve(&s, &["floats[1]"]),
            Err(PathError::DynamicIndex { .. })
        ));
        assert!(matches!(
            Projection::resolve(&s, &["count.x"]),
            Err(PathError::NotAStruct { .. })
        ));
        // A vector of skeletons with their own pairs cannot be relocated.
        assert!(matches!(
            Projection::resolve(&s, &["inners"]),
            Err(PathError::Unprojectable { .. })
        ));
    }

    #[test]
    fn projected_frame_passes_projected_verifier_and_matches_witness() {
        let s = schema();
        let m = sample();
        let full = m.publish_handle().as_slice().to_vec();
        let proj = Projection::resolve(&s, &["tag", "count", "floats"]).unwrap();
        let sub = proj.project_frame(&full).unwrap();
        assert!(sub.len() < full.len());
        let report = proj.verify_projected(&sub).unwrap();
        assert_eq!(report.regions, 2, "tag + floats");
        // Byte-identity on the selected ranges vs the full-frame witness.
        let tag_path: FieldPath = "tag".parse().unwrap();
        let floats_path: FieldPath = "floats".parse().unwrap();
        let count_path: FieldPath = "count".parse().unwrap();
        assert_eq!(
            proj.field_bytes(&sub, &tag_path).unwrap(),
            proj.field_bytes(&full, &tag_path).unwrap()
        );
        assert_eq!(
            proj.field_bytes(&sub, &floats_path).unwrap(),
            proj.field_bytes(&full, &floats_path).unwrap()
        );
        assert_eq!(
            proj.field_bytes(&sub, &count_path).unwrap(),
            42u32.to_ne_bytes()
        );
        // The projected frame adopts cleanly: cleared fields read as
        // unassigned, selected fields carry their values.
        let mut rb = crate::SfmRecvBuffer::<Outer>::new(sub.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&sub);
        let msg = rb.finish().unwrap();
        assert_eq!(msg.tag.as_str(), "outer");
        assert_eq!(msg.floats.as_slice(), &[1.5, 2.5, 3.5]);
        assert_eq!(msg.count, 42);
        assert_eq!(msg.data.len(), 0, "unselected vec reads as unassigned");
        assert_eq!(msg.inners.len(), 0);
    }

    #[test]
    fn skeleton_only_projection_is_exactly_the_skeleton() {
        let s = schema();
        let m = sample();
        let full = m.publish_handle().as_slice().to_vec();
        let proj = Projection::resolve(&s, &["count"]).unwrap();
        let sub = proj.project_frame(&full).unwrap();
        assert_eq!(sub.len(), core::mem::size_of::<Outer>());
        proj.verify_projected(&sub).unwrap();
    }

    #[test]
    fn unassigned_selected_field_stays_zero() {
        let s = schema();
        let m = SfmBox::<Outer>::new(); // nothing assigned
        let full = m.publish_handle().as_slice().to_vec();
        let proj = Projection::resolve(&s, &["tag", "floats"]).unwrap();
        let sub = proj.project_frame(&full).unwrap();
        assert_eq!(sub.len(), core::mem::size_of::<Outer>());
        proj.verify_projected(&sub).unwrap();
    }

    #[test]
    fn unprojected_content_is_rejected_by_projected_verifier() {
        let s = schema();
        let m = sample();
        let full = m.publish_handle().as_slice().to_vec();
        let proj = Projection::resolve(&s, &["count"]).unwrap();
        // A full frame still carries content on cleared pairs.
        let err = proj.verify_projected(&full).unwrap_err();
        assert!(matches!(err.kind, VerifyErrorKind::UnprojectedNonZero));
    }

    #[test]
    fn field_absent_for_unselected_paths() {
        let s = schema();
        let m = sample();
        let full = m.publish_handle().as_slice().to_vec();
        let proj = Projection::resolve(&s, &["count"]).unwrap();
        let data_path: FieldPath = "data".parse().unwrap();
        let err = proj.field_bytes(&full, &data_path).unwrap_err();
        assert_eq!(err.path, "data");
        assert!(err.to_string().contains("data"));
        assert!(!proj.contains(&data_path));
        assert!(proj.contains(&"count".parse().unwrap()));
    }

    #[test]
    fn corrupt_selected_pair_fails_slicing() {
        let s = schema();
        let m = sample();
        let mut full = m.publish_handle().as_slice().to_vec();
        let proj = Projection::resolve(&s, &["tag"]).unwrap();
        // Poison the tag offset word (bytes 4..8) to escape the frame.
        full[4..8].copy_from_slice(&u32::MAX.to_ne_bytes());
        let err = proj.slice(&full).unwrap_err();
        assert_eq!(err.path, "tag");
        assert!(matches!(err.kind, VerifyErrorKind::OutOfBounds { .. }));
    }

    #[test]
    fn vec_alignment_is_restored_with_padding() {
        let s = schema();
        let mut m = SfmBox::<Outer>::new();
        m.tag.assign("xxxxx"); // stored 8 bytes → cursor lands 8-misaligned
        m.floats.assign(&[9.0]);
        let full = m.publish_handle().as_slice().to_vec();
        let proj = Projection::resolve(&s, &["floats", "tag"]).unwrap();
        let sub = proj.project_frame(&full).unwrap();
        proj.verify_projected(&sub).unwrap();
        let floats = proj.field_bytes(&sub, &"floats".parse().unwrap()).unwrap();
        assert_eq!(floats, 9.0f64.to_ne_bytes());
    }
}
