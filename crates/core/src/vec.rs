//! `sfm::vector` — the SFM skeleton of a vector field (§4.1, §4.3.3).

use crate::alert::{self, AlertKind};
use crate::error::SfmError;
use crate::manager::mm;
use crate::message::{SfmPod, SfmValidate};
use core::fmt;
use core::marker::PhantomData;
use core::ops::{Index, IndexMut};

/// The 8-byte skeleton of a ROS array field (`uint8[] data`,
/// `Point32[] points`, …).
///
/// Layout (paper Fig. 7): a `u32` element count followed by a `u32` offset
/// from the address of the offset word itself to the contiguous elements.
/// `{0, 0}` is the unassigned/empty state.
///
/// Elements are stored contiguously "in the ascending order of index" so
/// they "can be accessed as elements of a C++ array" — here: as a Rust
/// slice. When the element type is itself a message, the elements are that
/// message's *skeletons*; their own variable-size fields grow the same whole
/// message through the manager.
///
/// The API mirrors the read surface of `std::vector` plus the one-shot
/// [`SfmVec::resize`]. Growing mutators (`push_back`, `pop_back`, `insert`,
/// …) are deliberately absent — the *No Modifier Assumption* is a compile
/// error, exactly as in the paper.
#[repr(C)]
pub struct SfmVec<T: SfmPod> {
    len: u32,
    off: u32,
    _marker: PhantomData<T>,
}

// SAFETY: layout is two u32s (PhantomData is zero-sized); all-zero is the
// valid empty state; no drop glue because T: SfmPod has none and elements
// live in the message allocation, not in this struct.
unsafe impl<T: SfmPod> SfmPod for SfmVec<T> {}

impl<T: SfmPod> SfmVec<T> {
    #[inline]
    fn off_addr(&self) -> usize {
        core::ptr::addr_of!(self.off) as usize
    }

    #[inline]
    fn content_addr(&self) -> Option<usize> {
        (self.off != 0).then(|| self.off_addr() + self.off as usize)
    }

    /// `true` until the first resize.
    #[inline]
    pub fn is_unassigned(&self) -> bool {
        self.len == 0 && self.off == 0
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when there are no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match self.content_addr() {
            None => &[],
            // SAFETY: the region was reserved through the manager with
            // align_of::<T>() alignment for exactly `len` elements (or
            // validated by `SfmValidate` for received frames); T: SfmPod so
            // any initialized bytes are a valid value.
            Some(addr) => unsafe {
                core::slice::from_raw_parts(addr as *const T, self.len as usize)
            },
        }
    }

    /// Elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match self.content_addr() {
            None => &mut [],
            // SAFETY: as `as_slice`, plus we hold `&mut self` on the owning
            // message so no aliasing reads exist.
            Some(addr) => unsafe {
                core::slice::from_raw_parts_mut(addr as *mut T, self.len as usize)
            },
        }
    }

    /// One-shot sizing (the `resize` of the paper's `sfm::vector`).
    ///
    /// The first resize expands the whole message by
    /// `n * size_of::<T>()` bytes (aligned to `align_of::<T>()`) and
    /// zero-initializes the elements — for message elements the all-zero
    /// skeleton is the valid empty value. A second resize violates the
    /// *One-Shot Vector Resizing Assumption*: an alert is raised through the
    /// active [`AlertPolicy`](crate::AlertPolicy); under `Warn`/`Count` a
    /// fresh region is appended (leaking the old one inside the message).
    ///
    /// # Panics
    ///
    /// Panics if this vector is not inside a managed message, if the
    /// message's `max_size` is exceeded, or (per policy) on re-resize.
    pub fn resize(&mut self, n: usize) {
        if let Err(e) = self.try_resize(n) {
            panic!("SfmVec::resize failed: {e}");
        }
    }

    /// Fallible variant of [`SfmVec::resize`].
    ///
    /// # Errors
    ///
    /// * [`SfmError::UnmanagedAddress`] — not inside a managed message.
    /// * [`SfmError::CapacityExceeded`] — `max_size` would be exceeded.
    pub fn try_resize(&mut self, n: usize) -> Result<(), SfmError> {
        // SAFETY contract of reserve(zero=true) is upheld: the region is
        // zero-initialized before becoming reachable.
        self.reserve_region(n, true)
    }

    /// Reserve the content region; when `zero` is false the caller must
    /// fully overwrite all `n * size_of::<T>()` bytes before any read
    /// (only `assign` does this, with a `copy_from_slice` of exactly that
    /// length).
    fn reserve_region(&mut self, n: usize, zero: bool) -> Result<(), SfmError> {
        let self_addr = self as *const _ as usize;
        if !self.is_unassigned() {
            let type_name = mm().info(self_addr).map_or("<unmanaged>", |i| i.type_name);
            alert::raise(AlertKind::OneShotVectorResizing, type_name);
        }
        if n == 0 {
            // `resize(0)` on an unassigned vector is a no-op (common ROS
            // pattern, see the paper's third failure case line 147).
            self.len = 0;
            return Ok(());
        }
        let bytes = n
            .checked_mul(core::mem::size_of::<T>())
            .expect("element count overflow");
        let addr = mm().expand(self_addr, bytes, core::mem::align_of::<T>().max(1))?;
        if zero {
            // SAFETY: freshly reserved region inside the allocation;
            // zeroing is a valid initialization for T: SfmPod (and clears
            // stale bytes if a Warn/Count re-resize reuses budget).
            unsafe { core::ptr::write_bytes(addr as *mut u8, 0, bytes) };
        }
        self.len = n as u32;
        self.off = (addr - self.off_addr()) as u32;
        Ok(())
    }

    /// One-shot resize followed by a copy from `src` — the idiomatic way to
    /// fill a data field (`img.data.assign(&pixels)`). Unlike
    /// `resize`-then-write, the region is written exactly once (the copy
    /// fully initializes it; no zeroing pass).
    ///
    /// # Panics
    ///
    /// As [`SfmVec::resize`].
    pub fn assign(&mut self, src: &[T])
    where
        T: Copy,
    {
        if let Err(e) = self.reserve_region(src.len(), false) {
            panic!("SfmVec::assign failed: {e}");
        }
        // Fully initializes the reserved region (same length by
        // construction), discharging reserve_region's contract.
        self.as_mut_slice().copy_from_slice(src);
    }

    /// Reference to the element at `index`, or `None` if out of bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.as_slice().get(index)
    }

    /// Mutable reference to the element at `index`, or `None` if out of
    /// bounds.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.as_mut_slice().get_mut(index)
    }

    /// Iterator over the elements (mirrors `std::vector::begin()/end()`).
    pub fn iter(&self) -> SfmVecIter<'_, T> {
        SfmVecIter {
            inner: self.as_slice().iter(),
        }
    }

    /// Mutable iterator over the elements.
    pub fn iter_mut(&mut self) -> core::slice::IterMut<'_, T> {
        self.as_mut_slice().iter_mut()
    }
}

impl<T: SfmPod + SfmValidate> SfmValidate for SfmVec<T> {
    fn validate_in(&self, base: usize, whole_len: usize) -> Result<(), SfmError> {
        if self.off == 0 {
            if self.len != 0 {
                return Err(SfmError::CorruptOffset {
                    offset: 0,
                    len: whole_len,
                });
            }
            return Ok(());
        }
        let start = self.content_addr().expect("off != 0").wrapping_sub(base);
        let bytes = (self.len as usize)
            .checked_mul(core::mem::size_of::<T>())
            .ok_or(SfmError::CorruptOffset {
                offset: usize::MAX,
                len: whole_len,
            })?;
        let end = start.wrapping_add(bytes);
        if start > whole_len || end > whole_len || end < start {
            return Err(SfmError::CorruptOffset {
                offset: end,
                len: whole_len,
            });
        }
        // Recurse into element skeletons (no-op for primitives).
        for item in self.as_slice() {
            item.validate_in(base, whole_len)?;
        }
        Ok(())
    }
}

/// Iterator returned by [`SfmVec::iter`].
#[derive(Debug, Clone)]
pub struct SfmVecIter<'a, T> {
    inner: core::slice::Iter<'a, T>,
}

impl<'a, T> Iterator for SfmVecIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl<T> ExactSizeIterator for SfmVecIter<'_, T> {}

impl<'a, T: SfmPod> IntoIterator for &'a SfmVec<T> {
    type Item = &'a T;
    type IntoIter = SfmVecIter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<T: SfmPod> Index<usize> for SfmVec<T> {
    type Output = T;

    fn index(&self, index: usize) -> &T {
        &self.as_slice()[index]
    }
}

impl<T: SfmPod> IndexMut<usize> for SfmVec<T> {
    fn index_mut(&mut self, index: usize) -> &mut T {
        &mut self.as_mut_slice()[index]
    }
}

impl<T: SfmPod + fmt::Debug> fmt::Debug for SfmVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() > 16 {
            write!(f, "[{} elements]", self.len())
        } else {
            f.debug_list().entries(self.as_slice()).finish()
        }
    }
}

impl<T: SfmPod + PartialEq> PartialEq<[T]> for SfmVec<T> {
    fn eq(&self, other: &[T]) -> bool {
        self.as_slice() == other
    }
}

impl<T: SfmPod + PartialEq> PartialEq for SfmVec<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SfmBox, SfmMessage, SfmString};

    #[repr(C)]
    #[derive(Debug)]
    struct VecMsg {
        bytes: SfmVec<u8>,
        floats: SfmVec<f64>,
    }
    unsafe impl SfmPod for VecMsg {}
    impl SfmValidate for VecMsg {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.bytes.validate_in(base, len)?;
            self.floats.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for VecMsg {
        fn type_name() -> &'static str {
            "test/VecMsg"
        }
        fn max_size() -> usize {
            4096
        }
    }

    // A nested element message: vectors of message skeletons.
    #[repr(C)]
    #[derive(Debug)]
    struct NamedPoint {
        x: f64,
        y: f64,
        name: SfmString,
    }
    unsafe impl SfmPod for NamedPoint {}
    impl SfmValidate for NamedPoint {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.name.validate_in(base, len)
        }
    }

    #[repr(C)]
    #[derive(Debug)]
    struct Cloud {
        points: SfmVec<NamedPoint>,
    }
    unsafe impl SfmPod for Cloud {}
    impl SfmValidate for Cloud {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.points.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for Cloud {
        fn type_name() -> &'static str {
            "test/Cloud"
        }
        fn max_size() -> usize {
            8192
        }
    }

    #[test]
    fn unassigned_is_empty() {
        let msg = SfmBox::<VecMsg>::new();
        assert!(msg.bytes.is_unassigned());
        assert!(msg.bytes.is_empty());
        assert_eq!(msg.bytes.len(), 0);
        assert!(msg.bytes.as_slice().is_empty());
        assert!(msg.bytes.get(0).is_none());
    }

    #[test]
    fn resize_zero_initializes() {
        let mut msg = SfmBox::<VecMsg>::new();
        msg.bytes.resize(300);
        assert_eq!(msg.bytes.len(), 300);
        assert!(msg.bytes.iter().all(|&b| b == 0));
    }

    #[test]
    fn write_and_read_elements() {
        let mut msg = SfmBox::<VecMsg>::new();
        msg.bytes.resize(10);
        for i in 0..10 {
            msg.bytes[i] = (i * 3) as u8;
        }
        assert_eq!(msg.bytes[9], 27);
        assert_eq!(msg.bytes.as_slice(), &[0, 3, 6, 9, 12, 15, 18, 21, 24, 27]);
    }

    #[test]
    fn assign_copies_slice() {
        let mut msg = SfmBox::<VecMsg>::new();
        msg.floats.assign(&[1.5, -2.5, 3.25]);
        assert_eq!(msg.floats.as_slice(), &[1.5, -2.5, 3.25]);
    }

    #[test]
    fn f64_content_is_aligned() {
        let mut msg = SfmBox::<VecMsg>::new();
        // Force a misaligning prefix first.
        msg.bytes.resize(3);
        msg.floats.resize(4);
        let addr = msg.floats.as_slice().as_ptr() as usize;
        assert_eq!(addr % core::mem::align_of::<f64>(), 0);
    }

    #[test]
    fn resize_zero_then_real_resize_is_not_a_violation() {
        let _g = crate::alert::test_guard();
        // The common ROS pattern `points.resize(0); ... resize(n)`:
        // resize(0) on an unassigned vec leaves it unassigned.
        let prev = crate::set_alert_policy(crate::AlertPolicy::Count);
        crate::reset_alert_counts();
        let mut msg = SfmBox::<VecMsg>::new();
        msg.bytes.resize(0);
        assert!(msg.bytes.is_unassigned());
        msg.bytes.resize(8);
        assert_eq!(crate::alert_counts().1, 0);
        crate::set_alert_policy(prev);
        crate::reset_alert_counts();
    }

    #[test]
    fn double_resize_raises_alert() {
        let _g = crate::alert::test_guard();
        let prev = crate::set_alert_policy(crate::AlertPolicy::Count);
        crate::reset_alert_counts();
        let mut msg = SfmBox::<VecMsg>::new();
        msg.bytes.resize(4);
        msg.bytes.resize(8); // violates One-Shot Vector Resizing
        assert_eq!(crate::alert_counts().1, 1);
        assert_eq!(msg.bytes.len(), 8);
        crate::set_alert_policy(prev);
        crate::reset_alert_counts();
    }

    #[test]
    fn capacity_exceeded_errors_and_leaves_vec_unassigned() {
        let mut msg = SfmBox::<VecMsg>::new();
        let err = msg.bytes.try_resize(1 << 20).unwrap_err();
        assert!(matches!(err, SfmError::CapacityExceeded { .. }));
        assert!(msg.bytes.is_unassigned());
    }

    #[test]
    fn vector_of_message_skeletons() {
        let mut cloud = SfmBox::<Cloud>::new();
        cloud.points.resize(3);
        for (i, p) in cloud.points.iter_mut().enumerate() {
            p.x = i as f64;
            p.y = -(i as f64);
        }
        // Element strings grow the same whole message.
        cloud.points[0].name.assign("origin");
        cloud.points[2].name.assign("far");
        assert_eq!(cloud.points[0].name.as_str(), "origin");
        assert_eq!(cloud.points[1].name.as_str(), "");
        assert_eq!(cloud.points[2].name.as_str(), "far");
        assert_eq!(cloud.points[1].x, 1.0);
    }

    #[test]
    fn elements_are_contiguous() {
        let mut cloud = SfmBox::<Cloud>::new();
        cloud.points.resize(4);
        let s = cloud.points.as_slice();
        let stride = core::mem::size_of::<NamedPoint>();
        for w in 0..3 {
            let a = &s[w] as *const _ as usize;
            let b = &s[w + 1] as *const _ as usize;
            assert_eq!(b - a, stride);
        }
    }

    #[test]
    fn iterator_matches_indexing() {
        let mut msg = SfmBox::<VecMsg>::new();
        msg.bytes.assign(&[9, 8, 7]);
        let via_iter: Vec<u8> = msg.bytes.iter().copied().collect();
        assert_eq!(via_iter, vec![9, 8, 7]);
        assert_eq!(msg.bytes.iter().len(), 3);
        let via_intoiter: Vec<u8> = (&msg.bytes).into_iter().copied().collect();
        assert_eq!(via_intoiter, vec![9, 8, 7]);
    }

    #[test]
    fn debug_formats() {
        let mut msg = SfmBox::<VecMsg>::new();
        msg.bytes.assign(&[1, 2]);
        assert_eq!(format!("{:?}", msg.bytes), "[1, 2]");
        msg.floats.resize(32);
        assert_eq!(format!("{:?}", msg.floats), "[32 elements]");
    }

    #[test]
    fn partial_eq() {
        let mut a = SfmBox::<VecMsg>::new();
        let mut b = SfmBox::<VecMsg>::new();
        a.bytes.assign(&[1, 2, 3]);
        b.bytes.assign(&[1, 2, 3]);
        assert!(a.bytes == b.bytes);
        assert!(a.bytes == *[1u8, 2, 3].as_slice());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let mut msg = SfmBox::<VecMsg>::new();
        msg.bytes.resize(2);
        let _ = msg.bytes[2];
    }

    #[test]
    fn unmanaged_resize_errors() {
        let mut loose: SfmVec<u8> = SfmVec {
            len: 0,
            off: 0,
            _marker: PhantomData,
        };
        assert!(matches!(
            loose.try_resize(4),
            Err(SfmError::UnmanagedAddress { .. })
        ));
    }
}
