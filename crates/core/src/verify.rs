//! Schema-driven structural verification of raw SFM buffers.
//!
//! The serialization-free trick — the wire format *is* the in-memory layout
//! (§4.1) — removes the implicit validation a deserializer performs: a
//! subscriber adopts raw bytes as a live message, so a corrupted or
//! adversarial `{len, offset}` pair becomes an out-of-bounds (or unaligned)
//! read instead of a parse error. This module closes that gap with a
//! *static analysis over the buffer*: given a runtime description of the
//! skeleton layout (a [`MessageSchema`]), [`verify_frame`] walks the raw
//! bytes **without materializing the message** and proves every structural
//! invariant of the format:
//!
//! * every `{len: u32, offset: u32}` pair's self-relative offset lands
//!   inside the whole message;
//! * content regions lie within the frame, are aligned for their element
//!   type, and overlap neither the skeleton nor each other;
//! * vectors of nested skeletons are sized consistently
//!   (`len * size_of::<Elem>()` without overflow) and their element
//!   skeletons are recursively valid;
//! * the total used size reconstructed from the regions matches the frame
//!   length exactly (no unreachable tail a conforming publisher could not
//!   have produced).
//!
//! The verifier is deliberately *stricter* than the field-by-field
//! [`SfmValidate`](crate::SfmValidate) pass run at adoption: anything the
//! verifier accepts, `SfmValidate` accepts, but the verifier additionally
//! rejects frames that are in-bounds yet could only have been produced by a
//! non-conforming (or hostile) publisher. Every rejection names the failing
//! field path (`points[2].name`) so corrupt captures can be triaged
//! offline (`sfm_verify` binary) as well as on the receive path
//! (`TransportConfig::validate_on_receive`).
//!
//! Schemas come from two independent sources that are cross-checked in
//! tests: the `ros_message_impls!` generator derives them from the real
//! Rust layout (`offset_of!`), and `rossf-idl` computes them from the
//! parsed `.msg` model (`rossf_idl::schema_from_spec`).

use crate::message::SfmMessage;
use crate::string::SfmString;
use crate::vec::SfmVec;
use core::fmt;

/// Runtime description of one SFM field type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDesc {
    /// A fixed-size leaf the verifier does not look inside (primitives,
    /// `time`/`duration`, and anything else without stored offsets).
    Prim {
        /// Size in bytes.
        size: usize,
        /// Required alignment in bytes.
        align: usize,
    },
    /// An `SfmString` skeleton: `{stored: u32, off: u32}`.
    Str,
    /// An `SfmVec<Elem>` skeleton: `{len: u32, off: u32}` with contiguous
    /// elements of the boxed type in the content region.
    Vec(Box<TypeDesc>),
    /// A nested message skeleton, laid out inline.
    Struct(StructDesc),
    /// A fixed array `[Elem; len]`, laid out inline.
    Array {
        /// Element type.
        elem: Box<TypeDesc>,
        /// Element count.
        len: usize,
    },
}

impl TypeDesc {
    /// Size of a value of this type inside a skeleton.
    pub fn size(&self) -> usize {
        match self {
            TypeDesc::Prim { size, .. } => *size,
            TypeDesc::Str | TypeDesc::Vec(_) => 8,
            TypeDesc::Struct(s) => s.size,
            TypeDesc::Array { elem, len } => elem.size() * len,
        }
    }

    /// Alignment of a value of this type inside a skeleton.
    pub fn align(&self) -> usize {
        match self {
            TypeDesc::Prim { align, .. } => *align,
            TypeDesc::Str | TypeDesc::Vec(_) => 4,
            TypeDesc::Struct(s) => s.align,
            TypeDesc::Array { elem, .. } => elem.align(),
        }
    }

    /// `true` if a value of this type can reference content outside its own
    /// inline bytes (directly or transitively).
    pub fn has_indirection(&self) -> bool {
        match self {
            TypeDesc::Prim { .. } => false,
            TypeDesc::Str | TypeDesc::Vec(_) => true,
            TypeDesc::Struct(s) => s.fields.iter().any(|f| f.ty.has_indirection()),
            TypeDesc::Array { elem, .. } => elem.has_indirection(),
        }
    }
}

/// One named field of a [`StructDesc`], at a fixed skeleton offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDesc {
    /// Field name from the IDL.
    pub name: String,
    /// Byte offset inside the skeleton (`repr(C)` layout).
    pub offset: usize,
    /// Field type.
    pub ty: TypeDesc,
}

/// Runtime description of a skeleton struct's `repr(C)` layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDesc {
    /// ROS type name (e.g. `sensor_msgs/Image`) or a local struct name.
    pub name: String,
    /// `size_of` the skeleton, padding included.
    pub size: usize,
    /// `align_of` the skeleton.
    pub align: usize,
    /// Fields in declaration order.
    pub fields: Vec<FieldDesc>,
}

/// The full verification schema of one message type: its root skeleton plus
/// the type-level bounds the receive path already enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSchema {
    /// Root skeleton layout.
    pub root: StructDesc,
    /// The type's `max_size` (upper bound on any frame).
    pub max_size: usize,
}

impl MessageSchema {
    /// Build the schema of a reflectable message type.
    ///
    /// # Panics
    ///
    /// Panics if `T::type_desc()` is not a struct — impossible for types
    /// generated by `ros_message_impls!`.
    pub fn of<T: SfmMessage + SfmReflect>() -> MessageSchema {
        let TypeDesc::Struct(root) = T::type_desc() else {
            panic!(
                "message type {} does not reflect as a struct",
                T::type_name()
            );
        };
        debug_assert_eq!(root.size, core::mem::size_of::<T>());
        MessageSchema {
            root,
            max_size: T::max_size(),
        }
    }

    /// The ROS type name carried by the root skeleton.
    pub fn type_name(&self) -> &str {
        &self.root.name
    }
}

/// Types that can describe their own SFM layout at runtime.
///
/// Implemented for the primitive field types, `SfmString`, `SfmVec`, fixed
/// arrays, and (via `ros_message_impls!`) every generated skeleton struct.
pub trait SfmReflect {
    /// The layout description of this type.
    fn type_desc() -> TypeDesc;
}

macro_rules! prim_reflect {
    ($($t:ty),*) => {$(
        impl SfmReflect for $t {
            fn type_desc() -> TypeDesc {
                TypeDesc::Prim {
                    size: core::mem::size_of::<$t>(),
                    align: core::mem::align_of::<$t>(),
                }
            }
        }
    )*};
}
prim_reflect!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl SfmReflect for SfmString {
    fn type_desc() -> TypeDesc {
        TypeDesc::Str
    }
}

impl<T: SfmReflect + crate::SfmPod> SfmReflect for SfmVec<T> {
    fn type_desc() -> TypeDesc {
        TypeDesc::Vec(Box::new(T::type_desc()))
    }
}

impl<T: SfmReflect, const N: usize> SfmReflect for [T; N] {
    fn type_desc() -> TypeDesc {
        TypeDesc::Array {
            elem: Box::new(T::type_desc()),
            len: N,
        }
    }
}

/// What structural invariant a frame violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// The frame cannot contain the root skeleton.
    FrameTooSmall {
        /// Skeleton size required.
        need: usize,
        /// Frame length available.
        have: usize,
    },
    /// The frame exceeds the type's declared `max_size`.
    FrameTooLarge {
        /// Declared `max_size`.
        max_size: usize,
        /// Frame length.
        have: usize,
    },
    /// A content region escapes the frame.
    OutOfBounds {
        /// Frame-relative region start.
        start: usize,
        /// Frame-relative region end (exclusive).
        end: usize,
        /// Frame length.
        frame_len: usize,
    },
    /// `len * size_of::<Elem>()` overflowed.
    LengthOverflow {
        /// Stored element count.
        len: u32,
        /// Element size.
        elem_size: usize,
    },
    /// A content region is not aligned for its element type — adopting the
    /// frame would hand out misaligned slices (undefined behaviour).
    Misaligned {
        /// Frame-relative region start.
        start: usize,
        /// Required alignment.
        align: usize,
    },
    /// A zero offset paired with a nonzero length/stored count: the
    /// unassigned state must be all-zero.
    ZeroOffsetNonZeroLen {
        /// The stored length word.
        len: u32,
    },
    /// A nonzero offset paired with a zero element count — not producible
    /// by a conforming one-shot publisher.
    ZeroLenNonZeroOffset,
    /// A string's stored size is not a positive multiple of 4 (the NUL +
    /// padding rule of §4.1, Fig. 7).
    BadStringStored {
        /// The stored size word.
        stored: u32,
    },
    /// Two content regions (or a region and the skeleton) overlap.
    Overlap {
        /// Path of the previously recorded region.
        other: String,
    },
    /// The regions reconstruct a whole-message size different from the
    /// frame length (trailing bytes no field references, or a truncated
    /// tail).
    SizeMismatch {
        /// Reconstructed used size.
        used: usize,
        /// Frame length.
        frame_len: usize,
    },
    /// A field excluded by a negotiated [`Projection`](crate::Projection)
    /// carries a nonzero `{len, offset}` pair — the frame did not come
    /// from a conforming projecting publisher.
    UnprojectedNonZero,
}

/// A structural verification failure, naming the failing field path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Dotted/indexed path from the message root, e.g. `points[2].name`;
    /// `<whole-message>` for frame-level failures.
    pub path: String,
    /// What went wrong.
    pub kind: VerifyErrorKind,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at `{}`: ", self.path)?;
        match &self.kind {
            VerifyErrorKind::FrameTooSmall { need, have } => {
                write!(
                    f,
                    "frame of {have} bytes cannot hold the {need}-byte skeleton"
                )
            }
            VerifyErrorKind::FrameTooLarge { max_size, have } => {
                write!(f, "frame of {have} bytes exceeds max_size {max_size}")
            }
            VerifyErrorKind::OutOfBounds {
                start,
                end,
                frame_len,
            } => write!(
                f,
                "content region [{start}, {end}) escapes the {frame_len}-byte frame"
            ),
            VerifyErrorKind::LengthOverflow { len, elem_size } => {
                write!(f, "element count {len} x size {elem_size} overflows")
            }
            VerifyErrorKind::Misaligned { start, align } => {
                write!(f, "content region at {start} is not {align}-byte aligned")
            }
            VerifyErrorKind::ZeroOffsetNonZeroLen { len } => {
                write!(f, "zero offset with nonzero length {len}")
            }
            VerifyErrorKind::ZeroLenNonZeroOffset => {
                write!(f, "zero length with nonzero offset")
            }
            VerifyErrorKind::BadStringStored { stored } => write!(
                f,
                "string stored size {stored} is not a positive multiple of 4"
            ),
            VerifyErrorKind::Overlap { other } => {
                write!(f, "content region overlaps region of `{other}`")
            }
            VerifyErrorKind::SizeMismatch { used, frame_len } => write!(
                f,
                "regions reconstruct a whole message of {used} bytes but the frame is {frame_len}"
            ),
            VerifyErrorKind::UnprojectedNonZero => write!(
                f,
                "field is excluded by the negotiated projection but its pair is nonzero"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Statistics of a successful verification, for reports and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Fields visited (leaves included).
    pub fields_walked: usize,
    /// Content regions proved in-bounds and disjoint (root skeleton
    /// excluded).
    pub regions: usize,
    /// Bytes covered by the skeleton plus content regions.
    pub covered_bytes: usize,
    /// Alignment-gap bytes between regions (present but unreferenced).
    pub gap_bytes: usize,
}

/// One proved content region (internal bookkeeping).
struct Region {
    start: usize,
    end: usize,
    path_id: usize,
}

struct Walker<'f> {
    frame: &'f [u8],
    /// Regions proved so far, with an id into `paths`.
    regions: Vec<Region>,
    paths: Vec<String>,
    fields_walked: usize,
}

impl<'f> Walker<'f> {
    fn read_u32(&self, at: usize) -> u32 {
        // Bounds are guaranteed by the caller (skeleton ranges are checked
        // before descending).
        u32::from_ne_bytes(self.frame[at..at + 4].try_into().expect("4 bytes"))
    }

    fn fail(&self, path: &str, kind: VerifyErrorKind) -> VerifyError {
        VerifyError {
            path: path.to_string(),
            kind,
        }
    }

    /// Prove a content region of `bytes` bytes referenced from the
    /// `{len, off}` pair at skeleton offset `pair_at`, then record it.
    /// Returns the frame-relative region start.
    fn claim_region(
        &mut self,
        path: &str,
        pair_at: usize,
        off: u32,
        bytes: usize,
        align: usize,
    ) -> Result<usize, VerifyError> {
        // Offsets are relative to the address of the offset word itself
        // (the second u32 of the pair).
        let start = pair_at + 4 + off as usize;
        let end = match start.checked_add(bytes) {
            Some(e) => e,
            None => {
                return Err(self.fail(
                    path,
                    VerifyErrorKind::OutOfBounds {
                        start,
                        end: usize::MAX,
                        frame_len: self.frame.len(),
                    },
                ))
            }
        };
        if end > self.frame.len() {
            return Err(self.fail(
                path,
                VerifyErrorKind::OutOfBounds {
                    start,
                    end,
                    frame_len: self.frame.len(),
                },
            ));
        }
        if align > 1 && !start.is_multiple_of(align) {
            return Err(self.fail(path, VerifyErrorKind::Misaligned { start, align }));
        }
        self.paths.push(path.to_string());
        self.regions.push(Region {
            start,
            end,
            path_id: self.paths.len() - 1,
        });
        Ok(start)
    }

    /// Walk one field whose inline bytes start at frame offset `at`.
    fn walk_field(&mut self, path: &str, at: usize, ty: &TypeDesc) -> Result<(), VerifyError> {
        self.fields_walked += 1;
        match ty {
            TypeDesc::Prim { .. } => Ok(()),
            TypeDesc::Str => {
                let stored = self.read_u32(at);
                let off = self.read_u32(at + 4);
                if off == 0 {
                    if stored != 0 {
                        return Err(
                            self.fail(path, VerifyErrorKind::ZeroOffsetNonZeroLen { len: stored })
                        );
                    }
                    return Ok(());
                }
                if stored == 0 || !stored.is_multiple_of(4) {
                    return Err(self.fail(path, VerifyErrorKind::BadStringStored { stored }));
                }
                self.claim_region(path, at, off, stored as usize, 1)?;
                Ok(())
            }
            TypeDesc::Vec(elem) => {
                let len = self.read_u32(at);
                let off = self.read_u32(at + 4);
                if off == 0 {
                    if len != 0 {
                        return Err(self.fail(path, VerifyErrorKind::ZeroOffsetNonZeroLen { len }));
                    }
                    return Ok(());
                }
                if len == 0 {
                    return Err(self.fail(path, VerifyErrorKind::ZeroLenNonZeroOffset));
                }
                let elem_size = elem.size();
                let bytes = (len as usize).checked_mul(elem_size).ok_or_else(|| {
                    self.fail(path, VerifyErrorKind::LengthOverflow { len, elem_size })
                })?;
                let start = self.claim_region(path, at, off, bytes, elem.align())?;
                // Recurse into element skeletons only when they can carry
                // indirection; a byte/float payload is a leaf.
                if elem.has_indirection() {
                    for i in 0..len as usize {
                        let elem_path = crate::path::index_path(path, i);
                        self.walk_field(&elem_path, start + i * elem_size, elem)?;
                    }
                }
                Ok(())
            }
            TypeDesc::Struct(desc) => {
                for field in &desc.fields {
                    if !field.ty.has_indirection() {
                        self.fields_walked += 1;
                        continue;
                    }
                    // Built through the shared path helpers so a printed
                    // diagnostic always parses back as a `FieldPath`.
                    let field_path = crate::path::child_path(path, &field.name);
                    self.walk_field(&field_path, at + field.offset, &field.ty)?;
                }
                Ok(())
            }
            TypeDesc::Array { elem, len } => {
                if elem.has_indirection() {
                    for i in 0..*len {
                        let elem_path = crate::path::index_path(path, i);
                        self.walk_field(&elem_path, at + i * elem.size(), elem)?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Verify the structure of one raw frame against `schema`.
///
/// On success the frame is proved safe to adopt: every reachable content
/// region is in-bounds, aligned, and disjoint, and the frame length is
/// exactly the whole-message size a conforming publisher would have
/// produced. On failure the returned [`VerifyError`] names the failing
/// field path.
///
/// # Errors
///
/// Any [`VerifyErrorKind`]; the first violation encountered in declaration
/// order is reported.
pub fn verify_frame(schema: &MessageSchema, frame: &[u8]) -> Result<VerifyReport, VerifyError> {
    let whole = "<whole-message>";
    if frame.len() < schema.root.size {
        return Err(VerifyError {
            path: whole.to_string(),
            kind: VerifyErrorKind::FrameTooSmall {
                need: schema.root.size,
                have: frame.len(),
            },
        });
    }
    if frame.len() > schema.max_size {
        return Err(VerifyError {
            path: whole.to_string(),
            kind: VerifyErrorKind::FrameTooLarge {
                max_size: schema.max_size,
                have: frame.len(),
            },
        });
    }
    let mut w = Walker {
        frame,
        regions: Vec::new(),
        paths: Vec::new(),
        fields_walked: 0,
    };
    // The root skeleton occupies [0, size) and counts as a claimed region
    // so no content region may overlap it.
    w.paths.push("<skeleton>".to_string());
    w.regions.push(Region {
        start: 0,
        end: schema.root.size,
        path_id: 0,
    });
    w.walk_field("", 0, &TypeDesc::Struct(schema.root.clone()))?;

    // Disjointness: sort by start and check consecutive pairs. Regions were
    // individually proved in-bounds during the walk.
    let mut order: Vec<usize> = (0..w.regions.len()).collect();
    order.sort_by_key(|&i| (w.regions[i].start, w.regions[i].end));
    let mut covered = 0usize;
    let mut max_end = 0usize;
    for pair in order.windows(2) {
        let (a, b) = (&w.regions[pair[0]], &w.regions[pair[1]]);
        if b.start < a.end {
            return Err(VerifyError {
                path: w.paths[b.path_id].clone(),
                kind: VerifyErrorKind::Overlap {
                    other: w.paths[a.path_id].clone(),
                },
            });
        }
    }
    for r in &w.regions {
        covered += r.end - r.start;
        max_end = max_end.max(r.end);
    }
    // A conforming publisher's whole message ends exactly at the last
    // appended region (append-only growth), so the frame length must be
    // reconstructed precisely.
    if max_end != frame.len() {
        return Err(VerifyError {
            path: whole.to_string(),
            kind: VerifyErrorKind::SizeMismatch {
                used: max_end,
                frame_len: frame.len(),
            },
        });
    }
    Ok(VerifyReport {
        fields_walked: w.fields_walked,
        regions: w.regions.len() - 1,
        covered_bytes: covered,
        gap_bytes: frame.len() - covered,
    })
}

/// Convenience: verify a frame for a reflectable message type.
///
/// # Errors
///
/// As [`verify_frame`].
pub fn verify_frame_for<T: SfmMessage + SfmReflect>(
    frame: &[u8],
) -> Result<VerifyReport, VerifyError> {
    verify_frame(&MessageSchema::of::<T>(), frame)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SfmBox, SfmPod, SfmValidate};

    #[repr(C)]
    #[derive(Debug)]
    struct Inner {
        x: f64,
        name: SfmString,
    }
    unsafe impl SfmPod for Inner {}
    impl SfmValidate for Inner {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), crate::SfmError> {
            self.name.validate_in(base, len)
        }
    }
    impl SfmReflect for Inner {
        fn type_desc() -> TypeDesc {
            TypeDesc::Struct(StructDesc {
                name: "test/Inner".into(),
                size: core::mem::size_of::<Inner>(),
                align: core::mem::align_of::<Inner>(),
                fields: vec![
                    FieldDesc {
                        name: "x".into(),
                        offset: 0,
                        ty: f64::type_desc(),
                    },
                    FieldDesc {
                        name: "name".into(),
                        offset: 8,
                        ty: SfmString::type_desc(),
                    },
                ],
            })
        }
    }

    #[repr(C)]
    #[derive(Debug)]
    struct Outer {
        tag: SfmString,
        floats: SfmVec<f64>,
        inners: SfmVec<Inner>,
    }
    unsafe impl SfmPod for Outer {}
    impl SfmValidate for Outer {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), crate::SfmError> {
            self.tag.validate_in(base, len)?;
            self.floats.validate_in(base, len)?;
            self.inners.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for Outer {
        fn type_name() -> &'static str {
            "test/Outer"
        }
        fn max_size() -> usize {
            4096
        }
    }
    impl SfmReflect for Outer {
        fn type_desc() -> TypeDesc {
            TypeDesc::Struct(StructDesc {
                name: "test/Outer".into(),
                size: core::mem::size_of::<Outer>(),
                align: core::mem::align_of::<Outer>(),
                fields: vec![
                    FieldDesc {
                        name: "tag".into(),
                        offset: 0,
                        ty: SfmString::type_desc(),
                    },
                    FieldDesc {
                        name: "floats".into(),
                        offset: 8,
                        ty: SfmVec::<f64>::type_desc(),
                    },
                    FieldDesc {
                        name: "inners".into(),
                        offset: 16,
                        ty: SfmVec::<Inner>::type_desc(),
                    },
                ],
            })
        }
    }

    fn valid_frame() -> Vec<u8> {
        let mut m = SfmBox::<Outer>::new();
        m.tag.assign("outer");
        m.floats.assign(&[1.0, 2.0, 3.0]);
        m.inners.resize(2);
        m.inners[0].x = 4.5;
        m.inners[0].name.assign("first");
        m.inners[1].name.assign("second!");
        m.publish_handle().as_slice().to_vec()
    }

    fn schema() -> MessageSchema {
        MessageSchema::of::<Outer>()
    }

    #[test]
    fn valid_frame_passes_with_report() {
        let frame = valid_frame();
        let report = verify_frame(&schema(), &frame).unwrap();
        // tag + floats + inners + 2 element names = 5 content regions.
        assert_eq!(report.regions, 5);
        assert!(report.covered_bytes <= frame.len());
        assert_eq!(report.covered_bytes + report.gap_bytes, frame.len());
        assert!(report.fields_walked >= 5);
    }

    #[test]
    fn empty_message_is_exactly_the_skeleton() {
        let m = SfmBox::<Outer>::new();
        let frame = m.publish_handle().as_slice().to_vec();
        assert_eq!(frame.len(), core::mem::size_of::<Outer>());
        let report = verify_frame(&schema(), &frame).unwrap();
        assert_eq!(report.regions, 0);
        assert_eq!(report.gap_bytes, 0);
    }

    #[test]
    fn truncated_and_oversized_frames_rejected() {
        let frame = valid_frame();
        let err = verify_frame(&schema(), &frame[..8]).unwrap_err();
        assert!(matches!(err.kind, VerifyErrorKind::FrameTooSmall { .. }));
        let big = vec![0u8; Outer::max_size() + 1];
        let err = verify_frame(&schema(), &big).unwrap_err();
        assert!(matches!(err.kind, VerifyErrorKind::FrameTooLarge { .. }));
    }

    #[test]
    fn out_of_bounds_offset_names_the_field() {
        let mut frame = valid_frame();
        // Poison the tag's offset word (bytes 4..8).
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = verify_frame(&schema(), &frame).unwrap_err();
        assert_eq!(err.path, "tag");
        assert!(matches!(err.kind, VerifyErrorKind::OutOfBounds { .. }));
        assert!(err.to_string().contains("tag"), "{err}");
    }

    #[test]
    fn nested_element_corruption_names_the_indexed_path() {
        let frame = valid_frame();
        // Find the inners content region: read the pair at offset 16.
        let len = u32::from_ne_bytes(frame[16..20].try_into().unwrap()) as usize;
        let off = u32::from_ne_bytes(frame[20..24].try_into().unwrap()) as usize;
        assert_eq!(len, 2);
        let elems = 20 + off; // offset is relative to the off word at 20
        let elem_size = core::mem::size_of::<Inner>();
        // Corrupt the second element's name offset (skeleton: x at 0,
        // name at 8 → off word at 12).
        let poison = elems + elem_size + 12;
        let mut bad = frame.clone();
        bad[poison..poison + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = verify_frame(&schema(), &bad).unwrap_err();
        assert_eq!(err.path, "inners[1].name");
    }

    #[test]
    fn overlap_with_skeleton_rejected() {
        let mut frame = valid_frame();
        // Point the floats content back into the skeleton: off word at 12.
        // Self-relative target = 0 means "at the off word itself".
        frame[12..16].copy_from_slice(&8u32.to_le_bytes());
        let err = verify_frame(&schema(), &frame).unwrap_err();
        // Either an overlap with the skeleton or misalignment, depending on
        // the address — both are structural rejections; overlap expected
        // here because offset 24 is 8-aligned.
        assert!(
            matches!(
                err.kind,
                VerifyErrorKind::Overlap { .. } | VerifyErrorKind::Misaligned { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn misaligned_float_region_rejected() {
        let mut frame = valid_frame();
        let off = u32::from_ne_bytes(frame[12..16].try_into().unwrap());
        // Shift the floats region by 4: still in-bounds, no longer 8-aligned.
        frame[12..16].copy_from_slice(&(off - 4).to_le_bytes());
        let err = verify_frame(&schema(), &frame).unwrap_err();
        assert!(
            matches!(
                err.kind,
                VerifyErrorKind::Misaligned { .. } | VerifyErrorKind::Overlap { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut frame = valid_frame();
        frame.extend_from_slice(&[0xAA; 16]);
        let err = verify_frame(&schema(), &frame).unwrap_err();
        assert!(matches!(err.kind, VerifyErrorKind::SizeMismatch { .. }));
    }

    #[test]
    fn zero_offset_nonzero_len_rejected() {
        let mut frame = valid_frame();
        // floats pair at 8: len nonzero, off = 0.
        frame[12..16].copy_from_slice(&0u32.to_le_bytes());
        let err = verify_frame(&schema(), &frame).unwrap_err();
        assert!(matches!(
            err.kind,
            VerifyErrorKind::ZeroOffsetNonZeroLen { .. }
        ));
        assert_eq!(err.path, "floats");
    }

    #[test]
    fn length_overflow_rejected() {
        let mut frame = valid_frame();
        frame[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = verify_frame(&schema(), &frame).unwrap_err();
        assert!(
            matches!(
                err.kind,
                VerifyErrorKind::LengthOverflow { .. } | VerifyErrorKind::OutOfBounds { .. }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn bad_string_stored_rejected() {
        let mut frame = valid_frame();
        // tag stored word at 0: make it a non-multiple of 4.
        frame[0..4].copy_from_slice(&7u32.to_le_bytes());
        let err = verify_frame(&schema(), &frame).unwrap_err();
        assert!(matches!(err.kind, VerifyErrorKind::BadStringStored { .. }));
    }

    #[test]
    fn verifier_is_stricter_than_validate() {
        // Everything the verifier accepts must be adoptable: cross-check on
        // the valid frame.
        let frame = valid_frame();
        verify_frame(&schema(), &frame).unwrap();
        let mut rb = crate::SfmRecvBuffer::<Outer>::new(frame.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&frame);
        let msg = rb.finish().unwrap();
        assert_eq!(msg.tag.as_str(), "outer");
        assert_eq!(msg.inners[1].name.as_str(), "second!");
    }

    #[test]
    fn type_desc_metrics() {
        let d = SfmVec::<Inner>::type_desc();
        assert_eq!(d.size(), 8);
        assert_eq!(d.align(), 4);
        assert!(d.has_indirection());
        assert!(!f64::type_desc().has_indirection());
        assert_eq!(<[f64; 9]>::type_desc().size(), 72);
        assert_eq!(<[f64; 9]>::type_desc().align(), 8);
    }

    #[test]
    fn schema_of_matches_layout() {
        let s = schema();
        assert_eq!(s.type_name(), "test/Outer");
        assert_eq!(s.root.size, core::mem::size_of::<Outer>());
        assert_eq!(s.max_size, Outer::max_size());
    }
}
