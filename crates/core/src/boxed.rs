//! Smart pointers implementing the paper's message life cycle (§4.2).
//!
//! * [`SfmBox`] — the developer's owned message object on the publisher
//!   side. Creating one plays the role of the overloaded global `new`
//!   operator (allocate `max_size`, register with the manager, state
//!   `Allocated`); dropping it plays the role of the overloaded `delete`
//!   (release the record; the bytes survive while any transmission-queue
//!   reference exists).
//! * [`SfmShared`] — the *object pointer* handed to subscriber callbacks
//!   (the `Image::ConstPtr` of Fig. 3). Cloning it is cheap; the record is
//!   released when the last clone drops.
//! * [`PublishedBuffer`] — the *buffer pointer* copy handed to the ROS
//!   transmission queue by `publish` (Fig. 8).

use crate::alloc::SfmAlloc;
use crate::manager::mm;
use crate::message::SfmMessage;
use core::marker::PhantomData;
use core::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Owned, manager-registered serialization-free message (publisher side).
///
/// Dereferences to the skeleton type `T`; field access *is* plain struct
/// field access — this is the transparency property of the SFM format.
///
/// ```
/// # use rossf_sfm::*;
/// # #[repr(C)] pub struct M { pub v: SfmVec<u8> }
/// # unsafe impl SfmPod for M {}
/// # impl SfmValidate for M {
/// #     fn validate_in(&self, b: usize, l: usize) -> Result<(), SfmError> {
/// #         self.v.validate_in(b, l)
/// #     }
/// # }
/// # unsafe impl SfmMessage for M {
/// #     fn type_name() -> &'static str { "t/M" }
/// #     fn max_size() -> usize { 1024 }
/// # }
/// let mut msg = SfmBox::<M>::new();
/// msg.v.resize(16);          // just like `img.data.resize(...)` in ROS
/// msg.v[0] = 42;
/// assert_eq!(msg.v[0], 42);
/// ```
pub struct SfmBox<T: SfmMessage> {
    buffer: Arc<SfmAlloc>,
    _marker: PhantomData<T>,
}

// SAFETY: the buffer is Send+Sync and T is a pod skeleton; &SfmBox only
// permits reads, &mut SfmBox is unique.
unsafe impl<T: SfmMessage> Send for SfmBox<T> {}
unsafe impl<T: SfmMessage> Sync for SfmBox<T> {}

impl<T: SfmMessage> SfmBox<T> {
    /// Allocate a new message at its type's `max_size`, zero-initialized,
    /// and register it with the global manager (state: `Allocated`).
    ///
    /// # Panics
    ///
    /// Panics if `T::max_size() < T::SKELETON_SIZE` (an IDL configuration
    /// error caught eagerly).
    pub fn new() -> Self {
        let max = T::max_size();
        assert!(
            max >= T::SKELETON_SIZE,
            "max_size for {} ({max}) is smaller than its skeleton ({})",
            T::type_name(),
            T::SKELETON_SIZE
        );
        let buffer = Arc::new(SfmAlloc::new(max));
        // The overloaded `new` zero-initializes only the skeleton — the
        // all-zero skeleton is the valid empty message; content regions
        // are written in full when fields are assigned.
        buffer.zero_prefix(T::SKELETON_SIZE);
        mm().register(Arc::clone(&buffer), T::SKELETON_SIZE, T::type_name());
        SfmBox {
            buffer,
            _marker: PhantomData,
        }
    }

    /// Build an owned message inside a caller-provided allocation — the
    /// *loaned publication* constructor. The skeleton is zeroed and the
    /// record registered exactly as [`SfmBox::new`] does (the sanitizer
    /// logs [`RegisterLoaned`](crate::LifecycleOp::RegisterLoaned)); the
    /// only difference is where the bytes live — typically a shared-memory
    /// segment's payload area wrapped by [`SfmAlloc::from_extern`], so
    /// that publishing later needs no copy at all.
    ///
    /// # Safety
    ///
    /// The allocation's region must be valid for **writes** of its full
    /// capacity (stronger than the read-validity [`SfmAlloc::from_extern`]
    /// requires — a read-only mapping must never be passed here), and no
    /// other alias may access the region while this box is being built.
    ///
    /// # Panics
    ///
    /// Panics if the allocation's capacity is smaller than
    /// `T::max_size()` — fields grow toward `max_size` and must never
    /// overrun the region.
    pub unsafe fn from_alloc(buffer: Arc<SfmAlloc>) -> Self {
        let max = T::max_size();
        assert!(
            max >= T::SKELETON_SIZE,
            "max_size for {} ({max}) is smaller than its skeleton ({})",
            T::type_name(),
            T::SKELETON_SIZE
        );
        assert!(
            buffer.capacity() >= max,
            "loaned region for {} holds {} bytes, max_size is {max}",
            T::type_name(),
            buffer.capacity()
        );
        buffer.zero_prefix(T::SKELETON_SIZE);
        mm().register_loaned(Arc::clone(&buffer), T::SKELETON_SIZE, T::type_name());
        SfmBox {
            buffer,
            _marker: PhantomData,
        }
    }

    /// Base address of the whole message.
    #[inline]
    pub fn base(&self) -> usize {
        self.buffer.base()
    }

    /// Current size of the whole message (skeleton + appended content).
    pub fn whole_len(&self) -> usize {
        mm().used_size(self.base())
            .expect("live SfmBox always has a record")
    }

    /// Take the buffer-pointer copy that `publish` hands to the
    /// transmission queue, and transition the message to `Published`.
    ///
    /// The returned [`PublishedBuffer`] keeps the bytes alive independently
    /// of this `SfmBox` — dropping the box after publishing is safe and
    /// copy-free (Fig. 8).
    pub fn publish_handle(&self) -> PublishedBuffer {
        let len = self.whole_len();
        mm().mark_published(self.base());
        PublishedBuffer {
            buffer: Arc::clone(&self.buffer),
            len,
        }
    }

    /// Convert into the shared (subscriber-style) object pointer without
    /// copying. Useful when publisher code wants to retain the message
    /// after publishing, or to feed intra-process subscribers.
    pub fn into_shared(self) -> SfmShared<T> {
        let core = SharedCore {
            buffer: Arc::clone(&self.buffer),
            base: self.base(),
            len: self.whole_len(),
            owns_record: true,
            _marker: PhantomData,
        };
        // The record now belongs to the SharedCore; forget self so Drop
        // does not release it.
        core::mem::forget(self);
        SfmShared {
            core: Arc::new(core),
        }
    }
}

impl<T: SfmMessage> Default for SfmBox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: SfmMessage> Deref for SfmBox<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: base is 8-aligned, at least SKELETON_SIZE bytes, zeroed at
        // birth; T: SfmPod accepts any initialized bytes.
        unsafe { &*(self.buffer.as_ptr() as *const T) }
    }
}

impl<T: SfmMessage> DerefMut for SfmBox<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as Deref; &mut self guarantees uniqueness of the object
        // handle (queue/shared handles only read after publish).
        unsafe { &mut *(self.buffer.as_ptr() as *mut T) }
    }
}

impl<T: SfmMessage> Clone for SfmBox<T> {
    /// Deep copy — the paper's generated copy constructor: "find the current
    /// size of the whole message from the message manager and copy the
    /// message" (§4.3.1). Valid because all offsets are self-relative.
    fn clone(&self) -> Self {
        let used = self.whole_len();
        let new = SfmBox::<T>::new();
        // SAFETY: distinct allocations, both at least `used` long
        // (capacity == max_size for both).
        unsafe {
            core::ptr::copy_nonoverlapping(self.buffer.as_ptr(), new.buffer.as_ptr(), used);
        }
        // Record the copied content length with the manager.
        if used > T::SKELETON_SIZE {
            mm().expand(new.base(), used - T::SKELETON_SIZE, 1)
                .expect("copy target has identical capacity");
        }
        new
    }
}

impl<T: SfmMessage> Drop for SfmBox<T> {
    fn drop(&mut self) {
        // The overloaded `delete`: the manager releases the record (and its
        // buffer-pointer clone). The bytes survive while the transmission
        // queue still holds a PublishedBuffer.
        mm().release(self.base());
    }
}

impl<T: SfmMessage + core::fmt::Debug> core::fmt::Debug for SfmBox<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("SfmBox").field(&**self).finish()
    }
}

struct SharedCore<T: SfmMessage> {
    buffer: Arc<SfmAlloc>,
    base: usize,
    len: usize,
    /// Whether this handle owns a manager record. Network-adopted messages
    /// do; intra-process views created from a `PublishedBuffer` share the
    /// publisher's record instead of registering a duplicate.
    owns_record: bool,
    _marker: PhantomData<T>,
}

impl<T: SfmMessage> Drop for SharedCore<T> {
    fn drop(&mut self) {
        // Last object pointer gone → manager releases the record; the
        // buffer is freed when its last Arc clone drops (Fig. 9).
        if self.owns_record {
            mm().release(self.base);
        }
    }
}

/// Shared, read-only handle to a serialization-free message — the *object
/// pointer* delivered to subscriber callbacks.
///
/// `Clone` is a cheap reference-count bump, matching the paper: "the
/// developer's code can add references of the message object by creating
/// copies of the object pointer".
pub struct SfmShared<T: SfmMessage> {
    core: Arc<SharedCore<T>>,
}

// SAFETY: read-only view of Send+Sync storage.
unsafe impl<T: SfmMessage> Send for SfmShared<T> {}
unsafe impl<T: SfmMessage> Sync for SfmShared<T> {}

impl<T: SfmMessage> SfmShared<T> {
    pub(crate) fn from_parts(buffer: Arc<SfmAlloc>, len: usize) -> Self {
        let base = buffer.base();
        SfmShared {
            core: Arc::new(SharedCore {
                buffer,
                base,
                len,
                owns_record: true,
                _marker: PhantomData,
            }),
        }
    }

    /// Zero-copy view of an already-published buffer within the same
    /// process (intra-process transport, related-work §2.1).
    ///
    /// The view shares the publisher's memory and does **not** own a
    /// manager record, so the publisher's own life cycle is unaffected.
    ///
    /// # Errors
    ///
    /// [`SfmError`](crate::SfmError) variants as for
    /// [`SfmRecvBuffer`](crate::SfmRecvBuffer): the frame must be at least
    /// a skeleton and structurally valid.
    pub fn from_published(frame: &PublishedBuffer) -> Result<Self, crate::SfmError> {
        if frame.len < T::SKELETON_SIZE {
            return Err(crate::SfmError::FrameTooSmall {
                expected: T::SKELETON_SIZE,
                actual: frame.len,
            });
        }
        let base = frame.buffer.base();
        // SAFETY: aligned pod view over an initialized, published buffer.
        let view = unsafe { &*(frame.buffer.as_ptr() as *const T) };
        view.validate_in(base, frame.len)?;
        // Life-cycle notation: the subscriber now shares the publisher's
        // allocation (the Published state gains a reference; Destructed is
        // reached when the last Arc drops).
        mm().note_shared_adoption(base);
        Ok(SfmShared {
            core: Arc::new(SharedCore {
                buffer: Arc::clone(&frame.buffer),
                base,
                len: frame.len,
                owns_record: false,
                _marker: PhantomData,
            }),
        })
    }

    /// Adopt an externally owned buffer (typically a shared-memory mapped
    /// frame wrapped by [`SfmAlloc::from_extern`]) as a subscriber-side
    /// message **without copying**: the frame is validated in place,
    /// registered with the global manager in the `Published` state, and the
    /// returned handle's drop releases the record — which in turn drops the
    /// buffer's external guard (unmapping / refcount release).
    ///
    /// This is the shared-memory analogue of
    /// [`SfmRecvBuffer::finish`](crate::SfmRecvBuffer::finish): the same
    /// validation and adoption sequence, minus the receive-time copy.
    ///
    /// # Errors
    ///
    /// * [`SfmError::FrameTooSmall`](crate::SfmError::FrameTooSmall) if
    ///   `len` cannot hold the skeleton.
    /// * [`SfmError::FrameTooLarge`](crate::SfmError::FrameTooLarge) if
    ///   `len` exceeds the type's `max_size`.
    /// * Validation errors from `validate_in` (malformed offsets).
    pub fn adopt_extern(buffer: Arc<SfmAlloc>, len: usize) -> Result<Self, crate::SfmError> {
        if len < T::SKELETON_SIZE {
            return Err(crate::SfmError::FrameTooSmall {
                expected: T::SKELETON_SIZE,
                actual: len,
            });
        }
        if len > T::max_size() {
            return Err(crate::SfmError::FrameTooLarge {
                max_size: T::max_size(),
                actual: len,
            });
        }
        let base = buffer.base();
        // SAFETY: aligned pod view over the initialized received frame.
        let view = unsafe { &*(buffer.as_ptr() as *const T) };
        view.validate_in(base, len)?;
        mm().adopt(Arc::clone(&buffer), len, T::type_name());
        Ok(SfmShared::from_parts(buffer, len))
    }

    /// Size of the whole message.
    #[inline]
    pub fn whole_len(&self) -> usize {
        self.core.len
    }

    /// Base address of the whole message.
    #[inline]
    pub fn base(&self) -> usize {
        self.core.base
    }

    /// The raw whole-message bytes (e.g. for relaying without access to the
    /// typed fields).
    pub fn as_bytes(&self) -> &[u8] {
        self.core.buffer.slice(self.core.len)
    }

    /// Buffer-pointer copy for re-publishing this message verbatim on
    /// another topic — still zero-copy.
    pub fn publish_handle(&self) -> PublishedBuffer {
        mm().mark_published(self.core.base);
        PublishedBuffer {
            buffer: Arc::clone(&self.core.buffer),
            len: self.core.len,
        }
    }

    /// Number of object-pointer clones currently alive.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.core)
    }
}

impl<T: SfmMessage> Clone for SfmShared<T> {
    fn clone(&self) -> Self {
        SfmShared {
            core: Arc::clone(&self.core),
        }
    }
}

impl<T: SfmMessage> Deref for SfmShared<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: as SfmBox::deref; adopted frames were validated by
        // SfmRecvBuffer::finish before construction.
        unsafe { &*(self.core.buffer.as_ptr() as *const T) }
    }
}

impl<T: SfmMessage + core::fmt::Debug> core::fmt::Debug for SfmShared<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("SfmShared").field(&**self).finish()
    }
}

/// The buffer-pointer copy held by the ROS transmission queue: the whole
/// message as raw wire bytes plus a reference count keeping them alive.
#[derive(Clone)]
pub struct PublishedBuffer {
    buffer: Arc<SfmAlloc>,
    len: usize,
}

impl PublishedBuffer {
    /// Wire bytes of the whole message — written to the transport verbatim
    /// (this is what "serialization-free" means on the send path).
    pub fn as_slice(&self) -> &[u8] {
        self.buffer.slice(self.len)
    }

    /// Length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if empty (never the case for a real message).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Birth timestamp of the backing allocation on the tracing clock
    /// (0 when tracing was not armed when the buffer was allocated). The
    /// transport uses this to anchor the `alloc` stage span without any
    /// extra bookkeeping on the publish path.
    #[inline]
    pub fn alloc_ns(&self) -> u64 {
        self.buffer.born_ns()
    }
}

impl core::fmt::Debug for PublishedBuffer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("PublishedBuffer")
            .field("len", &self.len)
            .field("refs", &Arc::strong_count(&self.buffer))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageState, SfmError, SfmPod, SfmString, SfmValidate, SfmVec};

    #[repr(C)]
    #[derive(Debug)]
    struct Img {
        encoding: SfmString,
        height: u32,
        width: u32,
        data: SfmVec<u8>,
    }
    unsafe impl SfmPod for Img {}
    impl SfmValidate for Img {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.encoding.validate_in(base, len)?;
            self.data.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for Img {
        fn type_name() -> &'static str {
            "test/Img"
        }
        fn max_size() -> usize {
            2048
        }
    }

    fn make_img() -> SfmBox<Img> {
        let mut img = SfmBox::<Img>::new();
        img.encoding.assign("rgb8");
        img.height = 10;
        img.width = 10;
        img.data.resize(300);
        for i in 0..300 {
            img.data[i] = (i % 251) as u8;
        }
        img
    }

    #[test]
    fn new_registers_allocated_state() {
        let img = SfmBox::<Img>::new();
        let info = mm().info(img.base()).unwrap();
        assert_eq!(info.state, MessageState::Allocated);
        assert_eq!(info.used, Img::SKELETON_SIZE);
        assert_eq!(info.capacity, 2048);
        assert_eq!(info.type_name, "test/Img");
    }

    #[test]
    fn whole_len_grows_with_content() {
        let img = make_img();
        // skeleton + "rgb8" (8) + 300 data
        assert_eq!(img.whole_len(), Img::SKELETON_SIZE + 8 + 300);
    }

    #[test]
    fn publish_transitions_state_and_pins_bytes() {
        let img = make_img();
        let base = img.base();
        let frame = img.publish_handle();
        assert_eq!(mm().info(base).unwrap().state, MessageState::Published);
        assert_eq!(frame.len(), img.whole_len());

        // Developer releases the message object before transmission ends.
        drop(img);
        assert!(mm().info(base).is_none(), "record gone after delete");
        // Bytes still readable through the queue's buffer pointer.
        assert_eq!(frame.as_slice().len(), frame.len());
        assert!(!frame.is_empty());
        drop(frame); // memory actually freed (Destructed)
    }

    #[test]
    fn drop_before_publish_frees_immediately() {
        let img = make_img();
        let base = img.base();
        drop(img);
        assert!(mm().info(base).is_none());
    }

    #[test]
    fn deep_clone_copies_content_and_registers() {
        let img = make_img();
        let copy = img.clone();
        assert_ne!(img.base(), copy.base());
        assert_eq!(copy.encoding.as_str(), "rgb8");
        assert_eq!(copy.height, 10);
        assert_eq!(copy.data.as_slice(), img.data.as_slice());
        assert_eq!(copy.whole_len(), img.whole_len());
        // The copy is independent: growing it does not affect the original.
        drop(img);
        assert_eq!(copy.data[5], 5);
    }

    #[test]
    fn into_shared_preserves_record_and_content() {
        let img = make_img();
        let base = img.base();
        let shared = img.into_shared();
        assert!(mm().info(base).is_some(), "record still owned by shared");
        assert_eq!(shared.encoding.as_str(), "rgb8");
        assert_eq!(shared.whole_len(), shared.as_bytes().len());
        let s2 = shared.clone();
        assert_eq!(s2.ref_count(), 2);
        drop(shared);
        assert!(mm().info(base).is_some());
        drop(s2);
        assert!(mm().info(base).is_none(), "record released by last clone");
    }

    #[test]
    fn shared_republish_is_zero_copy() {
        let img = make_img();
        let base = img.base();
        let shared = img.into_shared();
        let frame = shared.publish_handle();
        // Same underlying memory — no copy happened.
        assert_eq!(frame.as_slice().as_ptr() as usize, base);
    }

    #[test]
    fn debug_impls() {
        let img = make_img();
        assert!(format!("{img:?}").contains("SfmBox"));
        let frame = img.publish_handle();
        assert!(format!("{frame:?}").contains("PublishedBuffer"));
        let shared = img.into_shared();
        assert!(format!("{shared:?}").contains("SfmShared"));
    }

    #[test]
    fn from_alloc_builds_in_caller_region_and_publishes_zero_copy() {
        // A u64 backing store stands in for a shm segment's payload area:
        // externally owned, 8-aligned, writable.
        let mut words = vec![0u64; Img::max_size() / 8];
        let ptr = words.as_mut_ptr() as *mut u8;
        let buffer =
            Arc::new(unsafe { SfmAlloc::from_extern(ptr, Img::max_size(), Box::new(words)) });
        let mut img = unsafe { SfmBox::<Img>::from_alloc(Arc::clone(&buffer)) };
        assert_eq!(img.base(), buffer.base(), "message lives in the region");
        img.encoding.assign("rgb8");
        img.height = 2;
        img.data.resize(32);
        img.data[7] = 0x5A;
        assert_eq!(img.whole_len(), Img::SKELETON_SIZE + 8 + 32);
        let frame = img.publish_handle();
        assert_eq!(
            frame.as_slice().as_ptr() as usize,
            buffer.base(),
            "publish hands out the region itself — no copy"
        );
        assert_eq!(frame.as_slice()[frame.len() - 32 + 7], 0x5A);
        drop(img);
        drop(frame);
    }

    #[test]
    #[should_panic(expected = "loaned region")]
    fn from_alloc_rejects_undersized_region() {
        let buffer = Arc::new(SfmAlloc::new(Img::max_size() / 2));
        let _ = unsafe { SfmBox::<Img>::from_alloc(buffer) };
    }

    #[test]
    fn default_equals_new() {
        let a: SfmBox<Img> = SfmBox::default();
        assert_eq!(a.whole_len(), Img::SKELETON_SIZE);
    }

    #[test]
    fn send_sync_bounds() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SfmBox<Img>>();
        assert_send_sync::<SfmShared<Img>>();
        assert_send_sync::<PublishedBuffer>();
    }
}
