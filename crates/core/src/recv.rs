//! Receiving a serialization-free message without copies (§4.2, Fig. 9).
//!
//! The transport knows the incoming frame length before the payload bytes.
//! [`SfmRecvBuffer`] allocates the message's final resting place up front so
//! the socket read lands directly in it; [`SfmRecvBuffer::finish`] is the
//! paper's "dummy de-serialization routine": it validates the skeleton,
//! registers the record (state `Published`), and hands out the object
//! pointer. No byte is ever copied after the socket read.

use crate::alloc::SfmAlloc;
use crate::boxed::SfmShared;
use crate::error::SfmError;
use crate::manager::mm;
use crate::message::SfmMessage;
use core::marker::PhantomData;
use std::sync::Arc;

/// In-flight receive buffer for one frame of message type `T`.
pub struct SfmRecvBuffer<T: SfmMessage> {
    buffer: SfmAlloc,
    len: usize,
    // fn() -> T keeps the buffer Send/Sync regardless of T's auto traits;
    // T is only a type-level tag here.
    _marker: PhantomData<fn() -> T>,
}

impl<T: SfmMessage> SfmRecvBuffer<T> {
    /// Prepare to receive a frame of `frame_len` bytes.
    ///
    /// # Errors
    ///
    /// * [`SfmError::FrameTooSmall`] — the frame cannot contain `T`'s
    ///   skeleton.
    /// * [`SfmError::FrameTooLarge`] — the frame exceeds `T::max_size()`,
    ///   so it could not have been produced by a conforming publisher.
    pub fn new(frame_len: usize) -> Result<Self, SfmError> {
        if frame_len < T::SKELETON_SIZE {
            return Err(SfmError::FrameTooSmall {
                expected: T::SKELETON_SIZE,
                actual: frame_len,
            });
        }
        if frame_len > T::max_size() {
            return Err(SfmError::FrameTooLarge {
                max_size: T::max_size(),
                actual: frame_len,
            });
        }
        // Adopted messages are read-only (`SfmShared` has no `&mut`
        // surface), so they can never grow: the allocation only needs the
        // frame itself, not the type's full `max_size`.
        Ok(SfmRecvBuffer {
            buffer: SfmAlloc::new(crate::align_up(frame_len.max(1), 8)),
            len: frame_len,
            _marker: PhantomData,
        })
    }

    /// The destination slice the transport reads the payload into.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: [0, len) is within capacity (checked in `new`); we hold
        // the unique handle.
        unsafe { core::slice::from_raw_parts_mut(self.buffer.as_ptr(), self.len) }
    }

    /// Frame length this buffer expects.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`: frames contain at least a skeleton.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Validate and adopt the filled buffer, producing the subscriber-side
    /// object pointer.
    ///
    /// # Errors
    ///
    /// [`SfmError::CorruptOffset`] if any offset stored in the frame points
    /// outside the frame (corrupt or schema-mismatched data).
    pub fn finish(self) -> Result<SfmShared<T>, SfmError> {
        let base = self.buffer.base();
        // SAFETY: aligned, zero-padded to max_size, fully initialized in
        // [0, len); T is pod so the cast view is sound. Offsets are checked
        // *before* any typed field access by user code.
        let view = unsafe { &*(self.buffer.as_ptr() as *const T) };
        view.validate_in(base, self.len)?;
        let buffer = Arc::new(self.buffer);
        mm().adopt(Arc::clone(&buffer), self.len, T::type_name());
        Ok(SfmShared::from_parts(buffer, self.len))
    }
}

impl<T: SfmMessage> core::fmt::Debug for SfmRecvBuffer<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SfmRecvBuffer")
            .field("type", &T::type_name())
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MessageState, SfmBox, SfmPod, SfmString, SfmValidate, SfmVec};

    #[repr(C)]
    #[derive(Debug)]
    struct Img {
        encoding: SfmString,
        height: u32,
        width: u32,
        data: SfmVec<u8>,
    }
    unsafe impl SfmPod for Img {}
    impl SfmValidate for Img {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.encoding.validate_in(base, len)?;
            self.data.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for Img {
        fn type_name() -> &'static str {
            "test/ImgRecv"
        }
        fn max_size() -> usize {
            2048
        }
    }

    fn wire_frame() -> Vec<u8> {
        let mut img = SfmBox::<Img>::new();
        img.encoding.assign("rgb8");
        img.height = 10;
        img.width = 10;
        img.data.resize(300);
        for i in 0..300 {
            img.data[i] = (i % 7) as u8;
        }
        img.publish_handle().as_slice().to_vec()
    }

    #[test]
    fn roundtrip_over_simulated_wire() {
        let frame = wire_frame();
        let mut rb = SfmRecvBuffer::<Img>::new(frame.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&frame); // "socket read"
        let msg = rb.finish().unwrap();
        assert_eq!(msg.encoding.as_str(), "rgb8");
        assert_eq!(msg.height, 10);
        assert_eq!(msg.width, 10);
        assert_eq!(msg.data.len(), 300);
        assert_eq!(msg.data[6], 6);
        // Adopted messages are born Published (Fig. 9).
        assert_eq!(
            mm().info(msg.base()).unwrap().state,
            MessageState::Published
        );
    }

    #[test]
    fn frame_too_small_rejected() {
        let err = SfmRecvBuffer::<Img>::new(3).unwrap_err();
        assert!(matches!(err, SfmError::FrameTooSmall { .. }));
    }

    #[test]
    fn frame_too_large_rejected() {
        let err = SfmRecvBuffer::<Img>::new(1 << 20).unwrap_err();
        assert!(matches!(err, SfmError::FrameTooLarge { .. }));
    }

    #[test]
    fn corrupt_string_offset_rejected() {
        let mut frame = wire_frame();
        // The encoding skeleton occupies the first 8 bytes; poison the
        // offset word to point far outside the frame.
        frame[4..8].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut rb = SfmRecvBuffer::<Img>::new(frame.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&frame);
        let err = rb.finish().unwrap_err();
        assert!(matches!(err, SfmError::CorruptOffset { .. }));
    }

    #[test]
    fn corrupt_vec_len_rejected() {
        let mut frame = wire_frame();
        // The data skeleton is after encoding(8) + height(4) + width(4).
        frame[16..20].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut rb = SfmRecvBuffer::<Img>::new(frame.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&frame);
        assert!(rb.finish().is_err());
    }

    #[test]
    fn zero_copy_from_recv_buffer_to_shared() {
        let frame = wire_frame();
        let mut rb = SfmRecvBuffer::<Img>::new(frame.len()).unwrap();
        let dest = rb.as_mut_slice().as_ptr() as usize;
        rb.as_mut_slice().copy_from_slice(&frame);
        let msg = rb.finish().unwrap();
        assert_eq!(msg.base(), dest, "no copy between read and callback");
    }

    #[test]
    fn record_released_when_last_shared_drops() {
        let frame = wire_frame();
        let mut rb = SfmRecvBuffer::<Img>::new(frame.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&frame);
        let msg = rb.finish().unwrap();
        let base = msg.base();
        let keep = msg.clone(); // callback keeps a reference
        drop(msg); // callback returned
        assert!(mm().info(base).is_some());
        drop(keep);
        assert!(mm().info(base).is_none());
    }

    #[test]
    fn debug_nonempty() {
        let rb = SfmRecvBuffer::<Img>::new(64).unwrap();
        assert!(format!("{rb:?}").contains("SfmRecvBuffer"));
        assert!(!rb.is_empty());
        assert_eq!(rb.len(), 64);
    }
}
