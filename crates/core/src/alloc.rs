//! The raw, reference-counted allocation backing a serialization-free
//! message.
//!
//! In the paper the serialized buffer is a `std::shared_array` and the
//! message object is the *same memory* (§4.2). Here [`SfmAlloc`] owns the
//! bytes; `Arc<SfmAlloc>` plays the role of the paper's *buffer pointer*.
//! The message manager holds one clone, the developer's
//! [`SfmBox`](crate::SfmBox) holds one, and every transmission-queue entry
//! holds one — the memory is freed exactly when the last clone drops
//! (the `Destructed` state).

use std::alloc::{alloc, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;
use std::sync::Mutex;

/// Alignment of every SFM allocation. 8 bytes covers the strictest field
/// type ROS supports (`float64`/`int64`) so nested skeletons and vector
/// content are always correctly aligned when the manager aligns offsets.
pub const SFM_ALLOC_ALIGN: usize = 8;

/// Per-size-class entries kept in the buffer pool.
const POOL_PER_CLASS: usize = 4;
/// Total bytes the pool may retain.
const POOL_BYTE_CAP: usize = 128 << 20;
/// Smallest allocation worth pooling (small ones are cheap to malloc).
const POOL_MIN_SIZE: usize = 64 << 10;

/// A recycled region: pointer + capacity.
struct PoolEntry {
    ptr: NonNull<u8>,
    capacity: usize,
}

// SAFETY: entries are owned, unaliased regions in transit between users.
unsafe impl Send for PoolEntry {}

#[derive(Default)]
struct Pool {
    entries: Vec<PoolEntry>,
    bytes: usize,
}

/// Buffer pool for message-sized allocations.
///
/// Every message allocates `max_size` (§4.2); for multi-megabyte types the
/// system allocator serves and returns such regions with `mmap`/`munmap`,
/// paying a page-fault storm on every message. Production zero-copy
/// middlewares (RTI FlatData, iceoryx, eCAL) all run over pre-allocated
/// buffer pools for exactly this reason, so `SfmAlloc` keeps a small
/// freelist: up to a few entries per size class, bounded total bytes,
/// exact-capacity matches only.
fn pool() -> &'static Mutex<Pool> {
    static POOL: Mutex<Pool> = Mutex::new(Pool {
        entries: Vec::new(),
        bytes: 0,
    });
    &POOL
}

/// Release every buffer retained by the allocation pool back to the
/// system allocator.
///
/// Benchmark harnesses call this between experiment cells so one message
/// family's pooled buffers cannot perturb the allocator behaviour another
/// family sees (heap layout is shared process state).
pub fn drain_alloc_pool() {
    let mut pool = pool().lock().expect("pool lock");
    for entry in pool.entries.drain(..) {
        let layout = Layout::from_size_align(entry.capacity, SFM_ALLOC_ALIGN)
            .expect("pooled layouts were validated at allocation");
        // SAFETY: pooled entries are unaliased regions allocated with this
        // exact layout; each is freed exactly once here.
        unsafe { dealloc(entry.ptr.as_ptr(), layout) };
    }
    pool.bytes = 0;
}

/// An owned, 8-byte-aligned byte region of fixed capacity.
///
/// The capacity never changes after construction — this is the paper's rule
/// that a message is allocated once at the largest size its type permits, so
/// that field addresses remain stable while the whole message grows.
///
/// Contents start **uninitialized** (like C++ `operator new` in the paper —
/// zeroing a multi-megabyte `max_size` region per message would dwarf the
/// serialization cost being eliminated). The SFM discipline guarantees every
/// byte inside the *whole message* is written before it is read: the owner
/// zeroes the skeleton at birth, field growth writes each appended region in
/// full, and the manager zeroes alignment gaps (see `MessageManager::expand`).
pub struct SfmAlloc {
    ptr: NonNull<u8>,
    capacity: usize,
    /// Birth timestamp on the tracing clock, or 0 when the tracer was not
    /// armed at allocation time. Recycled pool entries are re-stamped: the
    /// `alloc` span measures this message's construction, not the region's.
    born_ns: u64,
    /// `Some` when the region is *externally owned* (e.g. a shared-memory
    /// mapping adopted by [`SfmAlloc::from_extern`]): the guard keeps the
    /// region alive and its drop performs whatever release the owner needs
    /// (cross-process refcount decrement, unmap). Such regions are never
    /// pooled nor deallocated here.
    extern_guard: Option<Box<dyn std::any::Any + Send + Sync>>,
}

// SAFETY: SfmAlloc uniquely owns its region; shared access is `&self` reads
// of the raw pointer only. Interior mutation is performed through raw
// pointers by the manager/field code under the aliasing discipline described
// on `as_ptr`.
unsafe impl Send for SfmAlloc {}
unsafe impl Sync for SfmAlloc {}

impl SfmAlloc {
    /// Allocate `capacity` uninitialized bytes aligned to
    /// [`SFM_ALLOC_ALIGN`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 (a message always has a nonempty skeleton)
    /// or on allocation failure.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SFM allocation must be nonempty");
        let born_ns = if rossf_trace::tracer().armed() {
            rossf_trace::now_nanos()
        } else {
            0
        };
        if capacity >= POOL_MIN_SIZE {
            let mut pool = pool().lock().expect("pool lock");
            if let Some(idx) = pool.entries.iter().position(|e| e.capacity == capacity) {
                let entry = pool.entries.swap_remove(idx);
                pool.bytes -= entry.capacity;
                return SfmAlloc {
                    ptr: entry.ptr,
                    capacity: entry.capacity,
                    born_ns,
                    extern_guard: None,
                };
            }
        }
        let layout = Layout::from_size_align(capacity, SFM_ALLOC_ALIGN)
            .expect("invalid SFM allocation layout");
        // SAFETY: layout has nonzero size (asserted above).
        let raw = unsafe { alloc(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout)
        };
        SfmAlloc {
            ptr,
            capacity,
            born_ns,
            extern_guard: None,
        }
    }

    /// Wrap an externally owned region (typically a shared-memory mapping)
    /// as an `SfmAlloc` without copying. `guard` is dropped exactly once
    /// when this allocation drops — it should release whatever keeps the
    /// region alive (a mapping handle, a cross-process reference count).
    /// `born_ns` of the result is 0: adopted frames do not re-run the
    /// `alloc` stage.
    ///
    /// # Safety
    ///
    /// * `ptr` must be non-null, aligned to [`SFM_ALLOC_ALIGN`], and valid
    ///   for reads of `capacity` bytes for as long as `guard` lives.
    /// * The region must not be written through other aliases while any
    ///   clone of the returned allocation is alive (read-only mappings
    ///   satisfy this trivially).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub unsafe fn from_extern(
        ptr: *mut u8,
        capacity: usize,
        guard: Box<dyn std::any::Any + Send + Sync>,
    ) -> Self {
        assert!(capacity > 0, "SFM allocation must be nonempty");
        let ptr = NonNull::new(ptr).expect("extern region must be non-null");
        debug_assert_eq!(ptr.as_ptr() as usize % SFM_ALLOC_ALIGN, 0);
        SfmAlloc {
            ptr,
            capacity,
            born_ns: 0,
            extern_guard: Some(guard),
        }
    }

    /// Whether this allocation wraps an externally owned region (adopted
    /// through [`SfmAlloc::from_extern`]) rather than heap memory.
    #[inline]
    pub fn is_extern(&self) -> bool {
        self.extern_guard.is_some()
    }

    /// Re-stamp the birth timestamp. [`SfmAlloc::from_extern`] always sets
    /// it to 0 (reader-side adopted frames do not re-run the `alloc`
    /// stage), but a *loaned* publisher-side allocation is a genuine birth:
    /// the loan's segment acquisition is its `alloc` span, and the loaning
    /// code stamps it here before sharing the allocation.
    #[inline]
    pub fn set_born_ns(&mut self, born_ns: u64) {
        self.born_ns = born_ns;
    }

    /// Zero the first `n` bytes (used to initialize skeletons; an all-zero
    /// skeleton is the valid "empty" state of every SFM message type).
    ///
    /// # Panics
    ///
    /// Panics if `n > capacity`.
    pub fn zero_prefix(&self, n: usize) {
        assert!(n <= self.capacity);
        // SAFETY: in-bounds (asserted); callers hold the unique handle at
        // initialization time.
        unsafe { std::ptr::write_bytes(self.ptr.as_ptr(), 0, n) };
    }

    /// Base address of the region.
    #[inline]
    pub fn base(&self) -> usize {
        self.ptr.as_ptr() as usize
    }

    /// Capacity in bytes (fixed for the lifetime of the allocation).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// When this allocation was handed out, on the
    /// [`rossf_trace::now_nanos`] clock — 0 if tracing was not armed at
    /// allocation time. Anchors the `alloc` stage span.
    #[inline]
    pub fn born_ns(&self) -> u64 {
        self.born_ns
    }

    /// Raw base pointer.
    ///
    /// Writes through this pointer must not race with reads of the same
    /// bytes. The SFM discipline guarantees this: a region is written at
    /// most once (one-shot assignment) *before* the message is published,
    /// and only read afterwards.
    #[inline]
    pub fn as_ptr(&self) -> *mut u8 {
        self.ptr.as_ptr()
    }

    /// View the first `len` bytes as a slice.
    ///
    /// Callers must only pass a `len` within the *whole message* (the
    /// initialized prefix maintained by the manager's append-only growth).
    ///
    /// # Panics
    ///
    /// Panics if `len > capacity`.
    #[inline]
    pub fn slice(&self, len: usize) -> &[u8] {
        assert!(len <= self.capacity);
        // SAFETY: in-bounds (asserted); the SFM discipline keeps [0, used)
        // fully initialized (skeleton zeroed at registration, appended
        // regions written in full, alignment gaps zeroed by expand).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), len) }
    }
}

impl Drop for SfmAlloc {
    fn drop(&mut self) {
        // Externally owned regions: release through the guard only — the
        // bytes belong to the mapping's owner, never to the heap or pool.
        if let Some(guard) = self.extern_guard.take() {
            drop(guard);
            return;
        }
        if self.capacity >= POOL_MIN_SIZE {
            // A panic here during unwinding would abort the process, so
            // recover from a poisoned pool lock instead of propagating:
            // the pool is a plain freelist, valid under any interleaving
            // of a panicked pusher.
            let mut pool = match pool().lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            let same_class = pool
                .entries
                .iter()
                .filter(|e| e.capacity == self.capacity)
                .count();
            if same_class < POOL_PER_CLASS && pool.bytes + self.capacity <= POOL_BYTE_CAP {
                pool.bytes += self.capacity;
                pool.entries.push(PoolEntry {
                    ptr: self.ptr,
                    capacity: self.capacity,
                });
                return;
            }
        }
        // The layout was validated at construction, so `Err` is
        // unreachable; leaking on it anyway beats an unwrap here, where a
        // panic during unwinding would abort.
        if let Ok(layout) = Layout::from_size_align(self.capacity, SFM_ALLOC_ALIGN) {
            // SAFETY: ptr was allocated with exactly this layout and is
            // dropped exactly once (pooled entries return through the
            // branch above).
            unsafe { dealloc(self.ptr.as_ptr(), layout) };
        }
    }
}

impl std::fmt::Debug for SfmAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SfmAlloc")
            .field("base", &format_args!("{:#x}", self.base()))
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_aligned_and_prefix_zeroable() {
        let a = SfmAlloc::new(1024);
        assert_eq!(a.capacity(), 1024);
        assert_eq!(a.base() % SFM_ALLOC_ALIGN, 0);
        a.zero_prefix(64);
        assert!(a.slice(64).iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic]
    fn zero_prefix_beyond_capacity_panics() {
        let a = SfmAlloc::new(8);
        a.zero_prefix(9);
    }

    #[test]
    fn slice_len_zero_is_empty() {
        let a = SfmAlloc::new(16);
        assert!(a.slice(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zero_capacity_panics() {
        let _ = SfmAlloc::new(0);
    }

    #[test]
    #[should_panic]
    fn oversized_slice_panics() {
        let a = SfmAlloc::new(8);
        let _ = a.slice(9);
    }

    #[test]
    fn debug_is_nonempty() {
        let a = SfmAlloc::new(8);
        assert!(format!("{a:?}").contains("SfmAlloc"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SfmAlloc>();
    }

    #[test]
    fn pool_recycles_large_allocations() {
        // Use a unique size class so concurrent tests don't interfere.
        let size = (9 << 20) + 8;
        let a = SfmAlloc::new(size);
        let base = a.base();
        drop(a); // goes to the pool
        let b = SfmAlloc::new(size);
        assert_eq!(b.base(), base, "same region recycled");
        let c = SfmAlloc::new(size);
        assert_ne!(c.base(), base, "pool was empty again");
    }

    #[test]
    fn small_allocations_bypass_the_pool() {
        let a = SfmAlloc::new(64);
        let base = a.base();
        drop(a);
        // The region may or may not be reused by malloc, but the pool
        // never holds it; allocating a *different* small size must work.
        let b = SfmAlloc::new(128);
        let _ = (base, b);
    }

    #[test]
    fn extern_region_released_through_guard_never_pooled() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        // The Vec is held only to keep the extern region alive for the
        // allocation's lifetime.
        struct Guard(Arc<AtomicUsize>, #[allow(dead_code)] Vec<u64>);
        impl Drop for Guard {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let drops = Arc::new(AtomicUsize::new(0));
        // Large enough that the regular Drop path would try to pool it;
        // u64 storage guarantees the 8-byte alignment from_extern expects.
        let mut words = vec![0x0707_0707_0707_0707u64; POOL_MIN_SIZE / 8];
        let ptr = words.as_mut_ptr() as *mut u8;
        let guard = Guard(Arc::clone(&drops), words);
        let a = unsafe { SfmAlloc::from_extern(ptr, POOL_MIN_SIZE, Box::new(guard)) };
        assert!(a.is_extern());
        assert_eq!(a.born_ns(), 0);
        assert_eq!(a.slice(4), &[7, 7, 7, 7]);
        drop(a);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "guard dropped exactly once"
        );
        // A fresh allocation of the same size must not resurrect the
        // extern pointer from the pool.
        let b = SfmAlloc::new(POOL_MIN_SIZE);
        assert!(!b.is_extern());
    }

    #[test]
    fn many_allocations_distinct() {
        let allocs: Vec<_> = (0..64).map(|_| SfmAlloc::new(64)).collect();
        let mut bases: Vec<_> = allocs.iter().map(|a| a.base()).collect();
        bases.sort_unstable();
        bases.dedup();
        assert_eq!(bases.len(), 64);
    }
}
