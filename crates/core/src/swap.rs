//! Endianness conversion for serialization-free messages (§4.4.1).
//!
//! "The endianness of a serialization-free message is the same as the
//! publisher side. Therefore, it is up to the subscriber side to decide
//! whether the endianness of the serialized message needs to be
//! converted." The paper stops at the discussion; this module implements
//! the conversion: an in-place walk over the whole message that
//! byte-swaps every multi-byte scalar, skeleton word, and vector element.
//!
//! The walk is direction-aware because the skeleton words are themselves
//! multi-byte: converting **from** a foreign frame must swap a skeleton
//! word *before* using it to find content, while converting **to** a
//! foreign frame (used by tests and by a hypothetical big-endian
//! publisher) must use the word *before* swapping it.

use crate::error::SfmError;
use crate::message::SfmPod;
use crate::string::SfmString;
use crate::vec::SfmVec;

/// Which way a conversion runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapDirection {
    /// The buffer is in the *foreign* byte order; after the walk it is
    /// native. Skeleton words are swapped before being dereferenced.
    FromForeign,
    /// The buffer is native; after the walk it is foreign. Skeleton words
    /// are dereferenced before being swapped.
    ToForeign,
}

/// In-place endianness conversion of a field and everything it references.
///
/// Implemented for primitives, `SfmString`, `SfmVec`, fixed arrays, and
/// (via the `ros_message!` generator or by hand) message skeletons.
///
/// # Safety-relevant contract
///
/// `swap_in_place` performs the same bounds discipline as
/// [`SfmValidate`](crate::SfmValidate): every dereferenced offset is
/// checked against `[base, base + whole_len)` and an error aborts the
/// walk. Callers must only pass fields that live inside the buffer
/// described by `base`/`whole_len`.
pub trait SfmEndianSwap {
    /// Convert this field (and its content regions) in place.
    ///
    /// # Errors
    ///
    /// [`SfmError::CorruptOffset`] when a skeleton references memory
    /// outside the whole message.
    fn swap_in_place(
        &mut self,
        base: usize,
        whole_len: usize,
        direction: SwapDirection,
    ) -> Result<(), SfmError>;
}

macro_rules! impl_swap_numeric {
    ($($t:ty),*) => {$(
        impl SfmEndianSwap for $t {
            #[inline]
            fn swap_in_place(
                &mut self,
                _base: usize,
                _len: usize,
                _dir: SwapDirection,
            ) -> Result<(), SfmError> {
                let bytes = self.to_ne_bytes();
                let mut rev = bytes;
                rev.reverse();
                *self = <$t>::from_ne_bytes(rev);
                Ok(())
            }
        }
    )*};
}
impl_swap_numeric!(u16, i16, u32, i32, u64, i64, f32, f64);

impl SfmEndianSwap for u8 {
    #[inline]
    fn swap_in_place(&mut self, _b: usize, _l: usize, _d: SwapDirection) -> Result<(), SfmError> {
        Ok(())
    }
}

impl SfmEndianSwap for i8 {
    #[inline]
    fn swap_in_place(&mut self, _b: usize, _l: usize, _d: SwapDirection) -> Result<(), SfmError> {
        Ok(())
    }
}

impl<T: SfmEndianSwap, const N: usize> SfmEndianSwap for [T; N] {
    fn swap_in_place(
        &mut self,
        base: usize,
        len: usize,
        dir: SwapDirection,
    ) -> Result<(), SfmError> {
        for item in self {
            item.swap_in_place(base, len, dir)?;
        }
        Ok(())
    }
}

/// Swap the two skeleton words of a string/vector, returning the
/// native-order `(len, off)` regardless of direction.
fn swap_skeleton_words(len_word: &mut u32, off_word: &mut u32, dir: SwapDirection) -> (u32, u32) {
    match dir {
        SwapDirection::FromForeign => {
            *len_word = len_word.swap_bytes();
            *off_word = off_word.swap_bytes();
            (*len_word, *off_word)
        }
        SwapDirection::ToForeign => {
            let native = (*len_word, *off_word);
            *len_word = len_word.swap_bytes();
            *off_word = off_word.swap_bytes();
            native
        }
    }
}

impl SfmEndianSwap for SfmString {
    fn swap_in_place(
        &mut self,
        base: usize,
        whole_len: usize,
        dir: SwapDirection,
    ) -> Result<(), SfmError> {
        // SAFETY: SfmString is repr(C) { u32, u32 } (asserted by a unit
        // test); we reinterpret it as its two words.
        let words = unsafe { &mut *(self as *mut SfmString as *mut [u32; 2]) };
        let (stored, off) = {
            let (l, o) = words.split_at_mut(1);
            swap_skeleton_words(&mut l[0], &mut o[0], dir)
        };
        if off == 0 {
            return Ok(());
        }
        // String content is bytes — nothing further to swap — but the
        // reference must still be validated so a corrupt frame cannot
        // direct later reads out of bounds.
        let off_addr = self as *const _ as usize + 4;
        let start = (off_addr + off as usize).wrapping_sub(base);
        let end = start.wrapping_add(stored as usize);
        if start > whole_len || end > whole_len || end < start {
            return Err(SfmError::CorruptOffset {
                offset: end,
                len: whole_len,
            });
        }
        Ok(())
    }
}

impl<T: SfmPod + SfmEndianSwap> SfmEndianSwap for SfmVec<T> {
    fn swap_in_place(
        &mut self,
        base: usize,
        whole_len: usize,
        dir: SwapDirection,
    ) -> Result<(), SfmError> {
        // SAFETY: SfmVec is repr(C) { u32, u32, PhantomData } (asserted by
        // a unit test).
        let words = unsafe { &mut *(self as *mut SfmVec<T> as *mut [u32; 2]) };
        let (count, off) = {
            let (l, o) = words.split_at_mut(1);
            swap_skeleton_words(&mut l[0], &mut o[0], dir)
        };
        if off == 0 {
            if count != 0 {
                return Err(SfmError::CorruptOffset {
                    offset: 0,
                    len: whole_len,
                });
            }
            return Ok(());
        }
        let elem = core::mem::size_of::<T>();
        let off_addr = self as *const _ as usize + 4;
        let content = off_addr + off as usize;
        let start = content.wrapping_sub(base);
        let bytes = (count as usize)
            .checked_mul(elem)
            .ok_or(SfmError::CorruptOffset {
                offset: usize::MAX,
                len: whole_len,
            })?;
        let end = start.wrapping_add(bytes);
        if start > whole_len || end > whole_len || end < start {
            return Err(SfmError::CorruptOffset {
                offset: end,
                len: whole_len,
            });
        }
        // Swap every element (recursing into nested skeletons).
        for i in 0..count as usize {
            // SAFETY: in-bounds (validated above), properly aligned
            // (content regions are allocated at align_of::<T>()), and we
            // have exclusive access through &mut self's owner.
            let item = unsafe { &mut *((content + i * elem) as *mut T) };
            item.swap_in_place(base, whole_len, dir)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SfmBox, SfmMessage, SfmValidate};

    #[repr(C)]
    #[derive(Debug)]
    struct Mixed {
        tag: SfmString,
        count: u32,
        ratio: f64,
        samples: SfmVec<u16>,
        flags: [u8; 4],
        words: SfmVec<u32>,
    }
    unsafe impl SfmPod for Mixed {}
    impl SfmValidate for Mixed {
        fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
            self.tag.validate_in(base, len)?;
            self.samples.validate_in(base, len)?;
            self.words.validate_in(base, len)
        }
    }
    unsafe impl SfmMessage for Mixed {
        fn type_name() -> &'static str {
            "test/Mixed"
        }
        fn max_size() -> usize {
            4096
        }
    }
    impl SfmEndianSwap for Mixed {
        fn swap_in_place(
            &mut self,
            base: usize,
            len: usize,
            dir: SwapDirection,
        ) -> Result<(), SfmError> {
            self.tag.swap_in_place(base, len, dir)?;
            self.count.swap_in_place(base, len, dir)?;
            self.ratio.swap_in_place(base, len, dir)?;
            self.samples.swap_in_place(base, len, dir)?;
            self.flags.swap_in_place(base, len, dir)?;
            self.words.swap_in_place(base, len, dir)
        }
    }

    fn build() -> SfmBox<Mixed> {
        let mut m = SfmBox::<Mixed>::new();
        m.tag.assign("mixed");
        m.count = 0x01020304;
        m.ratio = -1234.5678;
        m.samples.assign(&[0x0102u16, 0xA0B0, 7]);
        m.flags = [1, 2, 3, 4];
        m.words.assign(&[0xDEADBEEFu32, 1]);
        m
    }

    #[test]
    fn skeleton_layout_assumed_by_the_transmutes() {
        assert_eq!(core::mem::size_of::<SfmString>(), 8);
        assert_eq!(core::mem::align_of::<SfmString>(), 4);
        assert_eq!(core::mem::size_of::<SfmVec<u32>>(), 8);
        assert_eq!(core::mem::align_of::<SfmVec<u32>>(), 4);
    }

    #[test]
    fn double_swap_is_identity() {
        let mut m = build();
        let base = m.base();
        let len = m.whole_len();
        let before = m.publish_handle().as_slice().to_vec();
        m.swap_in_place(base, len, SwapDirection::ToForeign)
            .unwrap();
        // Foreign buffer differs from native...
        assert_ne!(m.publish_handle().as_slice(), &before[..]);
        m.swap_in_place(base, len, SwapDirection::FromForeign)
            .unwrap();
        // ...and converting back restores every byte.
        assert_eq!(m.publish_handle().as_slice(), &before[..]);
        assert_eq!(m.tag.as_str(), "mixed");
        assert_eq!(m.count, 0x01020304);
        assert_eq!(m.samples.as_slice(), &[0x0102, 0xA0B0, 7]);
    }

    #[test]
    fn foreign_frame_reads_correctly_after_conversion() {
        // Simulate a big-endian publisher: produce a native message, walk
        // it ToForeign, ship the bytes, and convert FromForeign on the
        // "receiving" side.
        let mut m = build();
        let base = m.base();
        let len = m.whole_len();
        m.swap_in_place(base, len, SwapDirection::ToForeign)
            .unwrap();
        let foreign = m.publish_handle().as_slice().to_vec();

        let mut rb = crate::SfmRecvBuffer::<Mixed>::new(foreign.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&foreign);
        // The frame must be converted before validation/adoption.
        let view = unsafe { &mut *(rb.as_mut_slice().as_mut_ptr() as *mut Mixed) };
        let rb_base = rb.as_mut_slice().as_ptr() as usize;
        view.swap_in_place(rb_base, foreign.len(), SwapDirection::FromForeign)
            .unwrap();
        let adopted = rb.finish().unwrap();
        assert_eq!(adopted.tag.as_str(), "mixed");
        assert_eq!(adopted.count, 0x01020304);
        assert_eq!(adopted.ratio, -1234.5678);
        assert_eq!(adopted.words.as_slice(), &[0xDEADBEEF, 1]);
        assert_eq!(adopted.flags, [1, 2, 3, 4]);
    }

    #[test]
    fn u8_fields_are_untouched() {
        let mut v = 0xABu8;
        v.swap_in_place(0, 0, SwapDirection::ToForeign).unwrap();
        assert_eq!(v, 0xAB);
    }

    #[test]
    fn corrupt_foreign_frame_is_rejected_by_the_walk() {
        let mut m = build();
        let base = m.base();
        let len = m.whole_len();
        m.swap_in_place(base, len, SwapDirection::ToForeign)
            .unwrap();
        let mut foreign = m.publish_handle().as_slice().to_vec();
        // Poison the samples vector's count (big-endian huge value).
        let samples_skel = 8 + 4 + 4 + 8; // tag(8) count(4) pad(4)? — locate dynamically instead:
        let _ = samples_skel;
        // Overwrite the first 4 bytes of the `samples` skeleton. Compute
        // its offset via offset_of to stay layout-correct.
        let off = core::mem::offset_of!(Mixed, samples);
        foreign[off..off + 4].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut rb = crate::SfmRecvBuffer::<Mixed>::new(foreign.len()).unwrap();
        rb.as_mut_slice().copy_from_slice(&foreign);
        let rb_base = rb.as_mut_slice().as_ptr() as usize;
        let view = unsafe { &mut *(rb.as_mut_slice().as_mut_ptr() as *mut Mixed) };
        let result = view.swap_in_place(rb_base, foreign.len(), SwapDirection::FromForeign);
        assert!(result.is_err());
    }
}
