//! Error type for SFM operations.

use core::fmt;

/// Errors raised by SFM allocation, growth, and adoption operations.
///
/// Returned by the fallible (`try_*`) variants of field assignment and by
/// [`MessageManager`](crate::MessageManager) operations. The infallible
/// variants panic on these conditions (documented per method).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SfmError {
    /// The address passed to the manager does not fall inside any registered
    /// message. This happens when an SFM field is used outside a managed
    /// allocation (the condition the paper's ROS-SF Converter exists to
    /// prevent: serialization-free messages must be heap-allocated and
    /// registered, §4.3.2).
    UnmanagedAddress {
        /// The offending address.
        addr: usize,
    },
    /// Growing the whole message would exceed the `max_size` declared for
    /// this message type in the IDL.
    CapacityExceeded {
        /// Message type name.
        type_name: &'static str,
        /// Bytes requested.
        requested: usize,
        /// Bytes remaining in the allocation.
        available: usize,
    },
    /// A received frame is too small to contain the skeleton of the expected
    /// message type.
    FrameTooSmall {
        /// Expected at least this many bytes (the skeleton size).
        expected: usize,
        /// Actual frame length.
        actual: usize,
    },
    /// A received frame is larger than the declared `max_size`, so it cannot
    /// be adopted into a managed allocation of that type.
    FrameTooLarge {
        /// The type's declared maximum size.
        max_size: usize,
        /// Actual frame length.
        actual: usize,
    },
    /// An offset stored in a received message points outside the whole
    /// message — the frame is corrupt or was produced by a different schema.
    CorruptOffset {
        /// The out-of-range absolute offset (relative to message base).
        offset: usize,
        /// The whole-message length.
        len: usize,
    },
    /// One of the one-shot assumptions was violated and the active
    /// [`AlertPolicy`](crate::AlertPolicy) is `Error`.
    AssumptionViolated(crate::AlertKind),
}

impl fmt::Display for SfmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SfmError::UnmanagedAddress { addr } => {
                write!(f, "address {addr:#x} is not inside any managed SFM message")
            }
            SfmError::CapacityExceeded {
                type_name,
                requested,
                available,
            } => write!(
                f,
                "message `{type_name}` cannot grow by {requested} bytes ({available} available); \
                 increase max_size in the IDL"
            ),
            SfmError::FrameTooSmall { expected, actual } => write!(
                f,
                "received frame of {actual} bytes is smaller than the skeleton ({expected} bytes)"
            ),
            SfmError::FrameTooLarge { max_size, actual } => write!(
                f,
                "received frame of {actual} bytes exceeds the type's max_size ({max_size} bytes)"
            ),
            SfmError::CorruptOffset { offset, len } => write!(
                f,
                "stored offset points to {offset} which is outside the whole message ({len} bytes)"
            ),
            SfmError::AssumptionViolated(kind) => {
                write!(f, "SFM usage assumption violated: {kind}")
            }
        }
    }
}

impl std::error::Error for SfmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<SfmError> = vec![
            SfmError::UnmanagedAddress { addr: 0xdead },
            SfmError::CapacityExceeded {
                type_name: "demo/Image",
                requested: 10,
                available: 5,
            },
            SfmError::FrameTooSmall {
                expected: 24,
                actual: 3,
            },
            SfmError::FrameTooLarge {
                max_size: 64,
                actual: 128,
            },
            SfmError::CorruptOffset {
                offset: 99,
                len: 10,
            },
            SfmError::AssumptionViolated(crate::AlertKind::OneShotStringAssignment),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!format!("{e:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SfmError>();
    }
}
