//! The message manager — the paper's `sfm::mm` / `sfm::gmm` (§4.2, §4.3.3).
//!
//! Every live serialization-free message has a *record* in the global
//! manager holding its base address, capacity, current *whole message* size,
//! a clone of the buffer pointer (`Arc<SfmAlloc>`), and its life-cycle state.
//!
//! Two operations dominate:
//!
//! * **register / release** — keyed by the message's *start* address
//!   (the paper: "can be easily implemented by maintaining a `std::map`").
//! * **expand** — keyed by *any address inside* the message ("an address in
//!   the middle of the message"), because a field only knows its own
//!   location. The paper implements this as "a binary search from a
//!   `std::vector` of ordered records"; so do we, with a linear-scan
//!   fallback selectable for the ablation benchmark.

use crate::align_up;
use crate::alloc::SfmAlloc;
use crate::error::SfmError;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Life-cycle state of a serialization-free message (paper Figs. 8–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageState {
    /// Registered and owned by developer code; not yet published.
    Allocated,
    /// Published at least once (publisher side) or adopted from a received
    /// buffer (subscriber side): the memory simultaneously *is* the message
    /// object and the serialized buffer.
    Published,
}

/// How `expand` locates the record containing an interior address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupStrategy {
    /// Binary search over records ordered by start address (paper §4.3.3).
    #[default]
    Binary,
    /// Linear scan — only useful as the ablation baseline.
    Linear,
}

struct Record {
    start: usize,
    capacity: usize,
    used: usize,
    state: MessageState,
    type_name: &'static str,
    buffer: Arc<SfmAlloc>,
}

/// A snapshot of one record, for introspection and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordInfo {
    /// Base address of the whole message.
    pub start: usize,
    /// Fixed capacity (the type's `max_size`).
    pub capacity: usize,
    /// Current size of the whole message.
    pub used: usize,
    /// Life-cycle state.
    pub state: MessageState,
    /// ROS type name, e.g. `sensor_msgs/Image`.
    pub type_name: &'static str,
    /// Strong count of the underlying buffer (includes the record's own
    /// clone).
    pub buffer_refs: usize,
}

/// Cumulative counters exposed for benchmarks and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Messages registered (publisher-side allocations + adopted frames).
    pub registered: u64,
    /// Messages released (records removed).
    pub released: u64,
    /// `expand` calls served.
    pub expands: u64,
    /// Messages that reached the `Published` state.
    pub published: u64,
}

/// The message life-cycle manager (`sfm::mm`).
///
/// A single process-global instance is available through [`mm()`] (the
/// paper's `sfm::gmm`); independent instances can be created for tests.
pub struct MessageManager {
    records: Mutex<Vec<Record>>,
    strategy: Mutex<LookupStrategy>,
    registered: AtomicU64,
    released: AtomicU64,
    expands: AtomicU64,
    published: AtomicU64,
}

impl Default for MessageManager {
    fn default() -> Self {
        Self::new()
    }
}

impl MessageManager {
    /// Create an empty manager using binary-search lookup.
    pub fn new() -> Self {
        MessageManager {
            records: Mutex::new(Vec::new()),
            strategy: Mutex::new(LookupStrategy::Binary),
            registered: AtomicU64::new(0),
            released: AtomicU64::new(0),
            expands: AtomicU64::new(0),
            published: AtomicU64::new(0),
        }
    }

    /// Select the interior-address lookup strategy (ablation hook).
    pub fn set_lookup_strategy(&self, s: LookupStrategy) {
        *self.strategy.lock() = s;
    }

    /// Register a freshly allocated message whose skeleton occupies the
    /// first `skeleton_size` bytes of `buffer`.
    ///
    /// This is what the overloaded global `new` operator does in the paper:
    /// "the allocated memory segment is then registered into the message
    /// manager, and the message enters the *Allocated* state".
    pub fn register(&self, buffer: Arc<SfmAlloc>, skeleton_size: usize, type_name: &'static str) {
        debug_assert!(skeleton_size <= buffer.capacity());
        self.insert(Record {
            start: buffer.base(),
            capacity: buffer.capacity(),
            used: skeleton_size,
            state: MessageState::Allocated,
            type_name,
            buffer,
        });
        self.registered.fetch_add(1, Ordering::Relaxed);
    }

    /// Register a message adopted from a received frame of `used` bytes
    /// (the paper's "dummy de-serialization routine", Fig. 9): the record is
    /// created directly in the `Published` state.
    pub fn adopt(&self, buffer: Arc<SfmAlloc>, used: usize, type_name: &'static str) {
        debug_assert!(used <= buffer.capacity());
        self.insert(Record {
            start: buffer.base(),
            capacity: buffer.capacity(),
            used,
            state: MessageState::Published,
            type_name,
            buffer,
        });
        self.registered.fetch_add(1, Ordering::Relaxed);
        self.published.fetch_add(1, Ordering::Relaxed);
    }

    fn insert(&self, rec: Record) {
        let mut records = self.records.lock();
        let idx = records.partition_point(|r| r.start < rec.start);
        debug_assert!(
            records.get(idx).is_none_or(|r| r.start != rec.start),
            "double registration of base address {:#x}",
            rec.start
        );
        records.insert(idx, rec);
    }

    /// Grow the whole message that contains `field_addr` by `len` bytes,
    /// aligning the new region to `align`. Returns the absolute address of
    /// the new region.
    ///
    /// This is the operation behind first-time string assignment and vector
    /// resizing: "whenever a field requests for extra memory, the message
    /// manager is informed to find the corresponding record of the message
    /// based on the address of the requesting field" (§4.2).
    ///
    /// # Errors
    ///
    /// * [`SfmError::UnmanagedAddress`] if no record contains `field_addr`.
    /// * [`SfmError::CapacityExceeded`] if growth would pass `max_size`.
    pub fn expand(&self, field_addr: usize, len: usize, align: usize) -> Result<usize, SfmError> {
        self.expands.fetch_add(1, Ordering::Relaxed);
        let strategy = *self.strategy.lock();
        let mut records = self.records.lock();
        let idx = Self::locate(&records, field_addr, strategy)
            .ok_or(SfmError::UnmanagedAddress { addr: field_addr })?;
        let rec = &mut records[idx];
        let offset = align_up(rec.used, align);
        let new_used = offset.checked_add(len).ok_or(SfmError::CapacityExceeded {
            type_name: rec.type_name,
            requested: len,
            available: rec.capacity - rec.used,
        })?;
        if new_used > rec.capacity {
            return Err(SfmError::CapacityExceeded {
                type_name: rec.type_name,
                requested: len,
                available: rec.capacity - rec.used,
            });
        }
        if offset > rec.used {
            // Zero the alignment gap so the whole message never exposes
            // uninitialized bytes on the wire.
            // SAFETY: [used, offset) is in-bounds (offset <= new_used <=
            // capacity) and not yet part of any field's region.
            unsafe {
                std::ptr::write_bytes((rec.start + rec.used) as *mut u8, 0, offset - rec.used);
            }
        }
        rec.used = new_used;
        Ok(rec.start + offset)
    }

    fn locate(records: &[Record], addr: usize, strategy: LookupStrategy) -> Option<usize> {
        match strategy {
            LookupStrategy::Binary => {
                // Greatest start <= addr, then containment check.
                let idx = records.partition_point(|r| r.start <= addr);
                if idx == 0 {
                    return None;
                }
                let rec = &records[idx - 1];
                (addr < rec.start + rec.capacity).then_some(idx - 1)
            }
            LookupStrategy::Linear => records
                .iter()
                .position(|r| addr >= r.start && addr < r.start + r.capacity),
        }
    }

    /// Mark the message starting at `start` as published.
    ///
    /// Idempotent; unknown addresses are ignored (publishing an already
    /// released message is handled by the `Arc` held in the transmission
    /// queue).
    pub fn mark_published(&self, start: usize) {
        let mut records = self.records.lock();
        if let Ok(idx) = records.binary_search_by(|r| r.start.cmp(&start)) {
            if records[idx].state != MessageState::Published {
                records[idx].state = MessageState::Published;
                self.published.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Remove the record for the message starting at `start`, dropping the
    /// manager's buffer-pointer clone (the overloaded `delete` operator).
    ///
    /// If a transmission queue or another `Arc` still references the buffer
    /// the bytes stay alive; otherwise they are freed now ("only when the
    /// reference count becomes zero will the message memory be actually
    /// freed").
    pub fn release(&self, start: usize) {
        let mut records = self.records.lock();
        if let Ok(idx) = records.binary_search_by(|r| r.start.cmp(&start)) {
            records.remove(idx);
            self.released.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current whole-message size of the record containing `addr`.
    ///
    /// # Errors
    ///
    /// [`SfmError::UnmanagedAddress`] if no record contains `addr`.
    pub fn used_size(&self, addr: usize) -> Result<usize, SfmError> {
        let records = self.records.lock();
        Self::locate(&records, addr, LookupStrategy::Binary)
            .map(|i| records[i].used)
            .ok_or(SfmError::UnmanagedAddress { addr })
    }

    /// Clone the buffer pointer of the message starting at `start` (used by
    /// `publish` to hand a reference to the transmission queue, Fig. 8).
    ///
    /// # Errors
    ///
    /// [`SfmError::UnmanagedAddress`] if `start` is not a registered base.
    pub fn buffer_of(&self, start: usize) -> Result<Arc<SfmAlloc>, SfmError> {
        let records = self.records.lock();
        records
            .binary_search_by(|r| r.start.cmp(&start))
            .map(|idx| Arc::clone(&records[idx].buffer))
            .map_err(|_| SfmError::UnmanagedAddress { addr: start })
    }

    /// Snapshot of the record containing `addr`, if any.
    pub fn info(&self, addr: usize) -> Option<RecordInfo> {
        let records = self.records.lock();
        Self::locate(&records, addr, LookupStrategy::Binary).map(|i| {
            let r = &records[i];
            RecordInfo {
                start: r.start,
                capacity: r.capacity,
                used: r.used,
                state: r.state,
                type_name: r.type_name,
                buffer_refs: Arc::strong_count(&r.buffer),
            }
        })
    }

    /// Number of live records.
    pub fn live(&self) -> usize {
        self.records.lock().len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            registered: self.registered.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            expands: self.expands.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for MessageManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MessageManager")
            .field("live", &self.live())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The process-global message manager (the paper's `sfm::gmm`).
pub fn mm() -> &'static MessageManager {
    static GLOBAL: OnceLock<MessageManager> = OnceLock::new();
    GLOBAL.get_or_init(MessageManager::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(cap: usize) -> Arc<SfmAlloc> {
        Arc::new(SfmAlloc::new(cap))
    }

    #[test]
    fn register_and_release_roundtrip() {
        let m = MessageManager::new();
        let a = alloc(256);
        let base = a.base();
        m.register(a, 24, "t/A");
        assert_eq!(m.live(), 1);
        let info = m.info(base).unwrap();
        assert_eq!(info.used, 24);
        assert_eq!(info.state, MessageState::Allocated);
        assert_eq!(info.type_name, "t/A");
        m.release(base);
        assert_eq!(m.live(), 0);
        assert!(m.info(base).is_none());
    }

    #[test]
    fn expand_by_interior_address() {
        let m = MessageManager::new();
        let a = alloc(256);
        let base = a.base();
        m.register(a, 24, "t/A");
        // A field in the middle of the skeleton requests 10 bytes.
        let got = m.expand(base + 8, 10, 1).unwrap();
        assert_eq!(got, base + 24);
        assert_eq!(m.used_size(base).unwrap(), 34);
        // Next request is aligned up.
        let got2 = m.expand(base + 16, 8, 8).unwrap();
        assert_eq!(got2, base + 40); // 34 aligned to 8 = 40
        assert_eq!(m.used_size(base).unwrap(), 48);
    }

    #[test]
    fn expand_unmanaged_address_errors() {
        let m = MessageManager::new();
        let err = m.expand(0x1000, 4, 1).unwrap_err();
        assert!(matches!(err, SfmError::UnmanagedAddress { .. }));
    }

    #[test]
    fn expand_beyond_capacity_errors() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(a, 24, "t/A");
        let err = m.expand(base, 100, 1).unwrap_err();
        assert!(matches!(err, SfmError::CapacityExceeded { .. }));
        // used must be unchanged after a failed expand.
        assert_eq!(m.used_size(base).unwrap(), 24);
    }

    #[test]
    fn lookup_finds_correct_record_among_many() {
        let m = MessageManager::new();
        let allocs: Vec<_> = (0..32).map(|_| alloc(128)).collect();
        for a in &allocs {
            m.register(Arc::clone(a), 16, "t/A");
        }
        for strategy in [LookupStrategy::Binary, LookupStrategy::Linear] {
            m.set_lookup_strategy(strategy);
            for a in &allocs {
                let got = m.expand(a.base() + 120, 0, 1).unwrap();
                assert!(got >= a.base() && got <= a.base() + 128);
            }
        }
    }

    #[test]
    fn linear_and_binary_agree_on_miss() {
        let m = MessageManager::new();
        let a = alloc(64);
        m.register(Arc::clone(&a), 8, "t/A");
        let miss = a.base().wrapping_add(64); // one past the end
        for strategy in [LookupStrategy::Binary, LookupStrategy::Linear] {
            m.set_lookup_strategy(strategy);
            assert!(m.expand(miss, 1, 1).is_err());
        }
    }

    #[test]
    fn mark_published_transitions_once() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(a, 8, "t/A");
        m.mark_published(base);
        m.mark_published(base);
        assert_eq!(m.info(base).unwrap().state, MessageState::Published);
        assert_eq!(m.stats().published, 1);
    }

    #[test]
    fn adopt_starts_published() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.adopt(a, 40, "t/A");
        let info = m.info(base).unwrap();
        assert_eq!(info.state, MessageState::Published);
        assert_eq!(info.used, 40);
    }

    #[test]
    fn buffer_of_clones_refcount() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(Arc::clone(&a), 8, "t/A");
        let before = m.info(base).unwrap().buffer_refs;
        let extra = m.buffer_of(base).unwrap();
        let after = m.info(base).unwrap().buffer_refs;
        assert_eq!(after, before + 1);
        drop(extra);
        assert_eq!(m.info(base).unwrap().buffer_refs, before);
    }

    #[test]
    fn release_keeps_bytes_alive_while_queue_holds_arc() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(Arc::clone(&a), 8, "t/A");
        let queue_copy = m.buffer_of(base).unwrap();
        m.release(base);
        assert_eq!(m.live(), 0);
        // Bytes still addressable through the queue's clone.
        assert_eq!(queue_copy.base(), base);
        assert_eq!(queue_copy.slice(8).len(), 8);
        drop(a);
        drop(queue_copy); // memory actually freed here (Destructed)
    }

    #[test]
    fn stats_accumulate() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(a, 8, "t/A");
        m.expand(base, 4, 1).unwrap();
        m.mark_published(base);
        m.release(base);
        let s = m.stats();
        assert_eq!(s.registered, 1);
        assert_eq!(s.expands, 1);
        assert_eq!(s.published, 1);
        assert_eq!(s.released, 1);
    }

    #[test]
    fn global_manager_is_singleton() {
        assert!(std::ptr::eq(mm(), mm()));
    }

    #[test]
    fn debug_impl_nonempty() {
        let m = MessageManager::new();
        assert!(format!("{m:?}").contains("MessageManager"));
    }
}
