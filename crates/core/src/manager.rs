//! The message manager — the paper's `sfm::mm` / `sfm::gmm` (§4.2, §4.3.3).
//!
//! Every live serialization-free message has a *record* in the global
//! manager holding its base address, capacity, current *whole message* size,
//! a clone of the buffer pointer (`Arc<SfmAlloc>`), and its life-cycle state.
//!
//! Two operations dominate:
//!
//! * **register / release** — keyed by the message's *start* address
//!   (the paper: "can be easily implemented by maintaining a `std::map`").
//! * **expand** — keyed by *any address inside* the message ("an address in
//!   the middle of the message"), because a field only knows its own
//!   location. The paper implements this as "a binary search from a
//!   `std::vector` of ordered records"; so do we, with a linear-scan
//!   fallback selectable for the ablation benchmark.

use crate::alert::{raise, AlertKind};
use crate::align_up;
use crate::alloc::SfmAlloc;
use crate::error::SfmError;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Life-cycle state of a serialization-free message (paper Figs. 8–9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageState {
    /// Registered and owned by developer code; not yet published.
    Allocated,
    /// Published at least once (publisher side) or adopted from a received
    /// buffer (subscriber side): the memory simultaneously *is* the message
    /// object and the serialized buffer.
    Published,
}

/// How `expand` locates the record containing an interior address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupStrategy {
    /// Binary search over records ordered by start address (paper §4.3.3).
    #[default]
    Binary,
    /// Linear scan — only useful as the ablation baseline.
    Linear,
}

struct Record {
    start: usize,
    capacity: usize,
    used: usize,
    state: MessageState,
    type_name: &'static str,
    buffer: Arc<SfmAlloc>,
    /// When the record was created, on the tracing clock (0 when tracing
    /// was not armed at registration time).
    registered_ns: u64,
}

/// A snapshot of one record, for introspection and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordInfo {
    /// Base address of the whole message.
    pub start: usize,
    /// Fixed capacity (the type's `max_size`).
    pub capacity: usize,
    /// Current size of the whole message.
    pub used: usize,
    /// Life-cycle state.
    pub state: MessageState,
    /// ROS type name, e.g. `sensor_msgs/Image`.
    pub type_name: &'static str,
    /// Strong count of the underlying buffer (includes the record's own
    /// clone).
    pub buffer_refs: usize,
    /// When the record was created, on the [`rossf_trace::now_nanos`]
    /// clock — 0 unless tracing was armed at registration time. Lets the
    /// tracer attribute manager-resident lifetime per message.
    pub registered_ns: u64,
}

/// Cumulative counters exposed for benchmarks and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ManagerStats {
    /// Messages registered (publisher-side allocations + adopted frames).
    pub registered: u64,
    /// Messages released (records removed).
    pub released: u64,
    /// `expand` calls served.
    pub expands: u64,
    /// Messages that reached the `Published` state.
    pub published: u64,
    /// Cross-node adoptions that shared a published buffer in place instead
    /// of copying it (the same-machine zero-copy fast path): no new record
    /// is created — the subscriber's handle joins the refcount of the
    /// publisher's allocation.
    pub shared_adoptions: u64,
}

/// One lifecycle operation recorded by the sanitizer's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleOp {
    /// `register` — message entered `Allocated`.
    Register,
    /// `register_loaned` — message entered `Allocated` inside a loaned
    /// shared-memory segment (built in place; publish will be copy-free).
    RegisterLoaned,
    /// `adopt` — received frame entered `Published` directly.
    Adopt,
    /// A subscriber began sharing a published buffer in place (zero-copy
    /// same-machine delivery): the existing record's refcount grew; no new
    /// record was created.
    AdoptShared,
    /// `expand` — content space appended.
    Expand,
    /// `mark_published` — `Allocated → Published` transition.
    MarkPublished,
    /// `release` — record removed.
    Release,
    /// A shared-memory segment was mapped into this process (publisher
    /// creation or subscriber adoption of a peer's memfd).
    SegmentMap,
    /// A shared-memory segment mapping was torn down.
    SegmentUnmap,
    /// A shared-memory segment was re-acquired for a new frame after its
    /// cross-process refcount returned to zero (generation bump).
    SegmentRecycle,
    /// An anomaly was detected (the paired [`AlertKind`] says which).
    Anomaly(AlertKind),
}

/// One entry in the sanitizer's event log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifecycleEvent {
    /// What happened.
    pub op: LifecycleOp,
    /// The address the operation targeted (base for register/adopt/release,
    /// interior field address for expand).
    pub addr: usize,
    /// ROS type name of the message, when the record was found.
    pub type_name: Option<&'static str>,
}

/// Snapshot of the sanitizer's anomaly counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Lifecycle events logged since the sanitizer was enabled.
    pub events_logged: u64,
    /// Releases of a base address that was already released (and not since
    /// reused by a new registration).
    pub double_release: u64,
    /// `expand` calls whose field address fell inside a released message.
    pub expand_after_release: u64,
    /// Releases performed while the manager held the only buffer reference
    /// (the developer's handle was already gone — a stale-handle release).
    pub refcount_anomaly: u64,
    /// `Allocated` records found by the last [`MessageManager::check_leaks`]
    /// call.
    pub leaked_allocated: u64,
    /// Shared-memory segments still mapped at the last
    /// [`MessageManager::check_leaks`] call — orphaned segments whose
    /// mapping was never torn down.
    pub leaked_segments: u64,
}

/// Bounded history of recently released `[start, end)` ranges plus the
/// event log — the sanitizer's working state.
struct Sanitizer {
    events: VecDeque<LifecycleEvent>,
    /// `(start, end)` of released whole messages, oldest first. Purged on
    /// address reuse (the allocator pool recycles buffers, so a released
    /// base coming back is normal, not a bug).
    released: VecDeque<(usize, usize)>,
    report: SanitizerReport,
}

/// Cap on the sanitizer's event log (oldest entries are dropped).
const SANITIZER_EVENTS_CAP: usize = 1024;
/// Cap on the released-range history.
const SANITIZER_RELEASED_CAP: usize = 512;

impl Sanitizer {
    fn new() -> Self {
        Sanitizer {
            events: VecDeque::new(),
            released: VecDeque::new(),
            report: SanitizerReport::default(),
        }
    }

    fn log(&mut self, op: LifecycleOp, addr: usize, type_name: Option<&'static str>) {
        if self.events.len() == SANITIZER_EVENTS_CAP {
            self.events.pop_front();
        }
        self.events.push_back(LifecycleEvent {
            op,
            addr,
            type_name,
        });
        self.report.events_logged += 1;
    }

    fn remember_released(&mut self, start: usize, end: usize) {
        if self.released.len() == SANITIZER_RELEASED_CAP {
            self.released.pop_front();
        }
        self.released.push_back((start, end));
    }

    fn in_released(&self, addr: usize) -> bool {
        self.released.iter().any(|&(s, e)| addr >= s && addr < e)
    }

    /// Forget released ranges overlapping `[start, end)` — the address has
    /// been legitimately reused by a fresh allocation.
    fn purge_reused(&mut self, start: usize, end: usize) {
        self.released.retain(|&(s, e)| e <= start || s >= end);
    }
}

/// The message life-cycle manager (`sfm::mm`).
///
/// A single process-global instance is available through [`mm()`] (the
/// paper's `sfm::gmm`); independent instances can be created for tests.
pub struct MessageManager {
    records: Mutex<Vec<Record>>,
    strategy: Mutex<LookupStrategy>,
    /// Opt-in lifecycle sanitizer (`None` = disabled, the default). Locked
    /// only after `records` has been released — never nested.
    sanitizer: Mutex<Option<Sanitizer>>,
    /// Live shared-memory segment mappings, base address → mapped bytes.
    /// Maintained unconditionally (cheap), reported through the sanitizer.
    segments: Mutex<std::collections::BTreeMap<usize, usize>>,
    registered: AtomicU64,
    released: AtomicU64,
    expands: AtomicU64,
    published: AtomicU64,
    shared_adoptions: AtomicU64,
}

impl Default for MessageManager {
    fn default() -> Self {
        Self::new()
    }
}

impl MessageManager {
    /// Create an empty manager using binary-search lookup.
    pub fn new() -> Self {
        MessageManager {
            records: Mutex::new(Vec::new()),
            strategy: Mutex::new(LookupStrategy::Binary),
            sanitizer: Mutex::new(None),
            segments: Mutex::new(std::collections::BTreeMap::new()),
            registered: AtomicU64::new(0),
            released: AtomicU64::new(0),
            expands: AtomicU64::new(0),
            published: AtomicU64::new(0),
            shared_adoptions: AtomicU64::new(0),
        }
    }

    /// Select the interior-address lookup strategy (ablation hook).
    pub fn set_lookup_strategy(&self, s: LookupStrategy) {
        *self.strategy.lock() = s;
    }

    /// Enable or disable the lifecycle sanitizer. Returns whether it was
    /// previously enabled. Enabling starts a fresh event log; disabling
    /// discards state.
    ///
    /// The sanitizer is best-effort debug instrumentation: it logs every
    /// lifecycle operation and reports double-release, expand-after-release,
    /// and refcount anomalies through the alert channel (respecting the
    /// active [`AlertPolicy`](crate::AlertPolicy)).
    pub fn set_sanitizer(&self, enabled: bool) -> bool {
        let mut san = self.sanitizer.lock();
        let was = san.is_some();
        *san = enabled.then(Sanitizer::new);
        was
    }

    /// Snapshot of the sanitizer's counters (`None` while disabled).
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.sanitizer.lock().as_ref().map(|s| s.report)
    }

    /// Snapshot of the sanitizer's event log (empty while disabled).
    pub fn lifecycle_events(&self) -> Vec<LifecycleEvent> {
        self.sanitizer
            .lock()
            .as_ref()
            .map(|s| s.events.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Log `op` and purge the released-history for a fresh registration at
    /// `[start, end)` (pool/heap address reuse is legitimate).
    fn sanitize_insert(&self, op: LifecycleOp, start: usize, end: usize, ty: &'static str) {
        if let Some(san) = self.sanitizer.lock().as_mut() {
            san.purge_reused(start, end);
            san.log(op, start, Some(ty));
        }
    }

    /// Register a freshly allocated message whose skeleton occupies the
    /// first `skeleton_size` bytes of `buffer`.
    ///
    /// This is what the overloaded global `new` operator does in the paper:
    /// "the allocated memory segment is then registered into the message
    /// manager, and the message enters the *Allocated* state".
    pub fn register(&self, buffer: Arc<SfmAlloc>, skeleton_size: usize, type_name: &'static str) {
        self.register_as(LifecycleOp::Register, buffer, skeleton_size, type_name);
    }

    /// Register a *loaned* message: identical to
    /// [`MessageManager::register`] except that the buffer lives inside a
    /// shared-memory segment's payload area (wrapped by
    /// [`SfmAlloc::from_extern`]) rather than on the process heap, and the
    /// sanitizer logs the distinct [`LifecycleOp::RegisterLoaned`] op so
    /// tests can confirm a message was built in-segment.
    pub fn register_loaned(
        &self,
        buffer: Arc<SfmAlloc>,
        skeleton_size: usize,
        type_name: &'static str,
    ) {
        self.register_as(
            LifecycleOp::RegisterLoaned,
            buffer,
            skeleton_size,
            type_name,
        );
    }

    fn register_as(
        &self,
        op: LifecycleOp,
        buffer: Arc<SfmAlloc>,
        skeleton_size: usize,
        type_name: &'static str,
    ) {
        debug_assert!(skeleton_size <= buffer.capacity());
        let (start, end) = (buffer.base(), buffer.base() + buffer.capacity());
        self.insert(Record {
            start,
            capacity: buffer.capacity(),
            used: skeleton_size,
            state: MessageState::Allocated,
            type_name,
            registered_ns: buffer.born_ns(),
            buffer,
        });
        self.registered.fetch_add(1, Ordering::Relaxed);
        self.sanitize_insert(op, start, end, type_name);
    }

    /// Register a message adopted from a received frame of `used` bytes
    /// (the paper's "dummy de-serialization routine", Fig. 9): the record is
    /// created directly in the `Published` state.
    pub fn adopt(&self, buffer: Arc<SfmAlloc>, used: usize, type_name: &'static str) {
        debug_assert!(used <= buffer.capacity());
        let (start, end) = (buffer.base(), buffer.base() + buffer.capacity());
        let registered_ns = if rossf_trace::tracer().armed() {
            rossf_trace::now_nanos()
        } else {
            0
        };
        self.insert(Record {
            start,
            capacity: buffer.capacity(),
            used,
            state: MessageState::Published,
            type_name,
            registered_ns,
            buffer,
        });
        self.registered.fetch_add(1, Ordering::Relaxed);
        self.published.fetch_add(1, Ordering::Relaxed);
        self.sanitize_insert(LifecycleOp::Adopt, start, end, type_name);
    }

    /// Note that a subscriber adopted the published message starting at
    /// `start` *in place* — zero-copy same-machine delivery, where the
    /// subscriber's handle shares the publisher's allocation instead of
    /// re-materializing it (Published → Destructed governed purely by the
    /// buffer refcount, §4.2). No record is created or mutated; the record
    /// may already be gone if the publisher released after publishing, which
    /// is fine — the queue's `Arc` keeps the bytes alive.
    pub fn note_shared_adoption(&self, start: usize) {
        self.shared_adoptions.fetch_add(1, Ordering::Relaxed);
        let ty = {
            let records = self.records.lock();
            records
                .binary_search_by(|r| r.start.cmp(&start))
                .ok()
                .map(|idx| records[idx].type_name)
        };
        if let Some(san) = self.sanitizer.lock().as_mut() {
            san.log(LifecycleOp::AdoptShared, start, ty);
        }
    }

    /// Note that a shared-memory segment of `bytes` bytes was mapped at
    /// `base` in this process (publisher segment creation or subscriber
    /// adoption of a peer's memfd). The mapping is tracked until
    /// [`MessageManager::note_segment_unmap`]; anything still tracked when
    /// [`MessageManager::check_leaks`] runs is an orphaned segment.
    pub fn note_segment_map(&self, base: usize, bytes: usize) {
        self.segments.lock().insert(base, bytes);
        if let Some(san) = self.sanitizer.lock().as_mut() {
            san.log(LifecycleOp::SegmentMap, base, None);
        }
    }

    /// Note that the shared-memory segment mapping at `base` was torn down.
    pub fn note_segment_unmap(&self, base: usize) {
        self.segments.lock().remove(&base);
        if let Some(san) = self.sanitizer.lock().as_mut() {
            san.log(LifecycleOp::SegmentUnmap, base, None);
        }
    }

    /// Note that the segment mapped at `base` was recycled for a new frame
    /// (cross-process refcount returned to zero; generation bumped).
    pub fn note_segment_recycle(&self, base: usize) {
        if let Some(san) = self.sanitizer.lock().as_mut() {
            san.log(LifecycleOp::SegmentRecycle, base, None);
        }
    }

    /// Number of shared-memory segment mappings currently live in this
    /// process.
    pub fn live_segments(&self) -> usize {
        self.segments.lock().len()
    }

    /// Snapshot of the live segment mappings as `(base, bytes)` pairs.
    pub fn segment_mappings(&self) -> Vec<(usize, usize)> {
        self.segments.lock().iter().map(|(&b, &n)| (b, n)).collect()
    }

    /// Whether `addr` falls inside a live shared-memory segment mapping —
    /// how the lifecycle sanitizer confirms a loaned message really was
    /// built in-segment rather than on the heap.
    pub fn address_in_segment(&self, addr: usize) -> bool {
        self.segments
            .lock()
            .range(..=addr)
            .next_back()
            .is_some_and(|(&base, &bytes)| addr < base + bytes)
    }

    fn insert(&self, rec: Record) {
        let mut records = self.records.lock();
        let idx = records.partition_point(|r| r.start < rec.start);
        debug_assert!(
            records.get(idx).is_none_or(|r| r.start != rec.start),
            "double registration of base address {:#x}",
            rec.start
        );
        records.insert(idx, rec);
    }

    /// Grow the whole message that contains `field_addr` by `len` bytes,
    /// aligning the new region to `align`. Returns the absolute address of
    /// the new region.
    ///
    /// This is the operation behind first-time string assignment and vector
    /// resizing: "whenever a field requests for extra memory, the message
    /// manager is informed to find the corresponding record of the message
    /// based on the address of the requesting field" (§4.2).
    ///
    /// # Errors
    ///
    /// * [`SfmError::UnmanagedAddress`] if no record contains `field_addr`.
    /// * [`SfmError::CapacityExceeded`] if growth would pass `max_size`.
    pub fn expand(&self, field_addr: usize, len: usize, align: usize) -> Result<usize, SfmError> {
        self.expands.fetch_add(1, Ordering::Relaxed);
        let strategy = *self.strategy.lock();
        let outcome: Result<(usize, &'static str), SfmError> = (|| {
            let mut records = self.records.lock();
            let idx = Self::locate(&records, field_addr, strategy)
                .ok_or(SfmError::UnmanagedAddress { addr: field_addr })?;
            let rec = &mut records[idx];
            let offset = align_up(rec.used, align);
            let new_used = offset.checked_add(len).ok_or(SfmError::CapacityExceeded {
                type_name: rec.type_name,
                requested: len,
                available: rec.capacity - rec.used,
            })?;
            if new_used > rec.capacity {
                return Err(SfmError::CapacityExceeded {
                    type_name: rec.type_name,
                    requested: len,
                    available: rec.capacity - rec.used,
                });
            }
            if offset > rec.used {
                // Zero the alignment gap so the whole message never exposes
                // uninitialized bytes on the wire.
                // SAFETY: [used, offset) is in-bounds (offset <= new_used <=
                // capacity) and not yet part of any field's region.
                unsafe {
                    std::ptr::write_bytes((rec.start + rec.used) as *mut u8, 0, offset - rec.used);
                }
            }
            rec.used = new_used;
            Ok((rec.start + offset, rec.type_name))
        })();
        // Sanitizer pass runs with the records lock already dropped so the
        // alert channel may panic freely.
        let mut anomaly = false;
        if let Some(san) = self.sanitizer.lock().as_mut() {
            match &outcome {
                Ok((_, ty)) => san.log(LifecycleOp::Expand, field_addr, Some(ty)),
                Err(_) if san.in_released(field_addr) => {
                    san.report.expand_after_release += 1;
                    san.log(
                        LifecycleOp::Anomaly(AlertKind::LifecycleExpandAfterRelease),
                        field_addr,
                        None,
                    );
                    anomaly = true;
                }
                Err(_) => san.log(LifecycleOp::Expand, field_addr, None),
            }
        }
        if anomaly {
            raise(AlertKind::LifecycleExpandAfterRelease, "<released message>");
        }
        outcome.map(|(addr, _)| addr)
    }

    fn locate(records: &[Record], addr: usize, strategy: LookupStrategy) -> Option<usize> {
        match strategy {
            LookupStrategy::Binary => {
                // Greatest start <= addr, then containment check.
                let idx = records.partition_point(|r| r.start <= addr);
                if idx == 0 {
                    return None;
                }
                let rec = &records[idx - 1];
                (addr < rec.start + rec.capacity).then_some(idx - 1)
            }
            LookupStrategy::Linear => records
                .iter()
                .position(|r| addr >= r.start && addr < r.start + r.capacity),
        }
    }

    /// Mark the message starting at `start` as published.
    ///
    /// Idempotent; unknown addresses are ignored (publishing an already
    /// released message is handled by the `Arc` held in the transmission
    /// queue).
    pub fn mark_published(&self, start: usize) {
        let mut ty = None;
        {
            let mut records = self.records.lock();
            if let Ok(idx) = records.binary_search_by(|r| r.start.cmp(&start)) {
                ty = Some(records[idx].type_name);
                if records[idx].state != MessageState::Published {
                    records[idx].state = MessageState::Published;
                    self.published.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        if let Some(san) = self.sanitizer.lock().as_mut() {
            san.log(LifecycleOp::MarkPublished, start, ty);
        }
    }

    /// Remove the record for the message starting at `start`, dropping the
    /// manager's buffer-pointer clone (the overloaded `delete` operator).
    ///
    /// If a transmission queue or another `Arc` still references the buffer
    /// the bytes stay alive; otherwise they are freed now ("only when the
    /// reference count becomes zero will the message memory be actually
    /// freed").
    pub fn release(&self, start: usize) {
        // (found-record facts, gathered under the records lock)
        let mut removed: Option<(usize, &'static str, usize)> = None;
        {
            let mut records = self.records.lock();
            if let Ok(idx) = records.binary_search_by(|r| r.start.cmp(&start)) {
                let refs = Arc::strong_count(&records[idx].buffer);
                let rec = records.remove(idx);
                removed = Some((rec.capacity, rec.type_name, refs));
                self.released.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut alert = None;
        if let Some(san) = self.sanitizer.lock().as_mut() {
            match removed {
                Some((capacity, ty, refs)) => {
                    san.log(LifecycleOp::Release, start, Some(ty));
                    san.remember_released(start, start + capacity);
                    // A live developer handle plus the record's own clone
                    // means >= 2 strong references at release entry; a count
                    // of 1 means the caller released through a dangling
                    // handle (the record was the last owner).
                    if refs < 2 {
                        san.report.refcount_anomaly += 1;
                        san.log(
                            LifecycleOp::Anomaly(AlertKind::LifecycleRefcountAnomaly),
                            start,
                            Some(ty),
                        );
                        alert = Some((AlertKind::LifecycleRefcountAnomaly, ty));
                    }
                }
                None if san.in_released(start) => {
                    san.report.double_release += 1;
                    san.log(
                        LifecycleOp::Anomaly(AlertKind::LifecycleDoubleRelease),
                        start,
                        None,
                    );
                    alert = Some((AlertKind::LifecycleDoubleRelease, "<released message>"));
                }
                None => san.log(LifecycleOp::Release, start, None),
            }
        }
        if let Some((kind, ty)) = alert {
            raise(kind, ty);
        }
    }

    /// Scan for `Allocated` records that were never published or released —
    /// the leak check the sanitizer runs at shutdown. Returns the leaked
    /// records; raises one [`AlertKind::LifecycleLeak`] alert (naming the
    /// first leaked type) when any are found and the sanitizer is enabled.
    ///
    /// The scan also covers orphaned shared-memory segments: any mapping
    /// noted through [`MessageManager::note_segment_map`] and never
    /// unmapped counts into [`SanitizerReport::leaked_segments`] and raises
    /// the same alert kind.
    pub fn check_leaks(&self) -> Vec<RecordInfo> {
        let leaked: Vec<RecordInfo> = {
            let records = self.records.lock();
            records
                .iter()
                .filter(|r| r.state == MessageState::Allocated)
                .map(|r| RecordInfo {
                    start: r.start,
                    capacity: r.capacity,
                    used: r.used,
                    state: r.state,
                    type_name: r.type_name,
                    buffer_refs: Arc::strong_count(&r.buffer),
                    registered_ns: r.registered_ns,
                })
                .collect()
        };
        let live_segments = self.segment_mappings();
        let mut alert = None;
        if let Some(san) = self.sanitizer.lock().as_mut() {
            san.report.leaked_allocated = leaked.len() as u64;
            san.report.leaked_segments = live_segments.len() as u64;
            if let Some(first) = leaked.first() {
                san.log(
                    LifecycleOp::Anomaly(AlertKind::LifecycleLeak),
                    first.start,
                    Some(first.type_name),
                );
                alert = Some(first.type_name);
            } else if let Some(&(base, _)) = live_segments.first() {
                san.log(LifecycleOp::Anomaly(AlertKind::LifecycleLeak), base, None);
                alert = Some("<shm segment>");
            }
        }
        if let Some(ty) = alert {
            raise(AlertKind::LifecycleLeak, ty);
        }
        leaked
    }

    /// Current whole-message size of the record containing `addr`.
    ///
    /// # Errors
    ///
    /// [`SfmError::UnmanagedAddress`] if no record contains `addr`.
    pub fn used_size(&self, addr: usize) -> Result<usize, SfmError> {
        let records = self.records.lock();
        Self::locate(&records, addr, LookupStrategy::Binary)
            .map(|i| records[i].used)
            .ok_or(SfmError::UnmanagedAddress { addr })
    }

    /// Clone the buffer pointer of the message starting at `start` (used by
    /// `publish` to hand a reference to the transmission queue, Fig. 8).
    ///
    /// # Errors
    ///
    /// [`SfmError::UnmanagedAddress`] if `start` is not a registered base.
    pub fn buffer_of(&self, start: usize) -> Result<Arc<SfmAlloc>, SfmError> {
        let records = self.records.lock();
        records
            .binary_search_by(|r| r.start.cmp(&start))
            .map(|idx| Arc::clone(&records[idx].buffer))
            .map_err(|_| SfmError::UnmanagedAddress { addr: start })
    }

    /// Snapshot of the record containing `addr`, if any.
    pub fn info(&self, addr: usize) -> Option<RecordInfo> {
        let records = self.records.lock();
        Self::locate(&records, addr, LookupStrategy::Binary).map(|i| {
            let r = &records[i];
            RecordInfo {
                start: r.start,
                capacity: r.capacity,
                used: r.used,
                state: r.state,
                type_name: r.type_name,
                buffer_refs: Arc::strong_count(&r.buffer),
                registered_ns: r.registered_ns,
            }
        })
    }

    /// Number of live records.
    pub fn live(&self) -> usize {
        self.records.lock().len()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ManagerStats {
        ManagerStats {
            registered: self.registered.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            expands: self.expands.load(Ordering::Relaxed),
            published: self.published.load(Ordering::Relaxed),
            shared_adoptions: self.shared_adoptions.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for MessageManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MessageManager")
            .field("live", &self.live())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The process-global message manager (the paper's `sfm::gmm`).
pub fn mm() -> &'static MessageManager {
    static GLOBAL: OnceLock<MessageManager> = OnceLock::new();
    GLOBAL.get_or_init(MessageManager::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(cap: usize) -> Arc<SfmAlloc> {
        Arc::new(SfmAlloc::new(cap))
    }

    #[test]
    fn register_and_release_roundtrip() {
        let m = MessageManager::new();
        let a = alloc(256);
        let base = a.base();
        m.register(a, 24, "t/A");
        assert_eq!(m.live(), 1);
        let info = m.info(base).unwrap();
        assert_eq!(info.used, 24);
        assert_eq!(info.state, MessageState::Allocated);
        assert_eq!(info.type_name, "t/A");
        m.release(base);
        assert_eq!(m.live(), 0);
        assert!(m.info(base).is_none());
    }

    #[test]
    fn expand_by_interior_address() {
        let m = MessageManager::new();
        let a = alloc(256);
        let base = a.base();
        m.register(a, 24, "t/A");
        // A field in the middle of the skeleton requests 10 bytes.
        let got = m.expand(base + 8, 10, 1).unwrap();
        assert_eq!(got, base + 24);
        assert_eq!(m.used_size(base).unwrap(), 34);
        // Next request is aligned up.
        let got2 = m.expand(base + 16, 8, 8).unwrap();
        assert_eq!(got2, base + 40); // 34 aligned to 8 = 40
        assert_eq!(m.used_size(base).unwrap(), 48);
    }

    #[test]
    fn expand_unmanaged_address_errors() {
        let m = MessageManager::new();
        let err = m.expand(0x1000, 4, 1).unwrap_err();
        assert!(matches!(err, SfmError::UnmanagedAddress { .. }));
    }

    #[test]
    fn expand_beyond_capacity_errors() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(a, 24, "t/A");
        let err = m.expand(base, 100, 1).unwrap_err();
        assert!(matches!(err, SfmError::CapacityExceeded { .. }));
        // used must be unchanged after a failed expand.
        assert_eq!(m.used_size(base).unwrap(), 24);
    }

    #[test]
    fn lookup_finds_correct_record_among_many() {
        let m = MessageManager::new();
        let allocs: Vec<_> = (0..32).map(|_| alloc(128)).collect();
        for a in &allocs {
            m.register(Arc::clone(a), 16, "t/A");
        }
        for strategy in [LookupStrategy::Binary, LookupStrategy::Linear] {
            m.set_lookup_strategy(strategy);
            for a in &allocs {
                let got = m.expand(a.base() + 120, 0, 1).unwrap();
                assert!(got >= a.base() && got <= a.base() + 128);
            }
        }
    }

    #[test]
    fn linear_and_binary_agree_on_miss() {
        let m = MessageManager::new();
        let a = alloc(64);
        m.register(Arc::clone(&a), 8, "t/A");
        let miss = a.base().wrapping_add(64); // one past the end
        for strategy in [LookupStrategy::Binary, LookupStrategy::Linear] {
            m.set_lookup_strategy(strategy);
            assert!(m.expand(miss, 1, 1).is_err());
        }
    }

    #[test]
    fn mark_published_transitions_once() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(a, 8, "t/A");
        m.mark_published(base);
        m.mark_published(base);
        assert_eq!(m.info(base).unwrap().state, MessageState::Published);
        assert_eq!(m.stats().published, 1);
    }

    #[test]
    fn adopt_starts_published() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.adopt(a, 40, "t/A");
        let info = m.info(base).unwrap();
        assert_eq!(info.state, MessageState::Published);
        assert_eq!(info.used, 40);
    }

    #[test]
    fn buffer_of_clones_refcount() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(Arc::clone(&a), 8, "t/A");
        let before = m.info(base).unwrap().buffer_refs;
        let extra = m.buffer_of(base).unwrap();
        let after = m.info(base).unwrap().buffer_refs;
        assert_eq!(after, before + 1);
        drop(extra);
        assert_eq!(m.info(base).unwrap().buffer_refs, before);
    }

    #[test]
    fn release_keeps_bytes_alive_while_queue_holds_arc() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(Arc::clone(&a), 8, "t/A");
        let queue_copy = m.buffer_of(base).unwrap();
        m.release(base);
        assert_eq!(m.live(), 0);
        // Bytes still addressable through the queue's clone.
        assert_eq!(queue_copy.base(), base);
        assert_eq!(queue_copy.slice(8).len(), 8);
        drop(a);
        drop(queue_copy); // memory actually freed here (Destructed)
    }

    #[test]
    fn stats_accumulate() {
        let m = MessageManager::new();
        let a = alloc(64);
        let base = a.base();
        m.register(a, 8, "t/A");
        m.expand(base, 4, 1).unwrap();
        m.mark_published(base);
        m.release(base);
        let s = m.stats();
        assert_eq!(s.registered, 1);
        assert_eq!(s.expands, 1);
        assert_eq!(s.published, 1);
        assert_eq!(s.released, 1);
    }

    #[test]
    fn shared_adoption_counts_and_logs_without_touching_records() {
        let m = MessageManager::new();
        m.set_sanitizer(true);
        let a = alloc(64);
        let base = a.base();
        m.register(Arc::clone(&a), 8, "t/A");
        m.mark_published(base);
        m.note_shared_adoption(base);
        assert_eq!(m.stats().shared_adoptions, 1);
        assert_eq!(m.live(), 1, "no record created or removed");
        let ev = m.lifecycle_events();
        let shared = ev
            .iter()
            .find(|e| e.op == LifecycleOp::AdoptShared)
            .expect("AdoptShared logged");
        assert_eq!(shared.addr, base);
        assert_eq!(shared.type_name, Some("t/A"));
        m.release(base);
        // After release the record is gone; the notation still counts.
        m.note_shared_adoption(base);
        assert_eq!(m.stats().shared_adoptions, 2);
    }

    #[test]
    fn global_manager_is_singleton() {
        assert!(std::ptr::eq(mm(), mm()));
    }

    // --- lifecycle sanitizer ---
    //
    // All sanitizer tests use a private manager and the counting alert
    // policy (under the alert test guard, since policy is process-global).

    fn with_counting_alerts<R>(f: impl FnOnce() -> R) -> R {
        let _g = crate::alert::test_guard();
        let prev = crate::set_alert_policy(crate::AlertPolicy::Count);
        let r = f();
        crate::set_alert_policy(prev);
        r
    }

    #[test]
    fn sanitizer_disabled_by_default_and_toggles() {
        let m = MessageManager::new();
        assert!(m.sanitizer_report().is_none());
        assert!(m.lifecycle_events().is_empty());
        assert!(!m.set_sanitizer(true));
        assert!(m.sanitizer_report().is_some());
        assert!(m.set_sanitizer(false));
        assert!(m.sanitizer_report().is_none());
    }

    #[test]
    fn sanitizer_logs_normal_lifecycle() {
        let m = MessageManager::new();
        m.set_sanitizer(true);
        let a = alloc(256);
        let base = a.base();
        m.register(Arc::clone(&a), 24, "t/A");
        m.expand(base + 8, 10, 1).unwrap();
        m.mark_published(base);
        m.release(base);
        drop(a);
        let ops: Vec<LifecycleOp> = m.lifecycle_events().iter().map(|e| e.op).collect();
        assert_eq!(
            ops,
            vec![
                LifecycleOp::Register,
                LifecycleOp::Expand,
                LifecycleOp::MarkPublished,
                LifecycleOp::Release,
            ]
        );
        let rep = m.sanitizer_report().unwrap();
        assert_eq!(rep.events_logged, 4);
        assert_eq!(rep.double_release, 0);
        assert_eq!(rep.refcount_anomaly, 0);
    }

    #[test]
    fn sanitizer_detects_double_release() {
        with_counting_alerts(|| {
            let m = MessageManager::new();
            m.set_sanitizer(true);
            let a = alloc(128);
            let base = a.base();
            m.register(Arc::clone(&a), 16, "t/A");
            m.release(base);
            let before = crate::lifecycle_alert_count();
            m.release(base); // stale handle strikes again
            let rep = m.sanitizer_report().unwrap();
            assert_eq!(rep.double_release, 1);
            assert_eq!(crate::lifecycle_alert_count(), before + 1);
            assert!(m
                .lifecycle_events()
                .iter()
                .any(|e| e.op == LifecycleOp::Anomaly(AlertKind::LifecycleDoubleRelease)));
        });
    }

    #[test]
    fn sanitizer_detects_expand_after_release() {
        with_counting_alerts(|| {
            let m = MessageManager::new();
            m.set_sanitizer(true);
            let a = alloc(128);
            let base = a.base();
            m.register(Arc::clone(&a), 16, "t/A");
            m.release(base);
            assert!(m.expand(base + 8, 4, 1).is_err());
            let rep = m.sanitizer_report().unwrap();
            assert_eq!(rep.expand_after_release, 1);
        });
    }

    #[test]
    fn sanitizer_detects_refcount_anomaly() {
        with_counting_alerts(|| {
            let m = MessageManager::new();
            m.set_sanitizer(true);
            let a = alloc(128);
            let base = a.base();
            m.register(a, 16, "t/A"); // record holds the ONLY Arc
            m.release(base);
            let rep = m.sanitizer_report().unwrap();
            assert_eq!(rep.refcount_anomaly, 1);
        });
    }

    #[test]
    fn sanitizer_forgives_address_reuse() {
        with_counting_alerts(|| {
            let m = MessageManager::new();
            m.set_sanitizer(true);
            let a = alloc(128);
            let base = a.base();
            m.register(Arc::clone(&a), 16, "t/A");
            m.release(base);
            // The "allocator" hands the same base back: re-registering must
            // purge the released-history so the next release is clean.
            m.register(Arc::clone(&a), 16, "t/B");
            m.release(base);
            let rep = m.sanitizer_report().unwrap();
            assert_eq!(rep.double_release, 0);
        });
    }

    #[test]
    fn sanitizer_leak_check_finds_allocated_records() {
        with_counting_alerts(|| {
            let m = MessageManager::new();
            m.set_sanitizer(true);
            let a = alloc(128);
            let b = alloc(128);
            m.register(Arc::clone(&a), 16, "t/Leaky");
            m.register(Arc::clone(&b), 16, "t/B");
            m.mark_published(b.base());
            let before = crate::lifecycle_alert_count();
            let leaked = m.check_leaks();
            assert_eq!(leaked.len(), 1);
            assert_eq!(leaked[0].type_name, "t/Leaky");
            assert_eq!(m.sanitizer_report().unwrap().leaked_allocated, 1);
            assert_eq!(crate::lifecycle_alert_count(), before + 1);
            m.release(a.base());
            m.release(b.base());
            assert!(m.check_leaks().is_empty());
        });
    }

    #[test]
    fn sanitizer_event_log_is_bounded() {
        let m = MessageManager::new();
        m.set_sanitizer(true);
        let a = alloc(64);
        m.register(Arc::clone(&a), 8, "t/A");
        let base = a.base();
        for _ in 0..(super::SANITIZER_EVENTS_CAP + 100) {
            m.mark_published(base);
        }
        assert_eq!(m.lifecycle_events().len(), super::SANITIZER_EVENTS_CAP);
        assert!(m.sanitizer_report().unwrap().events_logged > super::SANITIZER_EVENTS_CAP as u64);
        m.release(base);
    }

    #[test]
    fn segment_tracking_and_leak_detection() {
        with_counting_alerts(|| {
            let m = MessageManager::new();
            m.set_sanitizer(true);
            m.note_segment_map(0x7000_0000, 4096);
            m.note_segment_map(0x7000_2000, 8192);
            m.note_segment_recycle(0x7000_0000);
            assert_eq!(m.live_segments(), 2);
            assert_eq!(
                m.segment_mappings(),
                vec![(0x7000_0000, 4096), (0x7000_2000, 8192)]
            );
            let before = crate::lifecycle_alert_count();
            m.check_leaks();
            assert_eq!(m.sanitizer_report().unwrap().leaked_segments, 2);
            assert_eq!(crate::lifecycle_alert_count(), before + 1);
            m.note_segment_unmap(0x7000_0000);
            m.note_segment_unmap(0x7000_2000);
            assert_eq!(m.live_segments(), 0);
            m.check_leaks();
            assert_eq!(m.sanitizer_report().unwrap().leaked_segments, 0);
            let ops: Vec<LifecycleOp> = m.lifecycle_events().iter().map(|e| e.op).collect();
            assert!(ops.contains(&LifecycleOp::SegmentMap));
            assert!(ops.contains(&LifecycleOp::SegmentRecycle));
            assert!(ops.contains(&LifecycleOp::SegmentUnmap));
        });
    }

    #[test]
    fn register_loaned_logs_distinct_op() {
        let m = MessageManager::new();
        m.set_sanitizer(true);
        let a = alloc(128);
        let base = a.base();
        m.register_loaned(Arc::clone(&a), 16, "t/Loaned");
        assert_eq!(m.info(base).unwrap().state, MessageState::Allocated);
        let ops: Vec<LifecycleOp> = m.lifecycle_events().iter().map(|e| e.op).collect();
        assert_eq!(ops, vec![LifecycleOp::RegisterLoaned]);
        // Loaned records work through the ordinary lifecycle afterwards.
        m.expand(base + 8, 4, 1).unwrap();
        m.mark_published(base);
        m.release(base);
        drop(a);
    }

    #[test]
    fn address_in_segment_checks_containment() {
        let m = MessageManager::new();
        m.note_segment_map(0x7000_0000, 4096);
        assert!(m.address_in_segment(0x7000_0000));
        assert!(m.address_in_segment(0x7000_0FFF));
        assert!(!m.address_in_segment(0x7000_1000));
        assert!(!m.address_in_segment(0x6FFF_FFFF));
        m.note_segment_unmap(0x7000_0000);
        assert!(!m.address_in_segment(0x7000_0000));
    }

    #[test]
    fn debug_impl_nonempty() {
        let m = MessageManager::new();
        assert!(format!("{m:?}").contains("MessageManager"));
    }
}
