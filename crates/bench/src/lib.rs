//! # rossf-bench — the evaluation harness
//!
//! One binary per figure/table of the paper's §5 (see DESIGN.md's
//! experiment index):
//!
//! | binary                 | reproduces |
//! |------------------------|-----------|
//! | `fig13_intra`          | Fig. 13 — intra-machine latency, ROS vs ROS-SF, 3 sizes |
//! | `fig14_middleware`     | Fig. 14 — six middleware at 6 MB |
//! | `fig16_inter`          | Fig. 16 — inter-machine ping-pong over a simulated 10 GbE link |
//! | `fig18_slam`           | Fig. 18 — ORB-SLAM case-study latencies |
//! | `table1_applicability` | Table 1 — assumption-violation census |
//! | `link_sweep`           | §1 motivation — serialization share vs link speed |
//!
//! Each prints the same rows/series the paper reports. Run with
//! `--release`; pass `--quick` for a fast smoke run or `--iters N` /
//! `--hz F` to control the workload (the paper uses 2000 messages at
//! 10 Hz).
//!
//! The library half hosts the shared experiment runners so the harness
//! logic itself is unit-testable.

#![deny(missing_docs)]

pub mod args;
pub mod experiments;
pub mod report;
pub mod stats;

pub use args::RunArgs;
pub use report::ScenarioReport;
pub use stats::Stats;
