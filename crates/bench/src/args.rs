//! Minimal command-line handling shared by the harness binaries.

/// Workload parameters for a harness run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunArgs {
    /// Messages per configuration (paper: 2000).
    pub iters: usize,
    /// Publish rate in Hz; `0.0` publishes as fast as the pipeline drains
    /// (paper: 10 Hz).
    pub hz: f64,
}

impl Default for RunArgs {
    fn default() -> Self {
        // 300 messages, paced gently: minutes-long paper runs compressed
        // to seconds while keeping queues drained like the 10 Hz original.
        RunArgs {
            iters: 300,
            hz: 0.0,
        }
    }
}

impl RunArgs {
    /// Parse `--iters N`, `--hz F`, `--quick` from an argument iterator.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse(args: impl Iterator<Item = String>) -> RunArgs {
        let mut out = RunArgs::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--iters" => {
                    let v = args.next().expect("--iters needs a value");
                    out.iters = v.parse().expect("--iters must be an integer");
                }
                "--hz" => {
                    let v = args.next().expect("--hz needs a value");
                    out.hz = v.parse().expect("--hz must be a number");
                }
                "--quick" => {
                    out.iters = 30;
                }
                "--paper" => {
                    // The paper's exact workload: 2000 messages at 10 Hz.
                    out.iters = 2000;
                    out.hz = 10.0;
                }
                other => panic!(
                    "unknown argument `{other}`; expected --iters N, --hz F, --quick, --paper"
                ),
            }
        }
        out
    }

    /// Parse from the process arguments.
    pub fn from_env() -> RunArgs {
        Self::parse(std::env::args().skip(1))
    }

    /// Gap between publishes implied by `hz` (zero when unpaced).
    pub fn gap(&self) -> std::time::Duration {
        if self.hz <= 0.0 {
            // A small pause keeps the single-core test box from starving
            // the reader threads between publishes.
            std::time::Duration::from_millis(2)
        } else {
            std::time::Duration::from_secs_f64(1.0 / self.hz)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> RunArgs {
        RunArgs::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]);
        assert_eq!(a.iters, 300);
        assert!(a.gap() > std::time::Duration::ZERO);
    }

    #[test]
    fn explicit_values() {
        let a = parse(&["--iters", "50", "--hz", "20"]);
        assert_eq!(a.iters, 50);
        assert_eq!(a.hz, 20.0);
        assert_eq!(a.gap(), std::time::Duration::from_millis(50));
    }

    #[test]
    fn quick_and_paper_presets() {
        assert_eq!(parse(&["--quick"]).iters, 30);
        let p = parse(&["--paper"]);
        assert_eq!((p.iters, p.hz), (2000, 10.0));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_panics() {
        let _ = parse(&["--frobnicate"]);
    }
}
