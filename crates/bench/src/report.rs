//! Machine-readable benchmark output.
//!
//! Every harness binary writes a `results/BENCH_<fig>.json` next to its
//! human-readable table so runs can be diffed and plotted without
//! scraping stdout. The JSON is hand-rolled (the workspace carries no
//! serde) and intentionally flat: one object per measured scenario with
//! the latency percentiles and derived throughput.

use crate::stats::Stats;
use rossf_trace::{Stage, TopicSnapshot};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Provenance of one benchmark run, embedded in every report document so a
/// results file can be matched to the code and build that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// `git rev-parse HEAD` of the working tree, or `"unknown"` outside a
    /// repository.
    pub git_sha: String,
    /// UTC wall-clock time of the run, `YYYY-MM-DDTHH:MM:SSZ`.
    pub timestamp_utc: String,
    /// Cargo profile the harness was compiled under.
    pub profile: &'static str,
}

impl RunMeta {
    /// Capture the current process's provenance.
    pub fn capture() -> RunMeta {
        let git_sha = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        RunMeta {
            git_sha,
            timestamp_utc: utc_timestamp(secs),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        }
    }
}

/// Format seconds-since-Unix-epoch as `YYYY-MM-DDTHH:MM:SSZ` (the workspace
/// carries no date crate; the civil-date conversion is the standard
/// days-to-date algorithm).
fn utc_timestamp(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let rem = unix_secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem / 60) % 60, rem % 60);
    // Shift epoch from 1970-01-01 to 0000-03-01 so leap days land at the
    // end of the (shifted) year.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// One measured scenario: a (series, payload) cell of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Human-readable scenario label, e.g. `"sfm ten_gbe 800x600"`.
    pub scenario: String,
    /// Payload size carried per message, in bytes.
    pub payload_bytes: u64,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Sustained message rate implied by the mean latency. The harness
    /// keeps exactly one message in flight (Fig. 12 protocol), so rate
    /// is the reciprocal of the mean round time.
    pub msgs_per_s: f64,
    /// Payload throughput implied by `msgs_per_s`.
    pub bytes_per_s: f64,
    /// Live threads of the harness process at steady state, when the
    /// scenario measures resource footprint (the soak report). The
    /// reactor keeps this independent of link count, and the trajectory
    /// gate holds it there.
    pub threads: Option<u64>,
    /// Open descriptors (`/proc/self/fd`) at steady state, when measured.
    pub fds: Option<u64>,
    /// Resident set size (`VmRSS`) in kB at steady state, when measured.
    /// Recorded for trend-watching, not gated (allocator noise).
    pub rss_kb: Option<u64>,
    /// Wire bytes the publisher pushed over the scenario, when the harness
    /// samples transport counters. Projected subscriptions make this
    /// diverge from `payload_bytes × messages`; recorded, not gated.
    pub bytes_sent: Option<u64>,
    /// Wire bytes the subscriber accepted over the scenario, when measured.
    pub bytes_received: Option<u64>,
    /// Frames a bag recorder's capture taps accepted during the scenario
    /// (the `bag_gate` report). Recorded, not latency-gated.
    pub bag_frames_recorded: Option<u64>,
    /// Frames the recorder shed because its bounded writer queue was full;
    /// the bag gate requires this to stay 0.
    pub bag_frames_dropped: Option<u64>,
    /// Payload bytes accepted for bag writing during the scenario.
    pub bag_bytes_written: Option<u64>,
    /// Frames a bag replayer re-published during the scenario.
    pub bag_frames_replayed: Option<u64>,
}

impl ScenarioReport {
    /// Derive a report row from a latency summary.
    pub fn from_stats(scenario: &str, payload_bytes: u64, stats: &Stats) -> ScenarioReport {
        let msgs_per_s = if stats.mean_ms > 0.0 {
            1000.0 / stats.mean_ms
        } else {
            0.0
        };
        ScenarioReport {
            scenario: scenario.to_string(),
            payload_bytes,
            p50_ms: stats.p50_ms,
            p99_ms: stats.p99_ms,
            msgs_per_s,
            bytes_per_s: msgs_per_s * payload_bytes as f64,
            threads: None,
            fds: None,
            rss_kb: None,
            bytes_sent: stats.wire_bytes.map(|(sent, _)| sent),
            bytes_received: stats.wire_bytes.map(|(_, received)| received),
            bag_frames_recorded: None,
            bag_frames_dropped: None,
            bag_bytes_written: None,
            bag_frames_replayed: None,
        }
    }

    /// Attach steady-state process counts (soak report rows).
    pub fn with_process_counts(mut self, threads: u64, fds: u64, rss_kb: u64) -> ScenarioReport {
        self.threads = Some(threads);
        self.fds = Some(fds);
        self.rss_kb = Some(rss_kb);
        self
    }

    /// Attach measured wire-byte totals (rows sampling transport counters).
    pub fn with_wire_bytes(mut self, sent: u64, received: u64) -> ScenarioReport {
        self.bytes_sent = Some(sent);
        self.bytes_received = Some(received);
        self
    }

    /// Attach bag recorder/replayer counters (the `bag_gate` report rows).
    pub fn with_bag_counts(
        mut self,
        recorded: u64,
        dropped: u64,
        bytes: u64,
        replayed: u64,
    ) -> ScenarioReport {
        self.bag_frames_recorded = Some(recorded);
        self.bag_frames_dropped = Some(dropped);
        self.bag_bytes_written = Some(bytes);
        self.bag_frames_replayed = Some(replayed);
        self
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity literals; clamp pathological values to 0.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

fn meta_fragment(meta: &RunMeta) -> String {
    format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"timestamp_utc\": \"{}\", \"profile\": \"{}\"}},\n",
        escape(&meta.git_sha),
        escape(&meta.timestamp_utc),
        meta.profile,
    )
}

/// Render the report document for `fig` (e.g. `"fig16"`).
pub fn render_json(fig: &str, meta: &RunMeta, rows: &[ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"fig\": \"{}\",\n", escape(fig)));
    out.push_str(&meta_fragment(meta));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let mut counts = String::new();
        for (key, v) in [
            ("threads", r.threads),
            ("fds", r.fds),
            ("rss_kb", r.rss_kb),
            ("bytes_sent", r.bytes_sent),
            ("bytes_received", r.bytes_received),
            ("bag_frames_recorded", r.bag_frames_recorded),
            ("bag_frames_dropped", r.bag_frames_dropped),
            ("bag_bytes_written", r.bag_bytes_written),
            ("bag_frames_replayed", r.bag_frames_replayed),
        ] {
            if let Some(v) = v {
                counts.push_str(&format!(", \"{key}\": {v}"));
            }
        }
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"payload_bytes\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"msgs_per_s\": {}, \"bytes_per_s\": {}{}}}{}\n",
            escape(&r.scenario),
            r.payload_bytes,
            num(r.p50_ms),
            num(r.p99_ms),
            num(r.msgs_per_s),
            num(r.bytes_per_s),
            counts,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Where `results/` lives: the working directory if it already has one
/// (the repo root when run via `cargo run`), otherwise relative to the
/// bench crate's manifest so binaries invoked from anywhere agree.
fn results_dir() -> PathBuf {
    let cwd = PathBuf::from("results");
    if cwd.is_dir() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Write `results/BENCH_<fig>.json`, creating the directory if needed.
/// Returns the path written, so binaries can tell the user where it went.
pub fn write_report(fig: &str, rows: &[ScenarioReport]) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{fig}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_json(fig, &RunMeta::capture(), rows).as_bytes())?;
    Ok(path)
}

/// One measured tier of a figure's trace section: a stage-latency waterfall
/// plus the end-to-end latency it should telescope to.
#[derive(Debug, Clone)]
pub struct TraceWaterfall {
    /// Series label, e.g. `"tcp"`, `"fastpath"`, `"local"`.
    pub label: String,
    /// The per-topic stage histograms collected during the run.
    pub snapshot: TopicSnapshot,
    /// Mean end-to-end latency measured by the harness, microseconds.
    pub e2e_mean_us: f64,
}

impl TraceWaterfall {
    /// Sum of per-stage mean durations (callback included, faults
    /// excluded), microseconds. Stages telescope, so this should land near
    /// `e2e_mean_us`.
    pub fn stage_sum_us(&self) -> f64 {
        self.snapshot.stage_sum_ns(true) / 1e3
    }

    /// `|stage_sum − e2e| / e2e`, the telescoping-consistency measure the
    /// harness gates on (0 when e2e was not measured).
    pub fn sum_error(&self) -> f64 {
        if self.e2e_mean_us > 0.0 {
            (self.stage_sum_us() - self.e2e_mean_us).abs() / self.e2e_mean_us
        } else {
            0.0
        }
    }
}

/// Render the trace document for `fig` (e.g. `"fig16"`).
pub fn render_trace_json(fig: &str, meta: &RunMeta, tiers: &[TraceWaterfall]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"fig\": \"{}\",\n", escape(fig)));
    out.push_str(&meta_fragment(meta));
    out.push_str("  \"tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tier\": \"{}\", \"topic\": \"{}\", \"e2e_mean_us\": {}, \"stage_sum_us\": {}, \"sum_error\": {}, \"stages\": [\n",
            escape(&t.label),
            escape(&t.snapshot.topic),
            num(t.e2e_mean_us),
            num(t.stage_sum_us()),
            num(t.sum_error()),
        ));
        let cells: Vec<_> = t
            .snapshot
            .cells
            .iter()
            .filter(|c| c.stage != Stage::Fault)
            .collect();
        for (j, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"stage\": \"{}\", \"tier\": \"{}\", \"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{}\n",
                c.stage.name(),
                c.tier.name(),
                c.hist.count,
                num(c.hist.mean_ns() / 1e3),
                num(c.hist.quantile_ns(0.5) / 1e3),
                num(c.hist.quantile_ns(0.99) / 1e3),
                num(c.hist.max_ns as f64 / 1e3),
                if j + 1 < cells.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < tiers.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `results/TRACE_<fig>.json`, creating the directory if needed.
pub fn write_trace_report(fig: &str, tiers: &[TraceWaterfall]) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("TRACE_{fig}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_trace_json(fig, &RunMeta::capture(), tiers).as_bytes())?;
    Ok(path)
}

/// One `BENCH_*.json` document folded into the trajectory summary: its
/// provenance plus the scenario rows carried verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryRun {
    /// Figure id, e.g. `"fig16"`.
    pub fig: String,
    /// Git SHA the report was produced from.
    pub git_sha: String,
    /// UTC wall-clock time of the producing run.
    pub timestamp_utc: String,
    /// Cargo profile of the producing run.
    pub profile: String,
    /// The scenario row objects, verbatim from the source document.
    pub scenario_rows: String,
    /// Number of scenario rows in `scenario_rows`.
    pub scenario_count: usize,
}

/// Extract the string value of `"key": "..."` from a report document
/// (handles the escapes [`render_json`] emits).
fn extract_str_field(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = doc.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = doc[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Parse one `BENCH_*.json` document produced by [`render_json`] back into
/// a [`TrajectoryRun`]. Returns `None` when the document doesn't have the
/// expected shape (hand-edited or from an incompatible version).
pub fn parse_report_doc(doc: &str) -> Option<TrajectoryRun> {
    let fig = extract_str_field(doc, "fig")?;
    let git_sha = extract_str_field(doc, "git_sha")?;
    let timestamp_utc = extract_str_field(doc, "timestamp_utc")?;
    let profile = extract_str_field(doc, "profile")?;
    let open = doc.find("\"scenarios\": [")? + "\"scenarios\": [".len();
    let close = doc[open..].find("\n  ]")? + open;
    let scenario_rows = doc[open..close].trim_matches('\n').to_string();
    let scenario_count = scenario_rows.matches("\"scenario\":").count();
    Some(TrajectoryRun {
        fig,
        git_sha,
        timestamp_utc,
        profile,
        scenario_rows,
        scenario_count,
    })
}

/// Extract the numeric value of `"key": <number>` from a JSON fragment.
fn extract_num_field(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = doc.find(&needle)? + needle.len();
    let end = doc[start..]
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .map_or(doc.len(), |i| start + i);
    doc[start..end].parse().ok()
}

/// The latency percentiles of one scenario row, parsed back out of a
/// report/trajectory document for regression comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Scenario label, e.g. `"same-machine shm 1MB"`.
    pub scenario: String,
    /// Median latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: f64,
    /// Steady-state thread count, when the row carries one (soak rows).
    pub threads: Option<f64>,
    /// Steady-state open-descriptor count, when the row carries one.
    pub fds: Option<f64>,
}

/// Parse the scenario row objects carried verbatim in a
/// [`TrajectoryRun::scenario_rows`] string (or a `BENCH_*.json` scenarios
/// array body). Rows missing a field are skipped.
pub fn parse_scenario_rows(rows: &str) -> Vec<ScenarioRow> {
    rows.split("{\"scenario\": \"")
        .skip(1)
        .filter_map(|chunk| {
            let obj = format!("{{\"scenario\": \"{chunk}");
            Some(ScenarioRow {
                scenario: extract_str_field(&obj, "scenario")?,
                p50_ms: extract_num_field(&obj, "p50_ms")?,
                p99_ms: extract_num_field(&obj, "p99_ms")?,
                threads: extract_num_field(&obj, "threads"),
                fds: extract_num_field(&obj, "fds"),
            })
        })
        .collect()
}

/// Parse a `TRAJECTORY.json` document (produced by [`render_trajectory`])
/// back into its runs. Returns an empty vector for documents without a
/// recognizable `runs` array.
pub fn parse_trajectory_doc(doc: &str) -> Vec<TrajectoryRun> {
    let Some(open) = doc.find("\"runs\": [") else {
        return Vec::new();
    };
    doc[open..]
        .split("\n    {\"fig\": \"")
        .skip(1)
        .filter_map(|chunk| {
            let obj = format!("{{\"fig\": \"{chunk}");
            let s_open = obj.find("\"scenarios\": [")? + "\"scenarios\": [".len();
            let s_close = obj[s_open..].find("\n    ]")? + s_open;
            let scenario_rows = obj[s_open..s_close].trim_matches('\n').to_string();
            let scenario_count = scenario_rows.matches("\"scenario\":").count();
            Some(TrajectoryRun {
                fig: extract_str_field(&obj, "fig")?,
                git_sha: extract_str_field(&obj, "git_sha")?,
                timestamp_utc: extract_str_field(&obj, "timestamp_utc")?,
                profile: extract_str_field(&obj, "profile")?,
                scenario_rows,
                scenario_count,
            })
        })
        .collect()
}

/// One gated comparison that got slower: a scenario whose current
/// percentile exceeds the previous trajectory entry beyond the allowed
/// threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Figure the scenario belongs to.
    pub fig: String,
    /// Scenario label.
    pub scenario: String,
    /// Which metric regressed (`"p50_ms"`, `"p99_ms"`, `"threads"`, or
    /// `"fds"`).
    pub metric: &'static str,
    /// The previous trajectory value (milliseconds for latency metrics,
    /// a plain count for `threads`/`fds`).
    pub previous_ms: f64,
    /// The freshly measured value, in the same unit as `previous_ms`.
    pub current_ms: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.metric.ends_with("_ms") {
            write!(
                f,
                "{} `{}` {}: {:.3} ms -> {:.3} ms (+{:.1}%)",
                self.fig,
                self.scenario,
                self.metric,
                self.previous_ms,
                self.current_ms,
                (self.current_ms / self.previous_ms - 1.0) * 100.0,
            )
        } else {
            write!(
                f,
                "{} `{}` {}: {:.0} -> {:.0}",
                self.fig, self.scenario, self.metric, self.previous_ms, self.current_ms,
            )
        }
    }
}

/// Extra threads tolerated at the same scenario before the O(1)-threads
/// gate fails. The reactor architecture pins the count (one event loop,
/// a fixed pool, named per-connection-resource threads), so the band is
/// deliberately tight.
pub const THREAD_GATE_SLACK: f64 = 2.0;
/// Fractional fd growth tolerated at the same scenario.
pub const FD_GATE_THRESHOLD: f64 = 0.10;
/// Absolute fd growth additionally tolerated (listener/bookkeeping fds).
pub const FD_GATE_SLACK: f64 = 8.0;

/// Figures whose harnesses enforce their own in-run gates and whose rows
/// are therefore excluded from the cross-run percentile comparison.
/// `bag_gate` gates record overhead *relative to a baseline measured in
/// the same process* plus byte-diff and pacing checks, and its smoke rows
/// are 12-sample percentiles — comparing those p99s across runs on a
/// loaded box gates scheduler noise, not the middleware.
pub const SELF_GATED_FIGS: [&str; 1] = ["bag"];

/// The trajectory regression gate: compare every (fig, scenario) present
/// in both `previous` and `current` and flag p50/p99 values that grew by
/// more than `threshold` (fractional — `0.10` allows +10%) *and* by more
/// than the metric's absolute slack (so microsecond-scale scenarios don't
/// trip on scheduler noise). `p99_slack_ms` is wider than `slack_ms`: the
/// tail percentile of a short run swings ±30% with machine load, so it
/// gates as a coarse backstop (a lock convoy or lost wakeup inflates it
/// 10–100×) while p50 stays tightly banded. Scenarios or figures missing
/// on either side are skipped — only like-for-like comparisons gate.
///
/// Rows carrying process counts (the soak report) additionally gate
/// `threads` and `fds`: thread count is the O(1)-threads claim and may
/// not grow by more than [`THREAD_GATE_SLACK`] at the same link scale;
/// fd count allows small fractional drift ([`FD_GATE_THRESHOLD`] plus
/// [`FD_GATE_SLACK`]).
///
/// Figures listed in [`SELF_GATED_FIGS`] are skipped entirely: their
/// harnesses gate themselves in-run against a same-process baseline.
pub fn gate_regressions(
    previous: &[TrajectoryRun],
    current: &[TrajectoryRun],
    threshold: f64,
    slack_ms: f64,
    p99_slack_ms: f64,
) -> Vec<Regression> {
    let mut out = Vec::new();
    for cur in current {
        if SELF_GATED_FIGS.contains(&cur.fig.as_str()) {
            continue;
        }
        let Some(prev) = previous.iter().find(|r| r.fig == cur.fig) else {
            continue;
        };
        let prev_rows = parse_scenario_rows(&prev.scenario_rows);
        for row in parse_scenario_rows(&cur.scenario_rows) {
            let Some(base) = prev_rows.iter().find(|r| r.scenario == row.scenario) else {
                continue;
            };
            for (metric, was, now, metric_slack) in [
                ("p50_ms", base.p50_ms, row.p50_ms, slack_ms),
                ("p99_ms", base.p99_ms, row.p99_ms, p99_slack_ms),
            ] {
                if was > 0.0 && now > was * (1.0 + threshold) + metric_slack {
                    out.push(Regression {
                        fig: cur.fig.clone(),
                        scenario: row.scenario.clone(),
                        metric,
                        previous_ms: was,
                        current_ms: now,
                    });
                }
            }
            for (metric, was, now, count_threshold, count_slack) in [
                ("threads", base.threads, row.threads, 0.0, THREAD_GATE_SLACK),
                ("fds", base.fds, row.fds, FD_GATE_THRESHOLD, FD_GATE_SLACK),
            ] {
                let (Some(was), Some(now)) = (was, now) else {
                    continue;
                };
                if now > was * (1.0 + count_threshold) + count_slack {
                    out.push(Regression {
                        fig: cur.fig.clone(),
                        scenario: row.scenario.clone(),
                        metric,
                        previous_ms: was,
                        current_ms: now,
                    });
                }
            }
        }
    }
    out
}

/// Read the trajectory written by a previous `bench_summary` run, if any —
/// the baseline side of [`gate_regressions`]. `None` when the file is
/// absent or carries no parseable runs.
pub fn load_previous_trajectory() -> Option<Vec<TrajectoryRun>> {
    let doc = std::fs::read_to_string(results_dir().join("TRAJECTORY.json")).ok()?;
    let runs = parse_trajectory_doc(&doc);
    (!runs.is_empty()).then_some(runs)
}

/// Render the consolidated trajectory document: every benchmark report in
/// `results/` merged into one file, so a repo checkout carries its whole
/// measured performance trajectory in a single machine-readable place.
pub fn render_trajectory(meta: &RunMeta, runs: &[TrajectoryRun]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"fig\": \"trajectory\",\n");
    out.push_str(&meta_fragment(meta));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fig\": \"{}\", \"git_sha\": \"{}\", \"timestamp_utc\": \"{}\", \"profile\": \"{}\", \"scenario_count\": {}, \"scenarios\": [\n",
            escape(&r.fig),
            escape(&r.git_sha),
            escape(&r.timestamp_utc),
            escape(&r.profile),
            r.scenario_count,
        ));
        if !r.scenario_rows.is_empty() {
            out.push_str(&r.scenario_rows);
            out.push('\n');
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Load every `results/BENCH_*.json` as a [`TrajectoryRun`], sorted by
/// file name. Unparseable documents are skipped with a note on stderr.
pub fn load_trajectory_runs() -> io::Result<Vec<TrajectoryRun>> {
    let dir = results_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let mut runs = Vec::new();
    for path in paths {
        let doc = std::fs::read_to_string(&path)?;
        match parse_report_doc(&doc) {
            Some(run) => runs.push(run),
            None => eprintln!("skipping malformed report {}", path.display()),
        }
    }
    Ok(runs)
}

/// Write `results/TRAJECTORY.json` from the given runs. Returns the path
/// written.
pub fn write_trajectory(runs: &[TrajectoryRun]) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("TRAJECTORY.json");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_trajectory(&RunMeta::capture(), runs).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Stats {
        Stats::from_nanos(vec![1_000_000, 2_000_000, 3_000_000])
    }

    fn meta() -> RunMeta {
        RunMeta {
            git_sha: "abc123".to_string(),
            timestamp_utc: utc_timestamp(0),
            profile: "debug",
        }
    }

    #[test]
    fn from_stats_derives_throughput_from_mean() {
        let r = ScenarioReport::from_stats("sfm", 1000, &stats());
        // mean is 2 ms → 500 msgs/s → 500 kB/s.
        assert!((r.msgs_per_s - 500.0).abs() < 1e-9);
        assert!((r.bytes_per_s - 500_000.0).abs() < 1e-9);
        assert_eq!(r.p50_ms, 2.0);
        assert_eq!(r.p99_ms, 3.0);
    }

    #[test]
    fn render_escapes_and_terminates_rows() {
        let mut r = ScenarioReport::from_stats("a\"b\\c", 7, &stats());
        r.msgs_per_s = f64::NAN; // must not leak a NaN literal into JSON
        let json = render_json("figX", &meta(), &[r.clone(), r]);
        assert!(json.contains("\"fig\": \"figX\""));
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("\"msgs_per_s\": 0.000000"));
        // One comma between the two scenario rows, one after the meta line.
        assert_eq!(json.matches("},\n").count(), 2);
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn render_empty_is_valid() {
        let json = render_json("fig0", &meta(), &[]);
        assert!(json.contains("\"scenarios\": [\n  ]"));
        assert!(json.contains("\"git_sha\": \"abc123\""));
        assert!(json.contains("\"profile\": \"debug\""));
    }

    #[test]
    fn utc_timestamp_converts_known_instants() {
        assert_eq!(utc_timestamp(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC.
        assert_eq!(utc_timestamp(951_827_696), "2000-02-29T12:34:56Z");
        // 2026-01-01 00:00:00 UTC.
        assert_eq!(utc_timestamp(1_767_225_600), "2026-01-01T00:00:00Z");
    }

    #[test]
    fn captured_meta_is_well_formed() {
        let m = RunMeta::capture();
        assert!(!m.git_sha.is_empty());
        assert!(m.timestamp_utc.ends_with('Z'));
        assert!(m.profile == "debug" || m.profile == "release");
    }

    #[test]
    fn report_round_trips_through_trajectory() {
        let rows = vec![
            ScenarioReport::from_stats("sfm ten_gbe 1MB", 1_000_000, &stats()),
            ScenarioReport::from_stats("same-machine shm 1MB", 1_000_000, &stats()),
        ];
        let doc = render_json("fig16", &meta(), &rows);
        let run = parse_report_doc(&doc).expect("well-formed report parses");
        assert_eq!(run.fig, "fig16");
        assert_eq!(run.git_sha, "abc123");
        assert_eq!(run.profile, "debug");
        assert_eq!(run.scenario_count, 2);
        assert!(run.scenario_rows.contains("same-machine shm 1MB"));

        let merged = render_trajectory(&meta(), &[run.clone(), run]);
        assert!(merged.contains("\"fig\": \"trajectory\""));
        assert_eq!(merged.matches("\"fig\": \"fig16\"").count(), 2);
        assert_eq!(merged.matches("\"scenario_count\": 2").count(), 2);
        // The scenario rows survive verbatim (4 total across both runs).
        assert_eq!(merged.matches("\"scenario\":").count(), 4);
    }

    #[test]
    fn trajectory_parses_back_into_its_runs() {
        let rows = vec![
            ScenarioReport::from_stats("sfm ten_gbe 1MB", 1_000_000, &stats()),
            ScenarioReport::from_stats("oneway shm+loan 1MB", 1_000_000, &stats()),
        ];
        let run_a = parse_report_doc(&render_json("fig16", &meta(), &rows)).unwrap();
        let run_b = parse_report_doc(&render_json("fig13", &meta(), &rows[..1])).unwrap();
        let doc = render_trajectory(&meta(), &[run_a.clone(), run_b.clone()]);
        let parsed = parse_trajectory_doc(&doc);
        assert_eq!(parsed, vec![run_a, run_b]);
        assert!(parse_trajectory_doc("{}").is_empty());

        let parsed_rows = parse_scenario_rows(&parsed[0].scenario_rows);
        assert_eq!(parsed_rows.len(), 2);
        assert_eq!(parsed_rows[1].scenario, "oneway shm+loan 1MB");
        assert_eq!(parsed_rows[0].p50_ms, 2.0);
        assert_eq!(parsed_rows[0].p99_ms, 3.0);
    }

    fn run_with(fig: &str, scenario: &str, p50: f64, p99: f64) -> TrajectoryRun {
        let mut r = ScenarioReport::from_stats(scenario, 1000, &stats());
        r.p50_ms = p50;
        r.p99_ms = p99;
        parse_report_doc(&render_json(fig, &meta(), &[r])).unwrap()
    }

    #[test]
    fn gate_flags_only_real_regressions() {
        let prev = vec![run_with("fig16", "same-machine shm 1MB", 1.0, 2.0)];

        // Unchanged numbers pass.
        assert!(gate_regressions(&prev, &prev, 0.10, 0.05, 1.0).is_empty());

        // A +50% p50 regression is flagged with its metric and values.
        let cur = vec![run_with("fig16", "same-machine shm 1MB", 1.5, 2.0)];
        let bad = gate_regressions(&prev, &cur, 0.10, 0.05, 1.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "p50_ms");
        assert_eq!((bad[0].previous_ms, bad[0].current_ms), (1.0, 1.5));
        assert!(bad[0].to_string().contains("same-machine shm 1MB"));

        // p99 gates independently of p50.
        let cur = vec![run_with("fig16", "same-machine shm 1MB", 1.0, 4.0)];
        assert_eq!(
            gate_regressions(&prev, &cur, 0.10, 0.05, 1.0)[0].metric,
            "p99_ms"
        );

        // Within threshold + slack passes; the absolute slack absorbs
        // microsecond-scale noise even past the percentage threshold.
        let cur = vec![run_with("fig16", "same-machine shm 1MB", 1.04, 2.0)];
        assert!(gate_regressions(&prev, &cur, 0.10, 0.05, 1.0).is_empty());
        let tiny_prev = vec![run_with("fig16", "oneway fastpath 200KB", 0.010, 0.020)];
        let tiny_cur = vec![run_with("fig16", "oneway fastpath 200KB", 0.015, 0.030)];
        assert!(gate_regressions(&tiny_prev, &tiny_cur, 0.10, 0.05, 1.0).is_empty());

        // New scenarios and new figures have no baseline: skipped.
        let cur = vec![
            run_with("fig16", "oneway shm+loan 1MB", 9.0, 9.0),
            run_with("fig99", "anything", 9.0, 9.0),
        ];
        assert!(gate_regressions(&prev, &cur, 0.10, 0.05, 1.0).is_empty());
    }

    #[test]
    fn gate_skips_self_gated_figures() {
        // bag_gate gates itself in-run (overhead vs a same-process
        // baseline, byte-diff, pacing); its 12-sample smoke percentiles
        // must not be compared across runs.
        let prev = vec![run_with("bag", "sfm slam baseline", 1.0, 2.0)];
        let cur = vec![run_with("bag", "sfm slam baseline", 5.0, 20.0)];
        assert!(gate_regressions(&prev, &cur, 0.10, 0.05, 1.0).is_empty());
        assert!(SELF_GATED_FIGS.contains(&"bag"));
    }

    #[test]
    fn process_counts_round_trip_and_gate() {
        let mk = |threads: u64, fds: u64| {
            let r = ScenarioReport::from_stats("soak 500 links", 256, &stats())
                .with_process_counts(threads, fds, 12_345);
            parse_report_doc(&render_json("soak", &meta(), &[r])).unwrap()
        };
        let prev = vec![mk(6, 1100)];
        let doc = render_json(
            "soak",
            &meta(),
            &[ScenarioReport::from_stats("soak 500 links", 256, &stats())
                .with_process_counts(6, 1100, 12_345)],
        );
        assert!(doc.contains("\"threads\": 6, \"fds\": 1100, \"rss_kb\": 12345"));
        let rows = parse_scenario_rows(&prev[0].scenario_rows);
        assert_eq!(rows[0].threads, Some(6.0));
        assert_eq!(rows[0].fds, Some(1100.0));

        // Same counts pass; within-slack drift passes.
        assert!(gate_regressions(&prev, &prev, 0.10, 0.05, 1.0).is_empty());
        assert!(gate_regressions(&prev, &[mk(8, 1150)], 0.10, 0.05, 1.0).is_empty());

        // A thread-count jump past the slack is the O(1)-threads gate.
        let bad = gate_regressions(&prev, &[mk(9, 1100)], 0.10, 0.05, 1.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "threads");
        assert_eq!(bad[0].to_string(), "soak `soak 500 links` threads: 6 -> 9");

        // An fd leak past threshold+slack is flagged too.
        let bad = gate_regressions(&prev, &[mk(6, 1300)], 0.10, 0.05, 1.0);
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].metric, "fds");

        // Rows without counts never gate on them.
        let plain = vec![parse_report_doc(&render_json(
            "soak",
            &meta(),
            &[ScenarioReport::from_stats("soak 500 links", 256, &stats())],
        ))
        .unwrap()];
        assert!(gate_regressions(&prev, &plain, 0.10, 0.05, 1.0).is_empty());
    }

    #[test]
    fn wire_bytes_render_and_survive_row_parsing() {
        let r = ScenarioReport::from_stats("projected header.stamp 1MB", 1_000_000, &stats())
            .with_wire_bytes(5_000, 5_000);
        let doc = render_json("projection", &meta(), &[r]);
        assert!(doc.contains("\"bytes_sent\": 5000, \"bytes_received\": 5000"));
        // Byte totals are recorded, not gated: the latency gate still
        // parses rows that carry them.
        let run = parse_report_doc(&doc).unwrap();
        let rows = parse_scenario_rows(&run.scenario_rows);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].p50_ms, 2.0);
        let baseline = [run.clone()];
        assert!(
            gate_regressions(std::slice::from_ref(&run), &baseline, 0.10, 0.05, 1.0).is_empty()
        );
    }

    #[test]
    fn bag_counts_render_and_survive_row_parsing() {
        let r = ScenarioReport::from_stats("slam live+record", 230_400, &stats())
            .with_bag_counts(64, 0, 14_745_600, 64);
        let doc = render_json("bag", &meta(), &[r]);
        assert!(doc.contains(
            "\"bag_frames_recorded\": 64, \"bag_frames_dropped\": 0, \
             \"bag_bytes_written\": 14745600, \"bag_frames_replayed\": 64"
        ));
        // Extra keys don't break row parsing or the regression gate.
        let run = parse_report_doc(&doc).unwrap();
        let rows = parse_scenario_rows(&run.scenario_rows);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].p50_ms, 2.0);
        let baseline = [run.clone()];
        assert!(
            gate_regressions(std::slice::from_ref(&run), &baseline, 0.10, 0.05, 1.0).is_empty()
        );
    }

    #[test]
    fn trajectory_of_nothing_is_valid() {
        let merged = render_trajectory(&meta(), &[]);
        assert!(merged.contains("\"runs\": [\n  ]"));
    }

    #[test]
    fn malformed_report_is_rejected() {
        assert!(parse_report_doc("{}").is_none());
        assert!(parse_report_doc("not json at all").is_none());
    }

    #[test]
    fn trace_json_includes_stages_and_consistency() {
        use rossf_trace::{Stage, StageHist, Tier};
        let hist = StageHist::new();
        hist.record(1_000);
        hist.record(3_000);
        let snapshot = rossf_trace::TopicSnapshot {
            topic: "t".to_string(),
            cells: vec![rossf_trace::StageCell {
                stage: Stage::Encode,
                tier: Tier::Local,
                hist: hist.snapshot(),
            }],
        };
        let wf = TraceWaterfall {
            label: "local".to_string(),
            snapshot,
            e2e_mean_us: 2.0,
        };
        assert!((wf.stage_sum_us() - 2.0).abs() < 1e-9);
        assert!(wf.sum_error() < 1e-9);
        let json = render_trace_json("figT", &meta(), &[wf]);
        assert!(json.contains("\"tier\": \"local\""));
        assert!(json.contains("\"stage\": \"encode\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"sum_error\": 0.000000"));
    }
}
