//! Machine-readable benchmark output.
//!
//! Every harness binary writes a `results/BENCH_<fig>.json` next to its
//! human-readable table so runs can be diffed and plotted without
//! scraping stdout. The JSON is hand-rolled (the workspace carries no
//! serde) and intentionally flat: one object per measured scenario with
//! the latency percentiles and derived throughput.

use crate::stats::Stats;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// One measured scenario: a (series, payload) cell of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Human-readable scenario label, e.g. `"sfm ten_gbe 800x600"`.
    pub scenario: String,
    /// Payload size carried per message, in bytes.
    pub payload_bytes: u64,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Sustained message rate implied by the mean latency. The harness
    /// keeps exactly one message in flight (Fig. 12 protocol), so rate
    /// is the reciprocal of the mean round time.
    pub msgs_per_s: f64,
    /// Payload throughput implied by `msgs_per_s`.
    pub bytes_per_s: f64,
}

impl ScenarioReport {
    /// Derive a report row from a latency summary.
    pub fn from_stats(scenario: &str, payload_bytes: u64, stats: &Stats) -> ScenarioReport {
        let msgs_per_s = if stats.mean_ms > 0.0 {
            1000.0 / stats.mean_ms
        } else {
            0.0
        };
        ScenarioReport {
            scenario: scenario.to_string(),
            payload_bytes,
            p50_ms: stats.p50_ms,
            p99_ms: stats.p99_ms,
            msgs_per_s,
            bytes_per_s: msgs_per_s * payload_bytes as f64,
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity literals; clamp pathological values to 0.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

/// Render the report document for `fig` (e.g. `"fig16"`).
pub fn render_json(fig: &str, rows: &[ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"fig\": \"{}\",\n", escape(fig)));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"payload_bytes\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"msgs_per_s\": {}, \"bytes_per_s\": {}}}{}\n",
            escape(&r.scenario),
            r.payload_bytes,
            num(r.p50_ms),
            num(r.p99_ms),
            num(r.msgs_per_s),
            num(r.bytes_per_s),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Where `results/` lives: the working directory if it already has one
/// (the repo root when run via `cargo run`), otherwise relative to the
/// bench crate's manifest so binaries invoked from anywhere agree.
fn results_dir() -> PathBuf {
    let cwd = PathBuf::from("results");
    if cwd.is_dir() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Write `results/BENCH_<fig>.json`, creating the directory if needed.
/// Returns the path written, so binaries can tell the user where it went.
pub fn write_report(fig: &str, rows: &[ScenarioReport]) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{fig}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_json(fig, rows).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Stats {
        Stats::from_nanos(vec![1_000_000, 2_000_000, 3_000_000])
    }

    #[test]
    fn from_stats_derives_throughput_from_mean() {
        let r = ScenarioReport::from_stats("sfm", 1000, &stats());
        // mean is 2 ms → 500 msgs/s → 500 kB/s.
        assert!((r.msgs_per_s - 500.0).abs() < 1e-9);
        assert!((r.bytes_per_s - 500_000.0).abs() < 1e-9);
        assert_eq!(r.p50_ms, 2.0);
        assert_eq!(r.p99_ms, 3.0);
    }

    #[test]
    fn render_escapes_and_terminates_rows() {
        let mut r = ScenarioReport::from_stats("a\"b\\c", 7, &stats());
        r.msgs_per_s = f64::NAN; // must not leak a NaN literal into JSON
        let json = render_json("figX", &[r.clone(), r]);
        assert!(json.contains("\"fig\": \"figX\""));
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("\"msgs_per_s\": 0.000000"));
        // Exactly one separating comma between the two rows.
        assert_eq!(json.matches("},\n").count(), 1);
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn render_empty_is_valid() {
        let json = render_json("fig0", &[]);
        assert!(json.contains("\"scenarios\": [\n  ]"));
    }
}
