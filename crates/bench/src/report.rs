//! Machine-readable benchmark output.
//!
//! Every harness binary writes a `results/BENCH_<fig>.json` next to its
//! human-readable table so runs can be diffed and plotted without
//! scraping stdout. The JSON is hand-rolled (the workspace carries no
//! serde) and intentionally flat: one object per measured scenario with
//! the latency percentiles and derived throughput.

use crate::stats::Stats;
use rossf_trace::{Stage, TopicSnapshot};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Provenance of one benchmark run, embedded in every report document so a
/// results file can be matched to the code and build that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunMeta {
    /// `git rev-parse HEAD` of the working tree, or `"unknown"` outside a
    /// repository.
    pub git_sha: String,
    /// UTC wall-clock time of the run, `YYYY-MM-DDTHH:MM:SSZ`.
    pub timestamp_utc: String,
    /// Cargo profile the harness was compiled under.
    pub profile: &'static str,
}

impl RunMeta {
    /// Capture the current process's provenance.
    pub fn capture() -> RunMeta {
        let git_sha = std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        RunMeta {
            git_sha,
            timestamp_utc: utc_timestamp(secs),
            profile: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            },
        }
    }
}

/// Format seconds-since-Unix-epoch as `YYYY-MM-DDTHH:MM:SSZ` (the workspace
/// carries no date crate; the civil-date conversion is the standard
/// days-to-date algorithm).
fn utc_timestamp(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let rem = unix_secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem / 60) % 60, rem % 60);
    // Shift epoch from 1970-01-01 to 0000-03-01 so leap days land at the
    // end of the (shifted) year.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { y + 1 } else { y };
    format!("{year:04}-{month:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// One measured scenario: a (series, payload) cell of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Human-readable scenario label, e.g. `"sfm ten_gbe 800x600"`.
    pub scenario: String,
    /// Payload size carried per message, in bytes.
    pub payload_bytes: u64,
    /// Median end-to-end latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub p99_ms: f64,
    /// Sustained message rate implied by the mean latency. The harness
    /// keeps exactly one message in flight (Fig. 12 protocol), so rate
    /// is the reciprocal of the mean round time.
    pub msgs_per_s: f64,
    /// Payload throughput implied by `msgs_per_s`.
    pub bytes_per_s: f64,
}

impl ScenarioReport {
    /// Derive a report row from a latency summary.
    pub fn from_stats(scenario: &str, payload_bytes: u64, stats: &Stats) -> ScenarioReport {
        let msgs_per_s = if stats.mean_ms > 0.0 {
            1000.0 / stats.mean_ms
        } else {
            0.0
        };
        ScenarioReport {
            scenario: scenario.to_string(),
            payload_bytes,
            p50_ms: stats.p50_ms,
            p99_ms: stats.p99_ms,
            msgs_per_s,
            bytes_per_s: msgs_per_s * payload_bytes as f64,
        }
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON has no NaN/Infinity literals; clamp pathological values to 0.
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.000000".to_string()
    }
}

fn meta_fragment(meta: &RunMeta) -> String {
    format!(
        "  \"meta\": {{\"git_sha\": \"{}\", \"timestamp_utc\": \"{}\", \"profile\": \"{}\"}},\n",
        escape(&meta.git_sha),
        escape(&meta.timestamp_utc),
        meta.profile,
    )
}

/// Render the report document for `fig` (e.g. `"fig16"`).
pub fn render_json(fig: &str, meta: &RunMeta, rows: &[ScenarioReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"fig\": \"{}\",\n", escape(fig)));
    out.push_str(&meta_fragment(meta));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"payload_bytes\": {}, \"p50_ms\": {}, \"p99_ms\": {}, \"msgs_per_s\": {}, \"bytes_per_s\": {}}}{}\n",
            escape(&r.scenario),
            r.payload_bytes,
            num(r.p50_ms),
            num(r.p99_ms),
            num(r.msgs_per_s),
            num(r.bytes_per_s),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Where `results/` lives: the working directory if it already has one
/// (the repo root when run via `cargo run`), otherwise relative to the
/// bench crate's manifest so binaries invoked from anywhere agree.
fn results_dir() -> PathBuf {
    let cwd = PathBuf::from("results");
    if cwd.is_dir() {
        return cwd;
    }
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Write `results/BENCH_<fig>.json`, creating the directory if needed.
/// Returns the path written, so binaries can tell the user where it went.
pub fn write_report(fig: &str, rows: &[ScenarioReport]) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("BENCH_{fig}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_json(fig, &RunMeta::capture(), rows).as_bytes())?;
    Ok(path)
}

/// One measured tier of a figure's trace section: a stage-latency waterfall
/// plus the end-to-end latency it should telescope to.
#[derive(Debug, Clone)]
pub struct TraceWaterfall {
    /// Series label, e.g. `"tcp"`, `"fastpath"`, `"local"`.
    pub label: String,
    /// The per-topic stage histograms collected during the run.
    pub snapshot: TopicSnapshot,
    /// Mean end-to-end latency measured by the harness, microseconds.
    pub e2e_mean_us: f64,
}

impl TraceWaterfall {
    /// Sum of per-stage mean durations (callback included, faults
    /// excluded), microseconds. Stages telescope, so this should land near
    /// `e2e_mean_us`.
    pub fn stage_sum_us(&self) -> f64 {
        self.snapshot.stage_sum_ns(true) / 1e3
    }

    /// `|stage_sum − e2e| / e2e`, the telescoping-consistency measure the
    /// harness gates on (0 when e2e was not measured).
    pub fn sum_error(&self) -> f64 {
        if self.e2e_mean_us > 0.0 {
            (self.stage_sum_us() - self.e2e_mean_us).abs() / self.e2e_mean_us
        } else {
            0.0
        }
    }
}

/// Render the trace document for `fig` (e.g. `"fig16"`).
pub fn render_trace_json(fig: &str, meta: &RunMeta, tiers: &[TraceWaterfall]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"fig\": \"{}\",\n", escape(fig)));
    out.push_str(&meta_fragment(meta));
    out.push_str("  \"tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"tier\": \"{}\", \"topic\": \"{}\", \"e2e_mean_us\": {}, \"stage_sum_us\": {}, \"sum_error\": {}, \"stages\": [\n",
            escape(&t.label),
            escape(&t.snapshot.topic),
            num(t.e2e_mean_us),
            num(t.stage_sum_us()),
            num(t.sum_error()),
        ));
        let cells: Vec<_> = t
            .snapshot
            .cells
            .iter()
            .filter(|c| c.stage != Stage::Fault)
            .collect();
        for (j, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"stage\": \"{}\", \"tier\": \"{}\", \"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{}\n",
                c.stage.name(),
                c.tier.name(),
                c.hist.count,
                num(c.hist.mean_ns() / 1e3),
                num(c.hist.quantile_ns(0.5) / 1e3),
                num(c.hist.quantile_ns(0.99) / 1e3),
                num(c.hist.max_ns as f64 / 1e3),
                if j + 1 < cells.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < tiers.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `results/TRACE_<fig>.json`, creating the directory if needed.
pub fn write_trace_report(fig: &str, tiers: &[TraceWaterfall]) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("TRACE_{fig}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_trace_json(fig, &RunMeta::capture(), tiers).as_bytes())?;
    Ok(path)
}

/// One `BENCH_*.json` document folded into the trajectory summary: its
/// provenance plus the scenario rows carried verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryRun {
    /// Figure id, e.g. `"fig16"`.
    pub fig: String,
    /// Git SHA the report was produced from.
    pub git_sha: String,
    /// UTC wall-clock time of the producing run.
    pub timestamp_utc: String,
    /// Cargo profile of the producing run.
    pub profile: String,
    /// The scenario row objects, verbatim from the source document.
    pub scenario_rows: String,
    /// Number of scenario rows in `scenario_rows`.
    pub scenario_count: usize,
}

/// Extract the string value of `"key": "..."` from a report document
/// (handles the escapes [`render_json`] emits).
fn extract_str_field(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\": \"");
    let start = doc.find(&needle)? + needle.len();
    let mut out = String::new();
    let mut chars = doc[start..].chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
}

/// Parse one `BENCH_*.json` document produced by [`render_json`] back into
/// a [`TrajectoryRun`]. Returns `None` when the document doesn't have the
/// expected shape (hand-edited or from an incompatible version).
pub fn parse_report_doc(doc: &str) -> Option<TrajectoryRun> {
    let fig = extract_str_field(doc, "fig")?;
    let git_sha = extract_str_field(doc, "git_sha")?;
    let timestamp_utc = extract_str_field(doc, "timestamp_utc")?;
    let profile = extract_str_field(doc, "profile")?;
    let open = doc.find("\"scenarios\": [")? + "\"scenarios\": [".len();
    let close = doc[open..].find("\n  ]")? + open;
    let scenario_rows = doc[open..close].trim_matches('\n').to_string();
    let scenario_count = scenario_rows.matches("\"scenario\":").count();
    Some(TrajectoryRun {
        fig,
        git_sha,
        timestamp_utc,
        profile,
        scenario_rows,
        scenario_count,
    })
}

/// Render the consolidated trajectory document: every benchmark report in
/// `results/` merged into one file, so a repo checkout carries its whole
/// measured performance trajectory in a single machine-readable place.
pub fn render_trajectory(meta: &RunMeta, runs: &[TrajectoryRun]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"fig\": \"trajectory\",\n");
    out.push_str(&meta_fragment(meta));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"fig\": \"{}\", \"git_sha\": \"{}\", \"timestamp_utc\": \"{}\", \"profile\": \"{}\", \"scenario_count\": {}, \"scenarios\": [\n",
            escape(&r.fig),
            escape(&r.git_sha),
            escape(&r.timestamp_utc),
            escape(&r.profile),
            r.scenario_count,
        ));
        if !r.scenario_rows.is_empty() {
            out.push_str(&r.scenario_rows);
            out.push('\n');
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Load every `results/BENCH_*.json` as a [`TrajectoryRun`], sorted by
/// file name. Unparseable documents are skipped with a note on stderr.
pub fn load_trajectory_runs() -> io::Result<Vec<TrajectoryRun>> {
    let dir = results_dir();
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    let mut runs = Vec::new();
    for path in paths {
        let doc = std::fs::read_to_string(&path)?;
        match parse_report_doc(&doc) {
            Some(run) => runs.push(run),
            None => eprintln!("skipping malformed report {}", path.display()),
        }
    }
    Ok(runs)
}

/// Write `results/TRAJECTORY.json` from the given runs. Returns the path
/// written.
pub fn write_trajectory(runs: &[TrajectoryRun]) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("TRAJECTORY.json");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(render_trajectory(&RunMeta::capture(), runs).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Stats {
        Stats::from_nanos(vec![1_000_000, 2_000_000, 3_000_000])
    }

    fn meta() -> RunMeta {
        RunMeta {
            git_sha: "abc123".to_string(),
            timestamp_utc: utc_timestamp(0),
            profile: "debug",
        }
    }

    #[test]
    fn from_stats_derives_throughput_from_mean() {
        let r = ScenarioReport::from_stats("sfm", 1000, &stats());
        // mean is 2 ms → 500 msgs/s → 500 kB/s.
        assert!((r.msgs_per_s - 500.0).abs() < 1e-9);
        assert!((r.bytes_per_s - 500_000.0).abs() < 1e-9);
        assert_eq!(r.p50_ms, 2.0);
        assert_eq!(r.p99_ms, 3.0);
    }

    #[test]
    fn render_escapes_and_terminates_rows() {
        let mut r = ScenarioReport::from_stats("a\"b\\c", 7, &stats());
        r.msgs_per_s = f64::NAN; // must not leak a NaN literal into JSON
        let json = render_json("figX", &meta(), &[r.clone(), r]);
        assert!(json.contains("\"fig\": \"figX\""));
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("\"msgs_per_s\": 0.000000"));
        // One comma between the two scenario rows, one after the meta line.
        assert_eq!(json.matches("},\n").count(), 2);
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn render_empty_is_valid() {
        let json = render_json("fig0", &meta(), &[]);
        assert!(json.contains("\"scenarios\": [\n  ]"));
        assert!(json.contains("\"git_sha\": \"abc123\""));
        assert!(json.contains("\"profile\": \"debug\""));
    }

    #[test]
    fn utc_timestamp_converts_known_instants() {
        assert_eq!(utc_timestamp(0), "1970-01-01T00:00:00Z");
        // 2000-02-29 (leap day) 12:34:56 UTC.
        assert_eq!(utc_timestamp(951_827_696), "2000-02-29T12:34:56Z");
        // 2026-01-01 00:00:00 UTC.
        assert_eq!(utc_timestamp(1_767_225_600), "2026-01-01T00:00:00Z");
    }

    #[test]
    fn captured_meta_is_well_formed() {
        let m = RunMeta::capture();
        assert!(!m.git_sha.is_empty());
        assert!(m.timestamp_utc.ends_with('Z'));
        assert!(m.profile == "debug" || m.profile == "release");
    }

    #[test]
    fn report_round_trips_through_trajectory() {
        let rows = vec![
            ScenarioReport::from_stats("sfm ten_gbe 1MB", 1_000_000, &stats()),
            ScenarioReport::from_stats("same-machine shm 1MB", 1_000_000, &stats()),
        ];
        let doc = render_json("fig16", &meta(), &rows);
        let run = parse_report_doc(&doc).expect("well-formed report parses");
        assert_eq!(run.fig, "fig16");
        assert_eq!(run.git_sha, "abc123");
        assert_eq!(run.profile, "debug");
        assert_eq!(run.scenario_count, 2);
        assert!(run.scenario_rows.contains("same-machine shm 1MB"));

        let merged = render_trajectory(&meta(), &[run.clone(), run]);
        assert!(merged.contains("\"fig\": \"trajectory\""));
        assert_eq!(merged.matches("\"fig\": \"fig16\"").count(), 2);
        assert_eq!(merged.matches("\"scenario_count\": 2").count(), 2);
        // The scenario rows survive verbatim (4 total across both runs).
        assert_eq!(merged.matches("\"scenario\":").count(), 4);
    }

    #[test]
    fn trajectory_of_nothing_is_valid() {
        let merged = render_trajectory(&meta(), &[]);
        assert!(merged.contains("\"runs\": [\n  ]"));
    }

    #[test]
    fn malformed_report_is_rejected() {
        assert!(parse_report_doc("{}").is_none());
        assert!(parse_report_doc("not json at all").is_none());
    }

    #[test]
    fn trace_json_includes_stages_and_consistency() {
        use rossf_trace::{Stage, StageHist, Tier};
        let hist = StageHist::new();
        hist.record(1_000);
        hist.record(3_000);
        let snapshot = rossf_trace::TopicSnapshot {
            topic: "t".to_string(),
            cells: vec![rossf_trace::StageCell {
                stage: Stage::Encode,
                tier: Tier::Local,
                hist: hist.snapshot(),
            }],
        };
        let wf = TraceWaterfall {
            label: "local".to_string(),
            snapshot,
            e2e_mean_us: 2.0,
        };
        assert!((wf.stage_sum_us() - 2.0).abs() < 1e-9);
        assert!(wf.sum_error() < 1e-9);
        let json = render_trace_json("figT", &meta(), &[wf]);
        assert!(json.contains("\"tier\": \"local\""));
        assert!(json.contains("\"stage\": \"encode\""));
        assert!(json.contains("\"count\": 2"));
        assert!(json.contains("\"sum_error\": 0.000000"));
    }
}
