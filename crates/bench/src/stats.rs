//! Latency statistics matching the paper's presentation (mean ± standard
//! deviation, Figs. 13/14/16/18).

use core::fmt;

/// Summary of a latency sample set.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Sample count.
    pub n: usize,
    /// Mean, milliseconds.
    pub mean_ms: f64,
    /// Standard deviation, milliseconds.
    pub std_ms: f64,
    /// Minimum, milliseconds.
    pub min_ms: f64,
    /// Median, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile, milliseconds.
    pub p95_ms: f64,
    /// 99th percentile, milliseconds.
    pub p99_ms: f64,
    /// Maximum, milliseconds.
    pub max_ms: f64,
    /// Wire bytes `(sent, received)` the transport counted over the
    /// sample run, when the experiment attaches them
    /// ([`Stats::with_wire_bytes`]). Report rows lift these into their
    /// byte columns.
    pub wire_bytes: Option<(u64, u64)>,
}

impl Stats {
    /// Summarize a set of latencies given in nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set — an experiment that measured
    /// nothing is a bug, not a statistic.
    pub fn from_nanos(mut nanos: Vec<u64>) -> Stats {
        assert!(!nanos.is_empty(), "no latency samples collected");
        nanos.sort_unstable();
        let n = nanos.len();
        let to_ms = |v: u64| v as f64 / 1e6;
        let mean = nanos.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var = nanos
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        let pct = |q: f64| {
            let idx = ((n as f64 - 1.0) * q).round() as usize;
            to_ms(nanos[idx])
        };
        Stats {
            n,
            mean_ms: mean / 1e6,
            std_ms: var.sqrt() / 1e6,
            min_ms: to_ms(nanos[0]),
            p50_ms: pct(0.5),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: to_ms(nanos[n - 1]),
            wire_bytes: None,
        }
    }

    /// Attach the wire-byte totals the transport counted during the run.
    pub fn with_wire_bytes(mut self, sent: u64, received: u64) -> Stats {
        self.wire_bytes = Some((sent, received));
        self
    }

    /// The paper's headline metric: percentage latency reduction of
    /// `self` (the optimized system) relative to `baseline`.
    pub fn reduction_vs(&self, baseline: &Stats) -> f64 {
        if baseline.mean_ms <= 0.0 {
            return 0.0;
        }
        (1.0 - self.mean_ms / baseline.mean_ms) * 100.0
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:8.3} ± {:6.3} ms  (p50 {:7.3}, p95 {:7.3}, p99 {:7.3}, min {:7.3}, max {:7.3}, n={})",
            self.mean_ms,
            self.std_ms,
            self.p50_ms,
            self.p95_ms,
            self.p99_ms,
            self.min_ms,
            self.max_ms,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let s = Stats::from_nanos(vec![1_000_000, 2_000_000, 3_000_000]);
        assert_eq!(s.n, 3);
        assert!((s.mean_ms - 2.0).abs() < 1e-9);
        assert!((s.std_ms - (2.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 3.0);
        assert_eq!(s.p50_ms, 2.0);
        assert_eq!(s.p99_ms, 3.0);
    }

    #[test]
    fn p99_sits_between_p95_and_max() {
        let nanos: Vec<u64> = (1..=200).map(|i| i * 1_000_000).collect();
        let s = Stats::from_nanos(nanos);
        assert!(s.p95_ms <= s.p99_ms);
        assert!(s.p99_ms <= s.max_ms);
        assert_eq!(s.p99_ms, 198.0);
    }

    #[test]
    fn reduction_matches_paper_formula() {
        let ros = Stats::from_nanos(vec![100_000_000; 10]);
        let rossf = Stats::from_nanos(vec![23_700_000; 10]);
        // 76.3% — the paper's headline number.
        assert!((rossf.reduction_vs(&ros) - 76.3).abs() < 0.01);
    }

    #[test]
    fn single_sample_is_fine() {
        let s = Stats::from_nanos(vec![5_000_000]);
        assert_eq!(s.mean_ms, 5.0);
        assert_eq!(s.std_ms, 0.0);
    }

    #[test]
    #[should_panic(expected = "no latency samples")]
    fn empty_sample_panics() {
        let _ = Stats::from_nanos(vec![]);
    }

    #[test]
    fn display_contains_mean_and_n() {
        let s = Stats::from_nanos(vec![1_500_000; 4]);
        let text = s.to_string();
        assert!(text.contains("1.500"));
        assert!(text.contains("n=4"));
    }
}
