//! Table 1 — the applicability study: run the ROS-SF checker over the
//! package corpus and census the assumption violations per message class.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin table1_applicability
//! ```

use rossf_checker::{applicability_table, convert_stack_to_heap, corpus::corpus};

fn main() {
    let files = corpus();
    println!(
        "=== Table 1: applicability study over {} corpus files ===\n",
        files.len()
    );
    let table = applicability_table(&files);
    println!("{table}");

    // Bonus: show the converter half of the toolchain on the paper's
    // Fig. 11 example.
    println!("--- ROS-SF Converter (Fig. 11) demonstration ---");
    let before = "sensor_msgs::Image img;\nimg.encoding = \"8UC3\";\nimg.data.resize(10 * 10 * 3);\npub.publish(img);\n";
    let report = convert_stack_to_heap(before);
    println!("before:\n{before}");
    println!("after:\n{}", report.source);
    println!(
        "paper reference: most Image uses are applicable (40/49); PointCloud \
         is the hardest class (0/14); push_back dominates PointCloud2 failures"
    );
}
