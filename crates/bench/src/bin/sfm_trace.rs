//! `sfm_trace` — the tracing subsystem's command-line harness.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin sfm_trace [MODE] [--iters N]
//! ```
//!
//! Modes:
//!
//! * *(default)* — run a traced one-way 1MB pipeline on all three
//!   transport tiers and print the per-stage waterfall plus the
//!   telescoping-consistency summary (stage sum vs measured e2e mean).
//! * `--self-test` — run `rossf_trace::self_test()` (bucket boundaries,
//!   sidecar correlation, ring recorder, synthetic pipeline) and exit 0/1.
//! * `--overhead-gate` — measure the tracing overhead on the fast path
//!   and the shared-memory tier: best-of-3 traced vs untraced p50 per
//!   tier; fail (exit 1) when any traced p50 exceeds
//!   `1.05 x untraced p50 + 50 µs`.

use rossf_bench::experiments::{oneway_traced, oneway_untraced, TraceTier};
use rossf_bench::report::TraceWaterfall;
use rossf_bench::RunArgs;
use rossf_ros::LinkProfile;
use std::process::ExitCode;

/// Slack multiplier the overhead gate allows on the traced p50.
const GATE_RATIO: f64 = 1.05;
/// Absolute floor added to the allowance so sub-millisecond runs aren't
/// judged by scheduler noise alone.
const GATE_EPSILON_MS: f64 = 0.05;
/// Best-of-N runs per arm: the minimum p50 filters out one-off stalls.
const GATE_RUNS: usize = 3;

enum Mode {
    Waterfall,
    SelfTest,
    OverheadGate,
}

fn main() -> ExitCode {
    let mut mode = Mode::Waterfall;
    let mut run_args = RunArgs::default();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--self-test" => mode = Mode::SelfTest,
            "--overhead-gate" => mode = Mode::OverheadGate,
            "--iters" => {
                let v = argv.next().expect("--iters needs a value");
                run_args.iters = v.parse().expect("--iters must be an integer");
            }
            "--quick" => run_args.iters = 30,
            other => {
                eprintln!(
                    "unknown argument `{other}`; expected --self-test, \
                     --overhead-gate, --iters N, --quick"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    match mode {
        Mode::SelfTest => self_test(),
        Mode::OverheadGate => overhead_gate(run_args),
        Mode::Waterfall => waterfall(run_args),
    }
}

fn self_test() -> ExitCode {
    match rossf_trace::self_test() {
        Ok(()) => {
            println!("sfm_trace self-test: ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("sfm_trace self-test FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn waterfall(args: RunArgs) -> ExitCode {
    let (w, h) = (664, 504); // ~1 MB RGB frame
    println!(
        "=== sfm_trace: stage-latency waterfall, 1MB one-way, {} msgs ===\n",
        args.iters
    );
    let link = LinkProfile::ten_gbe();
    let mut ok = true;
    for tier in [
        TraceTier::Tcp,
        TraceTier::Fastpath,
        TraceTier::Shm,
        TraceTier::Local,
    ] {
        if !tier.available() {
            continue;
        }
        let (stats, snapshot) = oneway_traced(args, w, h, tier, link);
        print!(
            "{}",
            rossf_trace::render_waterfall(std::slice::from_ref(&snapshot))
        );
        let wf = TraceWaterfall {
            label: tier.label().to_string(),
            snapshot,
            e2e_mean_us: stats.mean_ms * 1_000.0,
        };
        let err = wf.sum_error();
        println!(
            "{:<9} e2e mean {:>10.1} µs, stage sum {:>10.1} µs, error {:>5.1}% \
             (target: <10%)\n",
            tier.label(),
            wf.e2e_mean_us,
            wf.stage_sum_us(),
            err * 100.0
        );
        // The tcp tier includes scheduler dwell in its enqueue stage, so
        // telescoping still holds; warn rather than fail on the noisier
        // tiers when the absolute gap is tiny.
        if err > 0.10 && (wf.stage_sum_us() - wf.e2e_mean_us).abs() > 100.0 {
            eprintln!(
                "warning: {} stage sum diverges from e2e by {:.1}%",
                tier.label(),
                err * 100.0
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn overhead_gate(mut args: RunArgs) -> ExitCode {
    // The gate cares about the fast path (no simulated wire latency to
    // hide behind) and doesn't need long runs.
    if args.iters == RunArgs::default().iters {
        args.iters = 100;
    }
    let (w, h) = (664, 504);
    println!(
        "=== sfm_trace: tracing-overhead gate (1MB, best of {GATE_RUNS} x {} msgs per tier) ===",
        args.iters
    );
    let mut ok = true;
    for tier in [TraceTier::Fastpath, TraceTier::Shm] {
        if !tier.available() {
            println!("{:<9} unavailable on this target; skipped", tier.label());
            continue;
        }
        let best = |traced: bool| -> f64 {
            (0..GATE_RUNS)
                .map(|_| {
                    if traced {
                        oneway_traced(args, w, h, tier, LinkProfile::UNLIMITED)
                            .0
                            .p50_ms
                    } else {
                        oneway_untraced(args, w, h, tier, LinkProfile::UNLIMITED).p50_ms
                    }
                })
                .fold(f64::INFINITY, f64::min)
        };
        let untraced = best(false);
        let traced = best(true);
        let allowance = untraced * GATE_RATIO + GATE_EPSILON_MS;
        println!(
            "{:<9} untraced p50 {untraced:.3} ms, traced p50 {traced:.3} ms, \
             allowance {allowance:.3} ms ({GATE_RATIO}x + {GATE_EPSILON_MS} ms)",
            tier.label()
        );
        if traced > allowance {
            eprintln!(
                "overhead gate: FAIL ({} traced p50 exceeds allowance)",
                tier.label()
            );
            ok = false;
        }
    }
    if ok {
        println!("overhead gate: PASS");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
