//! Fig. 16 — inter-machine ping-pong latency over a simulated Intel 82599
//! 10 GbE link (Fig. 15 topology: `pub` and `sub` on machine A, `trans`
//! on machine B).
//!
//! Besides the paper's ROS vs ROS-SF comparison, a third series runs the
//! SFM path with `validate_on_receive` enabled, pricing the structural
//! verifier on every received frame.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin fig16_inter [--iters N] [--hz F]
//! ```

use rossf_baselines::WorkImage;
use rossf_bench::experiments::{pingpong_plain, pingpong_sfm, pingpong_sfm_with};
use rossf_bench::RunArgs;
use rossf_ros::LinkProfile;

fn main() {
    let args = RunArgs::from_env();
    let link = LinkProfile::ten_gbe();
    println!("=== Fig. 16: inter-machine ping-pong latency (ROS vs ROS-SF) ===");
    println!(
        "link: {} Gb/s, {} µs one-way; workload: {} messages per configuration\n",
        link.bandwidth_bps / 1_000_000_000,
        link.latency.as_micros(),
        args.iters
    );
    println!(
        "{:<8} {:<50} {:<50} {:<50} {:>10} {:>10}",
        "size",
        "ROS (mean ± std)",
        "ROS-SF (mean ± std)",
        "ROS-SF +verify (mean ± std)",
        "reduction",
        "verify Δ"
    );
    for (label, w, h) in WorkImage::PAPER_SIZES {
        let ros = pingpong_plain(args, w, h, link);
        let rossf = pingpong_sfm(args, w, h, link);
        let verified = pingpong_sfm_with(args, w, h, link, true);
        println!(
            "{:<8} {:<50} {:<50} {:<50} {:>9.1}% {:>9.1}%",
            label,
            ros.to_string(),
            rossf.to_string(),
            verified.to_string(),
            rossf.reduction_vs(&ros),
            // Positive = verification costs latency; near zero = free.
            -verified.reduction_vs(&rossf)
        );
    }
    println!();
    println!(
        "note: divide the ping-pong latency by 2 for the approximate one-way \
         latency (paper §5.2); paper reference: up to ~69.9% reduction at 6MB. \
         `verify Δ` is the extra round-trip cost of validate_on_receive."
    );
}
