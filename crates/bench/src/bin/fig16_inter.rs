//! Fig. 16 — inter-machine ping-pong latency over a simulated Intel 82599
//! 10 GbE link (Fig. 15 topology: `pub` and `sub` on machine A, `trans`
//! on machine B).
//!
//! Besides the paper's ROS vs ROS-SF comparison, a third series runs the
//! SFM path with `validate_on_receive` enabled, pricing the structural
//! verifier on every received frame; a same-machine section contrasts the
//! transport tiers (zero-copy pointer handoff vs the same frames forced
//! over TCP loopback), and a one-way section prices loaned write-in-place
//! publication (`Publisher::loan`) against the copy-publish shm path and
//! the fast path.
//!
//! Writes `results/BENCH_fig16.json` with every measured series.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin fig16_inter [--iters N] [--hz F]
//! ```

use rossf_baselines::WorkImage;
use rossf_bench::experiments::{
    oneway_loaned, oneway_loaned_traced, oneway_traced, oneway_untraced, pingpong_plain,
    pingpong_same_machine, pingpong_sfm, pingpong_sfm_with, pingpong_shm, TraceTier,
};
use rossf_bench::report::{write_report, write_trace_report, ScenarioReport, TraceWaterfall};
use rossf_bench::RunArgs;
use rossf_ros::LinkProfile;

fn main() {
    let args = RunArgs::from_env();
    let link = LinkProfile::ten_gbe();
    let mut rows: Vec<ScenarioReport> = Vec::new();
    println!("=== Fig. 16: inter-machine ping-pong latency (ROS vs ROS-SF) ===");
    println!(
        "link: {} Gb/s, {} µs one-way; workload: {} messages per configuration\n",
        link.bandwidth_bps / 1_000_000_000,
        link.latency.as_micros(),
        args.iters
    );
    println!(
        "{:<8} {:<50} {:<50} {:<50} {:>10} {:>10}",
        "size",
        "ROS (mean ± std)",
        "ROS-SF (mean ± std)",
        "ROS-SF +verify (mean ± std)",
        "reduction",
        "verify Δ"
    );
    for (label, w, h) in WorkImage::PAPER_SIZES {
        let payload = u64::from(w) * u64::from(h) * 3;
        let ros = pingpong_plain(args, w, h, link);
        let rossf = pingpong_sfm(args, w, h, link);
        let verified = pingpong_sfm_with(args, w, h, link, true);
        println!(
            "{:<8} {:<50} {:<50} {:<50} {:>9.1}% {:>9.1}%",
            label,
            ros.to_string(),
            rossf.to_string(),
            verified.to_string(),
            rossf.reduction_vs(&ros),
            // Positive = verification costs latency; near zero = free.
            -verified.reduction_vs(&rossf)
        );
        rows.push(ScenarioReport::from_stats(
            &format!("ros ten_gbe {label}"),
            payload,
            &ros,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("sfm ten_gbe {label}"),
            payload,
            &rossf,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("sfm+verify ten_gbe {label}"),
            payload,
            &verified,
        ));
    }

    println!("\n--- same-machine transport tiers: fastpath / shm / forced TCP ---");
    let shm_on = TraceTier::Shm.available();
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "size", "TCP p50 (ms)", "fastpath p50", "shm p50", "fp speedup", "shm speedup"
    );
    let mut speedup_1mb = 0.0;
    let mut shm_speedup_1mb = 0.0;
    for (label, w, h) in WorkImage::PAPER_SIZES {
        let payload = u64::from(w) * u64::from(h) * 3;
        let tcp = pingpong_same_machine(args, w, h, false);
        let fast = pingpong_same_machine(args, w, h, true);
        let shm = shm_on.then(|| pingpong_shm(args, w, h));
        let speedup = if fast.p50_ms > 0.0 {
            tcp.p50_ms / fast.p50_ms
        } else {
            f64::INFINITY
        };
        let shm_speedup = match &shm {
            Some(s) if s.p50_ms > 0.0 => tcp.p50_ms / s.p50_ms,
            _ => 0.0,
        };
        if label == "1MB" {
            speedup_1mb = speedup;
            shm_speedup_1mb = shm_speedup;
        }
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>14.3} {:>9.1}x {:>9.1}x",
            label,
            tcp.p50_ms,
            fast.p50_ms,
            shm.as_ref().map_or(f64::NAN, |s| s.p50_ms),
            speedup,
            shm_speedup
        );
        rows.push(ScenarioReport::from_stats(
            &format!("same-machine tcp {label}"),
            payload,
            &tcp,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("same-machine fastpath {label}"),
            payload,
            &fast,
        ));
        if let Some(shm) = &shm {
            rows.push(ScenarioReport::from_stats(
                &format!("same-machine shm {label}"),
                payload,
                shm,
            ));
        }
    }
    println!(
        "same-machine p50 speedup at 1MB: {speedup_1mb:.1}x (target: >=3x for the \
         zero-copy fast path)"
    );
    if shm_on {
        println!(
            "same-machine shm p50 speedup at 1MB: {shm_speedup_1mb:.1}x (target: >=3x \
             vs forced TCP)"
        );
    } else {
        println!("shm tier unavailable on this target; series skipped");
    }

    println!("\n--- same-machine one-way publish: fastpath vs shm copy vs shm loaned ---");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>10}",
        "size", "fastpath p50", "shm p50", "shm+loan p50", "loan/fp"
    );
    for (label, w, h) in WorkImage::PAPER_SIZES {
        let payload = u64::from(w) * u64::from(h) * 3;
        let fast = oneway_untraced(args, w, h, TraceTier::Fastpath, link);
        let shm = shm_on.then(|| oneway_untraced(args, w, h, TraceTier::Shm, link));
        let loaned = shm_on.then(|| oneway_loaned(args, w, h, TraceTier::Shm, link));
        let ratio = match &loaned {
            Some(l) if fast.p50_ms > 0.0 => l.p50_ms / fast.p50_ms,
            _ => f64::NAN,
        };
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>14.3} {:>9.2}x",
            label,
            fast.p50_ms,
            shm.as_ref().map_or(f64::NAN, |s| s.p50_ms),
            loaned.as_ref().map_or(f64::NAN, |s| s.p50_ms),
            ratio
        );
        rows.push(ScenarioReport::from_stats(
            &format!("oneway fastpath {label}"),
            payload,
            &fast,
        ));
        if let Some(shm) = &shm {
            rows.push(ScenarioReport::from_stats(
                &format!("oneway shm {label}"),
                payload,
                shm,
            ));
        }
        if let Some(loaned) = &loaned {
            rows.push(ScenarioReport::from_stats(
                &format!("oneway shm+loan {label}"),
                payload,
                loaned,
            ));
        }
    }
    if shm_on {
        println!(
            "loaned publication builds the message inside the pool segment: the shm \
             publish-side memcpy is gone (gate: loan/fp <= 1.2x, see loan_gate)"
        );
    }

    println!("\n--- stage-latency attribution: traced one-way 1MB frame, all tiers ---");
    let (w, h) = (664, 504); // ~1 MB RGB frame
    let mut tiers: Vec<TraceWaterfall> = Vec::new();
    for tier in [
        TraceTier::Tcp,
        TraceTier::Fastpath,
        TraceTier::Shm,
        TraceTier::Local,
    ] {
        if !tier.available() {
            continue;
        }
        let (stats, snapshot) = oneway_traced(args, w, h, tier, link);
        print!(
            "{}",
            rossf_trace::render_waterfall(std::slice::from_ref(&snapshot))
        );
        let wf = TraceWaterfall {
            label: tier.label().to_string(),
            snapshot,
            e2e_mean_us: stats.mean_ms * 1_000.0,
        };
        println!(
            "{:<9} e2e mean {:>10.1} µs, stage sum {:>10.1} µs, error {:>5.1}% \
             (target: <10%)\n",
            tier.label(),
            wf.e2e_mean_us,
            wf.stage_sum_us(),
            wf.sum_error() * 100.0
        );
        tiers.push(wf);
    }
    if TraceTier::Shm.available() {
        // The loaned shm waterfall: same tier, message built inside the
        // segment — the wire_write (publish-side copy) row is absent.
        let (stats, snapshot) = oneway_loaned_traced(args, w, h, TraceTier::Shm, link);
        print!(
            "{}",
            rossf_trace::render_waterfall(std::slice::from_ref(&snapshot))
        );
        let wf = TraceWaterfall {
            label: "shm+loan".to_string(),
            snapshot,
            e2e_mean_us: stats.mean_ms * 1_000.0,
        };
        println!(
            "{:<9} e2e mean {:>10.1} µs, stage sum {:>10.1} µs, error {:>5.1}% \
             (no wire_write: built in-segment)\n",
            "shm+loan",
            wf.e2e_mean_us,
            wf.stage_sum_us(),
            wf.sum_error() * 100.0
        );
        tiers.push(wf);
    }
    match write_trace_report("fig16", &tiers) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write TRACE_fig16.json: {e}"),
    }

    println!();
    println!(
        "note: divide the ping-pong latency by 2 for the approximate one-way \
         latency (paper §5.2); paper reference: up to ~69.9% reduction at 6MB. \
         `verify Δ` is the extra round-trip cost of validate_on_receive."
    );
    match write_report("fig16", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fig16.json: {e}"),
    }
}
