//! `bag_gate` — deterministic record/replay fidelity gate over the Fig. 18
//! SLAM pipeline.
//!
//! Three phases, all over serialization-free messages:
//!
//! 1. **Baseline** — the closed-loop SLAM pipeline (camera → orb_slam →
//!    pose/cloud/debug) with per-frame end-to-end latency.
//! 2. **Live + record** — the same pipeline with a streaming bag
//!    [`Recorder`] tapping all four topics. Gates: capture sheds nothing
//!    (`frames_dropped == 0`, every frame of every topic lands in the
//!    bag) and recording costs ≤ 5% extra latency (plus a small absolute
//!    slack for scheduler noise — the tap is one bounded-queue push).
//! 3. **Replay** — the bag is mapped and replayed zero-copy into a fresh
//!    graph. Gates: per-topic FNV of delivered bytes identical to the
//!    live run (byte-diff zero, order preserved), every delivered message
//!    aliases the bag mapping (no per-frame copy), and publish pacing
//!    tracks the recorded cadence within `max(3 ms, 15%)` of the mean
//!    inter-frame gap.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin bag_gate [--smoke] [--iters N]
//! ```
//!
//! Writes `results/BENCH_bag.json` with the latency rows plus the bag
//! counters. Exit status 0 only when every gate passes.

use rossf_bag::{fnv1a64, BagReader};
use rossf_bench::report::{write_report, ScenarioReport};
use rossf_bench::stats::Stats;
use rossf_msg::geometry_msgs::SfmPoseStamped;
use rossf_msg::sensor_msgs::{SfmImage, SfmPointCloud2};
use rossf_ros::time::{now_nanos, RosTime};
use rossf_ros::{
    Master, NodeHandle, Publisher, PublisherOptions, Recorder, ReplayOptions, Replayer,
    SubscriberOptions,
};
use rossf_sfm::{SfmBox, SfmShared};
use rossf_slam::dataset::Sequence;
use rossf_slam::pipeline::{frame_to_sfm, spawn_sfm, SlamConfig, SlamTopics};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Workload shape for one gate run.
struct GateConfig {
    width: u32,
    height: u32,
    frames: usize,
    compute: Duration,
    /// Relative + absolute bound on record overhead. The full run holds
    /// the paper-style ≤5% (+1 ms scheduler slack). The smoke run is a
    /// correctness gate on a tiny sample (n=12, 2 ms frames) where
    /// single-core wakeup noise dwarfs the tap cost, so it only bounds
    /// catastrophes (an accidental serialize/copy per frame is ≫2×).
    overhead_mult: f64,
    overhead_slack_ms: f64,
}

impl GateConfig {
    fn smoke() -> GateConfig {
        GateConfig {
            width: 160,
            height: 120,
            frames: 12,
            compute: Duration::from_millis(2),
            overhead_mult: 2.0,
            overhead_slack_ms: 5.0,
        }
    }

    fn full() -> GateConfig {
        GateConfig {
            width: 320,
            height: 240,
            frames: 48,
            compute: Duration::from_millis(10),
            overhead_mult: 1.05,
            overhead_slack_ms: 1.0,
        }
    }
}

/// Delivered-byte hashes of one live pipeline pass, per topic in
/// (image, pose, cloud, debug) order, plus the closed-loop latency.
struct LiveRun {
    stats: Stats,
    hashes: [Vec<u64>; 4],
    recorder: Option<(rossf_bag::RecorderStats, rossf_bag::BagSummary)>,
}

/// Run the SFM SLAM pipeline closed-loop for `cfg.frames` frames,
/// optionally recording all four topics to `record`.
fn live_run(cfg: &GateConfig, topics: &SlamTopics, record: Option<&Path>) -> LiveRun {
    let master = Master::new();
    let nh = NodeHandle::new(&master, "bag_gate");
    let seq = Sequence::with_resolution(2022, cfg.width, cfg.height, 2.0);
    let publisher: Publisher<SfmBox<SfmImage>> =
        nh.advertise_with(&topics.image, PublisherOptions::new().queue_size(8));
    let _node = spawn_sfm(
        &nh,
        topics,
        cfg.width,
        cfg.height,
        SlamConfig {
            min_frame_compute: cfg.compute,
            threshold: 25,
        },
    );
    let (pose_tx, pose_rx) = mpsc::channel();
    let (cloud_tx, cloud_rx) = mpsc::channel();
    let (debug_tx, debug_rx) = mpsc::channel();
    let _subs = (
        nh.subscribe_with(
            &topics.pose,
            SubscriberOptions::new(),
            move |m: SfmShared<SfmPoseStamped>| {
                let _ = pose_tx.send(fnv1a64(m.publish_handle().as_slice()));
            },
        ),
        nh.subscribe_with(
            &topics.cloud,
            SubscriberOptions::new(),
            move |m: SfmShared<SfmPointCloud2>| {
                let _ = cloud_tx.send(fnv1a64(m.publish_handle().as_slice()));
            },
        ),
        nh.subscribe_with(
            &topics.debug,
            SubscriberOptions::new(),
            move |m: SfmShared<SfmImage>| {
                let _ = debug_tx.send(fnv1a64(m.publish_handle().as_slice()));
            },
        ),
    );
    nh.wait_for_subscribers(&publisher, 1);

    let recorder = record.map(|path| {
        let r = Recorder::builder()
            .topic::<SfmBox<SfmImage>>(&topics.image)
            .topic::<SfmBox<SfmPoseStamped>>(&topics.pose)
            .topic::<SfmBox<SfmPointCloud2>>(&topics.cloud)
            .topic::<SfmBox<SfmImage>>(&topics.debug)
            .queue_capacity(1024)
            .start(&nh, path)
            .expect("start recorder");
        assert!(
            r.wait_attached(1, Duration::from_secs(10)),
            "capture taps never attached to all publishers"
        );
        r
    });
    // Let the output subscribers finish their asynchronous handshakes.
    std::thread::sleep(Duration::from_millis(100));

    let timeout = Duration::from_secs(20);
    let mut lat = Vec::with_capacity(cfg.frames);
    let mut hashes: [Vec<u64>; 4] = Default::default();
    for i in 0..cfg.frames {
        let img = frame_to_sfm(&seq.frame(i), RosTime::from_nanos(now_nanos()));
        hashes[0].push(fnv1a64(img.publish_handle().as_slice()));
        let t0 = Instant::now();
        publisher.publish(&img);
        hashes[1].push(pose_rx.recv_timeout(timeout).expect("pose arrives"));
        hashes[2].push(cloud_rx.recv_timeout(timeout).expect("cloud arrives"));
        hashes[3].push(debug_rx.recv_timeout(timeout).expect("debug arrives"));
        lat.push(t0.elapsed().as_nanos() as u64);
        std::thread::sleep(Duration::from_millis(2));
    }

    let recorder = recorder.map(|r| {
        // The closed loop means every frame was delivered before the next
        // publish; wait for the taps to push the stragglers, then close.
        let want = (cfg.frames * 4) as u64;
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            let s = r.stats();
            if s.frames_recorded + s.frames_dropped >= want {
                break;
            }
            assert!(Instant::now() < deadline, "recorder never drained");
            std::thread::sleep(Duration::from_millis(2));
        }
        let stats = r.stats();
        let summary = r.finish().expect("close bag");
        (stats, summary)
    });
    LiveRun {
        stats: Stats::from_nanos(lat),
        hashes,
        recorder,
    }
}

/// What the replay phase observed, per topic in recording order.
struct ReplayRun {
    hashes: [Vec<u64>; 4],
    all_in_map: bool,
    publish_pacing_mean: Duration,
    publish_pacing_max: Duration,
    arrival_gap_errors: Stats,
    frames_replayed: u64,
}

/// Replay the bag into a fresh graph and collect delivered hashes,
/// pointer provenance, and pacing.
fn replay_run(cfg: &GateConfig, topics: &SlamTopics, path: &Path) -> ReplayRun {
    let master = Master::new();
    let nh = NodeHandle::new(&master, "bag_gate_replay");
    let mut replayer = Replayer::open(path).expect("open bag for replay");
    assert!(
        !replayer.reader().recovered(),
        "cleanly finished bag must not need recovery"
    );
    let range = replayer.reader().addr_range();

    let collected: Arc<Mutex<[Vec<u64>; 4]>> = Arc::new(Mutex::new(Default::default()));
    let in_map = Arc::new(Mutex::new(true));
    let arrivals: Arc<Mutex<Vec<Instant>>> = Arc::new(Mutex::new(Vec::new()));

    // One adopted route + FNV subscriber per recorded topic. The
    // subscriber checks the delivered message's base pointer against the
    // bag mapping: fast-path delivery shares the adopted buffer, so a
    // pointer outside the map would mean a hidden copy.
    macro_rules! route {
        ($ty:ty, $topic:expr, $slot:expr, $track_arrival:expr) => {{
            let publisher =
                nh.advertise_with::<SfmShared<$ty>>($topic, PublisherOptions::new().queue_size(64));
            let collected = Arc::clone(&collected);
            let in_map = Arc::clone(&in_map);
            let arrivals = Arc::clone(&arrivals);
            let sub = nh.subscribe_with(
                $topic,
                SubscriberOptions::new(),
                move |m: SfmShared<$ty>| {
                    let base = m.base();
                    if base < range.0 || base >= range.1 {
                        *in_map.lock().unwrap() = false;
                    }
                    if $track_arrival {
                        arrivals.lock().unwrap().push(Instant::now());
                    }
                    collected.lock().unwrap()[$slot].push(fnv1a64(m.publish_handle().as_slice()));
                },
            );
            nh.wait_for_subscribers(&publisher, 1);
            replayer
                .route_adopted::<$ty>($topic, &nh, publisher)
                .expect("route recorded topic");
            sub
        }};
    }
    let _subs = (
        route!(SfmImage, &topics.image, 0, true),
        route!(SfmPoseStamped, &topics.pose, 1, false),
        route!(SfmPointCloud2, &topics.cloud, 2, false),
        route!(SfmImage, &topics.debug, 3, false),
    );

    let stats = replayer
        .run(ReplayOptions::default().verify(true))
        .expect("replay run");

    // Wait for the last deliveries to drain.
    let want = cfg.frames;
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let c = collected.lock().unwrap();
        if c.iter().all(|v| v.len() >= want) {
            break;
        }
        drop(c);
        assert!(Instant::now() < deadline, "replay deliveries never drained");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Arrival pacing: the gaps between delivered image frames must track
    // the recorded stamp gaps.
    let reader = BagReader::open(path).expect("reopen for stamps");
    let image_conn = reader
        .connection(&topics.image)
        .expect("image connection recorded");
    let stamps: Vec<u64> = reader
        .entries(image_conn.id)
        .iter()
        .map(|e| e.stamp_nanos)
        .collect();
    let arrivals = arrivals.lock().unwrap();
    let mut errors = Vec::new();
    for i in 1..arrivals.len().min(stamps.len()) {
        let actual = arrivals[i].duration_since(arrivals[0]).as_nanos() as i128;
        let expected = (stamps[i] - stamps[0]) as i128;
        errors.push((actual - expected).unsigned_abs().min(u64::MAX as u128) as u64);
    }
    assert!(
        !errors.is_empty(),
        "need at least two frames to gauge pacing"
    );

    let hashes = collected.lock().unwrap().clone();
    let all_in_map = *in_map.lock().unwrap();
    ReplayRun {
        hashes,
        all_in_map,
        publish_pacing_mean: stats.pacing_mean_abs_error,
        publish_pacing_max: stats.pacing_max_abs_error,
        arrival_gap_errors: Stats::from_nanos(errors),
        frames_replayed: stats.frames_replayed,
    }
}

fn main() {
    let mut cfg = GateConfig::full();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => cfg = GateConfig::smoke(),
            "--iters" => {
                let v = args.next().expect("--iters needs a value");
                cfg.frames = v.parse().expect("--iters must be an integer");
            }
            other => {
                eprintln!("unknown argument `{other}`; expected --smoke or --iters N");
                std::process::exit(1);
            }
        }
    }
    println!(
        "=== bag gate: {}x{} SLAM pipeline, {} frames, {:?} compute/frame ===",
        cfg.width, cfg.height, cfg.frames, cfg.compute
    );
    let bag_path: PathBuf =
        std::env::temp_dir().join(format!("rossf_bag_gate_{}.bag", std::process::id()));

    // Phase 1+2 share one topic namespace so the bag's topic names match
    // the replay graph's; each phase runs its own master.
    let base_topics = SlamTopics::with_prefix("bag_gate_base");
    let rec_topics = SlamTopics::with_prefix("bag_gate_rec");
    println!("\n--- phase 1: live baseline ---");
    let baseline = live_run(&cfg, &base_topics, None);
    println!("baseline per-frame: {}", baseline.stats);

    println!("\n--- phase 2: live + record ---");
    let recorded = live_run(&cfg, &rec_topics, Some(&bag_path));
    println!("recording per-frame: {}", recorded.stats);
    let (rec_stats, rec_summary) = recorded.recorder.as_ref().expect("phase 2 records");
    println!(
        "bag: {} frames, {} bytes, {} dropped, {} connections",
        rec_summary.frames, rec_summary.bytes, rec_stats.frames_dropped, rec_summary.connections
    );

    println!("\n--- phase 3: zero-copy replay ---");
    let replay = replay_run(&cfg, &rec_topics, &bag_path);
    println!(
        "replayed {} frames; publish pacing mean {:?} max {:?}; arrival gap error {}",
        replay.frames_replayed,
        replay.publish_pacing_mean,
        replay.publish_pacing_max,
        replay.arrival_gap_errors
    );

    // --- gates ------------------------------------------------------------
    let mut failures = Vec::new();

    // Capture completeness: nothing shed, every frame of every topic.
    let want_frames = (cfg.frames * 4) as u64;
    if rec_stats.frames_dropped != 0 || rec_summary.frames != want_frames {
        failures.push(format!(
            "capture incomplete: {} recorded, {} dropped (want {want_frames}, 0 dropped)",
            rec_summary.frames, rec_stats.frames_dropped
        ));
    }

    // Record overhead (see `GateConfig::overhead_mult` for the bound's
    // rationale; the tap itself is one bounded-queue push per frame).
    let overhead_limit = baseline.stats.mean_ms * cfg.overhead_mult + cfg.overhead_slack_ms;
    if recorded.stats.mean_ms > overhead_limit {
        failures.push(format!(
            "record overhead too high: {:.3} ms vs baseline {:.3} ms (limit {:.3} ms)",
            recorded.stats.mean_ms, baseline.stats.mean_ms, overhead_limit
        ));
    }

    // Fidelity: replayed delivered bytes identical to live delivered
    // bytes, per topic, in order.
    for (name, idx) in [("image", 0), ("pose", 1), ("cloud", 2), ("debug", 3)] {
        if replay.hashes[idx] != recorded.hashes[idx] {
            failures.push(format!(
                "byte diff on `{name}`: live and replayed FNV streams differ \
                 ({} live, {} replayed)",
                recorded.hashes[idx].len(),
                replay.hashes[idx].len()
            ));
        }
    }
    if replay.frames_replayed != want_frames {
        failures.push(format!(
            "replay count {} != recorded count {want_frames}",
            replay.frames_replayed
        ));
    }

    // Zero-copy: every delivered message aliased the bag mapping.
    if !replay.all_in_map {
        failures.push("a replayed message did not alias the bag mapping (hidden copy)".into());
    }

    // Pacing: delivered image frames track the recorded cadence. Gated on
    // the *median* gap error — a single multi-ms scheduler stall (routine
    // on a 1-vCPU VM) inflates the mean for a dozen catch-up frames, but
    // only a systematically broken pacer shifts the median.
    let reader = BagReader::open(&bag_path).expect("reopen bag");
    let mean_gap = reader
        .stamp_range()
        .map(|(lo, hi)| Duration::from_nanos((hi - lo) / reader.frame_count().max(2)))
        .unwrap_or_default();
    let pacing_limit = Duration::from_millis(3).max(mean_gap.mul_f64(0.15));
    if replay.arrival_gap_errors.p50_ms > pacing_limit.as_secs_f64() * 1e3 {
        failures.push(format!(
            "replay pacing off cadence: median gap error {:.3} ms (limit {:?}, mean gap {:?})",
            replay.arrival_gap_errors.p50_ms, pacing_limit, mean_gap
        ));
    }

    // --- report -----------------------------------------------------------
    let payload = (cfg.width * cfg.height * 3) as u64;
    let rows = vec![
        ScenarioReport::from_stats("sfm slam baseline", payload, &baseline.stats),
        ScenarioReport::from_stats("sfm slam live+record", payload, &recorded.stats)
            .with_bag_counts(
                rec_stats.frames_recorded,
                rec_stats.frames_dropped,
                rec_stats.bytes_written,
                0,
            ),
        ScenarioReport::from_stats(
            "sfm slam replay arrival-gap error",
            payload,
            &replay.arrival_gap_errors,
        )
        .with_bag_counts(0, 0, 0, replay.frames_replayed),
    ];
    match write_report("bag", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_bag.json: {e}"),
    }
    std::fs::remove_file(&bag_path).ok();

    if failures.is_empty() {
        println!(
            "\nbag gate PASS: capture complete, overhead {:.1}% (limit {:.0}%+{:.0}ms), \
             byte-diff zero on all 4 topics, all frames in-map, pacing within {:?}",
            (recorded.stats.mean_ms / baseline.stats.mean_ms - 1.0) * 100.0,
            (cfg.overhead_mult - 1.0) * 100.0,
            cfg.overhead_slack_ms,
            pacing_limit
        );
    } else {
        println!("\nbag gate FAIL:");
        for f in &failures {
            println!("  - {f}");
        }
        std::process::exit(1);
    }
}
