//! `soak` — the churn soak behind the reactor's O(1)-threads claim.
//!
//! Spins up hundreds of topics fanning out to thousands of subscriber
//! TCP links (publisher on machine A, subscribers on machine B, so every
//! link crosses the netsim wire), then soaks the mesh under churn:
//! subscribers continuously leave and rejoin, scheduled netsim drop
//! faults eat frames, and mid-run the whole machine link is severed and
//! healed — a full reconnect storm across every link. Throughput is
//! whatever the mesh sustains through all of that.
//!
//! The point is the resource row, not the latency row: at steady state
//! the process must hold its thread count *independent of link count* —
//! one reactor thread plus the fixed job pool, never a thread per
//! connection — and its fd count must track links, not churn history.
//! Each scale's row in `results/BENCH_soak.json` carries `threads`,
//! `fds`, and `rss_kb`, `bench_summary --gate` holds them flat across
//! commits, and this binary itself exits non-zero when the largest scale
//! needs more threads than the smallest (the claim, checked every run).
//! Latency percentiles are deliberately zero: a churn soak's tail is
//! storm noise, and the zeros keep the trajectory latency gate off these
//! rows.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin soak [--smoke]
//! ```
//!
//! `--smoke` runs the same protocol at a small scale (a few seconds,
//! `results/BENCH_soak_smoke.json`) — the `scripts/check.sh` gate.

use rossf_bench::report::{write_report, ScenarioReport};
use rossf_ros::{
    BackoffPolicy, MachineId, Master, NodeHandle, Publisher, PublisherOptions, SubscriberOptions,
    TransportConfig,
};
use rossf_sfm::{SfmBox, SfmError, SfmMessage, SfmPod, SfmShared, SfmValidate, SfmVec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Payload bytes carried per message.
const PAYLOAD: usize = 256;
/// Threads the largest scale may need beyond the smallest before the
/// in-binary O(1)-threads check fails.
const THREAD_SLACK: u64 = 2;

#[repr(C)]
#[derive(Debug)]
struct SoakMsg {
    seq: u64,
    data: SfmVec<u8>,
}
// SAFETY: `SoakMsg` is `#[repr(C)]` and both fields (`u64`, `SfmVec<u8>`)
// are themselves plain-old-data with no padding-sensitive invariants.
unsafe impl SfmPod for SoakMsg {}
impl SfmValidate for SoakMsg {
    fn validate_in(&self, base: usize, len: usize) -> Result<(), SfmError> {
        self.data.validate_in(base, len)
    }
}
// SAFETY: `max_size` covers the header plus the largest `data` payload the
// bench ever publishes (`PAYLOAD` bytes), and `validate_in` bounds-checks
// the only indirect field.
unsafe impl SfmMessage for SoakMsg {
    fn type_name() -> &'static str {
        "bench/SoakMsg"
    }
    fn max_size() -> usize {
        4096
    }
}

/// One soak configuration: `topics` publishers, `subs_per_topic` steady
/// subscribers each, churned for `duration`.
struct Scale {
    label: &'static str,
    topics: usize,
    subs_per_topic: usize,
    duration: Duration,
}

impl Scale {
    fn links(&self) -> usize {
        self.topics * self.subs_per_topic
    }
}

/// What one scale measured.
struct Outcome {
    report: ScenarioReport,
    threads: u64,
    delivered: u64,
    reconnects: u64,
}

fn fd_count() -> u64 {
    std::fs::read_dir("/proc/self/fd").unwrap().count() as u64
}

fn proc_status_field(key: &str) -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|l| l.strip_prefix(key))
        .and_then(|v| v.trim().trim_end_matches(" kB").parse().ok())
        .unwrap_or(0)
}

fn fast_reconnect() -> TransportConfig {
    TransportConfig {
        handshake_timeout: Duration::from_secs(5),
        backoff: BackoffPolicy {
            initial: Duration::from_millis(2),
            max: Duration::from_millis(50),
            multiplier: 2.0,
            jitter: 0.25,
            max_attempts: 0,
        },
        ..TransportConfig::default()
    }
}

fn wait_until(what: &str, secs: u64, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    while !cond() {
        assert!(
            Instant::now() < deadline,
            "soak: timeout waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn run_scale(scale: &Scale) -> Outcome {
    let master = Master::new();
    let fault = master.links().inject(MachineId::A, MachineId::B);
    // A sprinkle of scheduled drop faults across the early frame stream.
    for i in 0..16u64 {
        fault.drop_frame(i * 97 + 5);
    }
    let nh_pub = NodeHandle::new(&master, "soak-pub");
    let nh_sub = NodeHandle::with_config(&master, "soak-sub", MachineId::B, fast_reconnect());

    let delivered = Arc::new(AtomicU64::new(0));
    let subscribe = |topic: &str| {
        let delivered = Arc::clone(&delivered);
        nh_sub.subscribe_with(
            topic,
            SubscriberOptions::new(),
            move |m: SfmShared<SoakMsg>| {
                debug_assert_eq!(m.data.len(), PAYLOAD);
                delivered.fetch_add(1, Ordering::Relaxed);
            },
        )
    };

    let mut publishers: Vec<Publisher<SfmBox<SoakMsg>>> = Vec::with_capacity(scale.topics);
    let mut steady = Vec::with_capacity(scale.links());
    let topic_name = |t: usize| format!("soak/t{t}");
    for t in 0..scale.topics {
        let topic = topic_name(t);
        publishers.push(nh_pub.advertise_with(&topic, PublisherOptions::new().queue_size(64)));
        for _ in 0..scale.subs_per_topic {
            steady.push(subscribe(&topic));
        }
    }
    let want = scale.links();
    let all_connected = |pubs: &[Publisher<SfmBox<SoakMsg>>]| {
        pubs.iter().map(|p| p.subscriber_count()).sum::<usize>() >= want
    };
    wait_until("initial links", 60, || all_connected(&publishers));

    let mut msg = SfmBox::<SoakMsg>::new();
    msg.data.resize(PAYLOAD);

    // Soak: publish round-robin; churn one subscription every few rounds;
    // sever the whole machine link mid-run and let it heal.
    let start = Instant::now();
    let sever_at = scale.duration.mul_f64(0.4);
    let heal_at = scale.duration.mul_f64(0.5);
    let mut severed = false;
    let mut healed = false;
    let mut churner = None;
    let mut churn_topic = 0usize;
    let mut round = 0u64;
    while start.elapsed() < scale.duration {
        for publisher in &publishers {
            msg.seq = round;
            publisher.publish(&msg);
        }
        round += 1;
        if round.is_multiple_of(8) {
            // Join/leave churn: drop the previous extra subscription and
            // open one on the next topic.
            churner = Some(subscribe(&topic_name(churn_topic)));
            churn_topic = (churn_topic + 1) % scale.topics;
        }
        if !severed && start.elapsed() >= sever_at {
            severed = true;
            fault.sever_now();
        }
        if !healed && start.elapsed() >= heal_at {
            healed = true;
            fault.heal();
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    drop(churner);
    let elapsed = start.elapsed();
    let got = delivered.load(Ordering::Relaxed);

    // Quiesce: every steady link reconnected after the storm, then read
    // the resource numbers the report exists for.
    wait_until("post-storm reconnect", 60, || all_connected(&publishers));
    std::thread::sleep(Duration::from_millis(200));
    let threads = proc_status_field("Threads:");
    let fds = fd_count();
    let rss_kb = proc_status_field("VmRSS:");
    let reconnects = steady.iter().map(|s| s.reconnects()).sum::<u64>();
    let bytes_sent = publishers.iter().map(|p| p.stats().bytes_sent).sum::<u64>();
    let bytes_received = steady.iter().map(|s| s.stats().bytes_received).sum::<u64>();

    let msgs_per_s = got as f64 / elapsed.as_secs_f64();
    let report = ScenarioReport {
        scenario: scale.label.to_string(),
        payload_bytes: PAYLOAD as u64,
        p50_ms: 0.0,
        p99_ms: 0.0,
        msgs_per_s,
        bytes_per_s: msgs_per_s * PAYLOAD as f64,
        threads: None,
        fds: None,
        rss_kb: None,
        bytes_sent: None,
        bytes_received: None,
        bag_frames_recorded: None,
        bag_frames_dropped: None,
        bag_bytes_written: None,
        bag_frames_replayed: None,
    }
    .with_process_counts(threads, fds, rss_kb)
    .with_wire_bytes(bytes_sent, bytes_received);
    Outcome {
        report,
        threads,
        delivered: got,
        reconnects,
    }
}

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    for arg in std::env::args().skip(1) {
        assert!(
            arg == "--smoke",
            "unknown argument `{arg}`; expected --smoke"
        );
    }
    let (fig, scales): (&str, Vec<Scale>) = if smoke {
        (
            "soak_smoke",
            vec![
                Scale {
                    label: "soak-smoke 40 links",
                    topics: 8,
                    subs_per_topic: 5,
                    duration: Duration::from_secs(2),
                },
                Scale {
                    label: "soak-smoke 120 links",
                    topics: 24,
                    subs_per_topic: 5,
                    duration: Duration::from_secs(3),
                },
            ],
        )
    } else {
        (
            "soak",
            vec![
                Scale {
                    label: "soak 500 links",
                    topics: 50,
                    subs_per_topic: 10,
                    duration: Duration::from_secs(6),
                },
                Scale {
                    label: "soak 2000 links",
                    topics: 200,
                    subs_per_topic: 10,
                    duration: Duration::from_secs(8),
                },
            ],
        )
    };

    println!("=== churn soak: reactor resource footprint vs link count ===");
    println!(
        "{:<22} {:>7} {:>12} {:>10} {:>8} {:>7} {:>9}",
        "scale", "links", "delivered", "msgs/s", "threads", "fds", "rss (MB)"
    );
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for scale in &scales {
        let outcome = run_scale(scale);
        println!(
            "{:<22} {:>7} {:>12} {:>10.0} {:>8} {:>7} {:>9.1}",
            scale.label,
            scale.links(),
            outcome.delivered,
            outcome.report.msgs_per_s,
            outcome.threads,
            outcome.report.fds.unwrap_or(0),
            outcome.report.rss_kb.unwrap_or(0) as f64 / 1024.0,
        );
        assert!(
            outcome.delivered > 0,
            "soak delivered nothing at {}",
            scale.label
        );
        assert!(
            outcome.reconnects > 0,
            "the sever storm must force reconnects at {}",
            scale.label
        );
        rows.push(outcome.report.clone());
        outcomes.push(outcome);
    }

    match write_report(fig, &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_{fig}.json: {e}"),
    }

    // The claim itself: growing the mesh 4x must not grow the thread
    // count. (fds legitimately track links; threads may not.)
    let smallest = outcomes.first().map(|o| o.threads).unwrap_or(0);
    let largest = outcomes.last().map(|o| o.threads).unwrap_or(0);
    if largest > smallest + THREAD_SLACK {
        eprintln!(
            "FAIL: thread count grew with link count ({smallest} -> {largest}); \
             the reactor is supposed to hold it flat"
        );
        std::process::exit(1);
    }
    println!(
        "thread count independent of link count: {smallest} thread(s) at {} links, \
         {largest} at {} links",
        scales.first().map(|s| s.links()).unwrap_or(0),
        scales.last().map(|s| s.links()).unwrap_or(0),
    );
}
