//! Fig. 18 — the ORB-SLAM application case study (Fig. 17 topology):
//! end-to-end latency from input-image creation to arrival of each of the
//! three outputs (pose, point cloud, debug image), ROS vs ROS-SF.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin fig18_slam [--iters N] [--hz F]
//! ```

use rossf_bench::experiments::{oneway_traced, slam_case_study, Family, SlamLatencies, TraceTier};
use rossf_bench::report::{write_report, write_trace_report, ScenarioReport, TraceWaterfall};
use rossf_bench::RunArgs;
use rossf_ros::LinkProfile;
use std::time::Duration;

fn main() {
    let mut args = RunArgs::from_env();
    // SLAM frames cost ~34 ms each; keep the default run length moderate.
    if args.iters == RunArgs::default().iters {
        args.iters = 100;
    }
    let compute = Duration::from_millis(34); // paper: 30-40 ms per frame
    println!("=== Fig. 18: ORB-SLAM case study (640x480 TUM-like sequence) ===");
    println!(
        "workload: {} frames per family, calibrated compute {:?} per frame\n",
        args.iters, compute
    );

    let ros = slam_case_study(args, Family::Plain, (640, 480), compute);
    let rossf = slam_case_study(args, Family::Sfm, (640, 480), compute);

    print_family("ROS", &ros);
    print_family("ROS-SF", &rossf);

    println!("\nreduction by output:");
    for (name, a, b) in [
        ("pose", &rossf.pose, &ros.pose),
        ("point cloud", &rossf.cloud, &ros.cloud),
        ("debug image", &rossf.debug, &ros.debug),
    ] {
        println!("  {:<12} {:+.1}%", name, -a.reduction_vs(b));
    }
    println!(
        "\npaper reference: the 30-40 ms ORB-SLAM compute dominates, so the \
         overall reduction shrinks to roughly 5%"
    );
    // 640x480x24bit input frames drive every output; report per-output
    // latency series against that payload.
    let payload = 640 * 480 * 3;
    let mut rows: Vec<ScenarioReport> = Vec::new();
    for (family, lat) in [("ros", &ros), ("sfm", &rossf)] {
        rows.push(ScenarioReport::from_stats(
            &format!("{family} slam pose"),
            payload,
            &lat.pose,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("{family} slam cloud"),
            payload,
            &lat.cloud,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("{family} slam debug"),
            payload,
            &lat.debug,
        ));
    }
    match write_report("fig18", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fig18.json: {e}"),
    }

    // Stage-latency attribution for the SLAM input hop: one traced one-way
    // run at the 640x480 frame size on the intra-machine fast path.
    println!("\n--- stage-latency attribution: traced 640x480 input hop (fast path) ---");
    let (stats, snapshot) =
        oneway_traced(args, 640, 480, TraceTier::Fastpath, LinkProfile::UNLIMITED);
    print!(
        "{}",
        rossf_trace::render_waterfall(std::slice::from_ref(&snapshot))
    );
    let wf = TraceWaterfall {
        label: TraceTier::Fastpath.label().to_string(),
        snapshot,
        e2e_mean_us: stats.mean_ms * 1_000.0,
    };
    println!(
        "fastpath  e2e mean {:>10.1} µs, stage sum {:>10.1} µs, error {:>5.1}%",
        wf.e2e_mean_us,
        wf.stage_sum_us(),
        wf.sum_error() * 100.0
    );
    match write_trace_report("fig18", &[wf]) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write TRACE_fig18.json: {e}"),
    }
}

fn print_family(name: &str, lat: &SlamLatencies) {
    println!("{name}:");
    println!("  pose        {}", lat.pose);
    println!("  point cloud {}", lat.cloud);
    println!("  debug image {}", lat.debug);
}
