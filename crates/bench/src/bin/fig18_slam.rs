//! Fig. 18 — the ORB-SLAM application case study (Fig. 17 topology):
//! end-to-end latency from input-image creation to arrival of each of the
//! three outputs (pose, point cloud, debug image), ROS vs ROS-SF.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin fig18_slam [--iters N] [--hz F]
//! ```

use rossf_bench::experiments::{slam_case_study, Family, SlamLatencies};
use rossf_bench::report::{write_report, ScenarioReport};
use rossf_bench::RunArgs;
use std::time::Duration;

fn main() {
    let mut args = RunArgs::from_env();
    // SLAM frames cost ~34 ms each; keep the default run length moderate.
    if args.iters == RunArgs::default().iters {
        args.iters = 100;
    }
    let compute = Duration::from_millis(34); // paper: 30-40 ms per frame
    println!("=== Fig. 18: ORB-SLAM case study (640x480 TUM-like sequence) ===");
    println!(
        "workload: {} frames per family, calibrated compute {:?} per frame\n",
        args.iters, compute
    );

    let ros = slam_case_study(args, Family::Plain, (640, 480), compute);
    let rossf = slam_case_study(args, Family::Sfm, (640, 480), compute);

    print_family("ROS", &ros);
    print_family("ROS-SF", &rossf);

    println!("\nreduction by output:");
    for (name, a, b) in [
        ("pose", &rossf.pose, &ros.pose),
        ("point cloud", &rossf.cloud, &ros.cloud),
        ("debug image", &rossf.debug, &ros.debug),
    ] {
        println!("  {:<12} {:+.1}%", name, -a.reduction_vs(b));
    }
    println!(
        "\npaper reference: the 30-40 ms ORB-SLAM compute dominates, so the \
         overall reduction shrinks to roughly 5%"
    );
    // 640x480x24bit input frames drive every output; report per-output
    // latency series against that payload.
    let payload = 640 * 480 * 3;
    let mut rows: Vec<ScenarioReport> = Vec::new();
    for (family, lat) in [("ros", &ros), ("sfm", &rossf)] {
        rows.push(ScenarioReport::from_stats(
            &format!("{family} slam pose"),
            payload,
            &lat.pose,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("{family} slam cloud"),
            payload,
            &lat.cloud,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("{family} slam debug"),
            payload,
            &lat.debug,
        ));
    }
    match write_report("fig18", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fig18.json: {e}"),
    }
}

fn print_family(name: &str, lat: &SlamLatencies) {
    println!("{name}:");
    println!("  pose        {}", lat.pose);
    println!("  point cloud {}", lat.cloud);
    println!("  debug image {}", lat.debug);
}
