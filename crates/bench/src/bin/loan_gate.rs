//! `loan_gate` — the loaned-publication latency gate.
//!
//! The point of building a message inside the shared-memory segment
//! (`Publisher::loan` / `publish_loaned`) is that the shm tier stops
//! paying the publish-side payload memcpy and lands next to the
//! same-process pointer-handoff fast path. This gate holds that claim:
//! for every paper payload size (~200 KB, ~1 MB, ~6 MB) the loaned shm
//! one-way p50 must stay within 1.2x of the fastpath one-way p50, plus a
//! 0.05 ms absolute slack so the 200 KB cell doesn't gate on scheduler
//! noise. The copy-publish shm p50 is printed alongside for context (it
//! is informational, not gated — it still pays one pooled copy).
//!
//! ```text
//! cargo run -p rossf-bench --release --bin loan_gate [-- --iters N]
//! ```

use rossf_baselines::WorkImage;
use rossf_bench::experiments::{oneway_loaned, oneway_untraced, TraceTier};
use rossf_bench::RunArgs;
use rossf_ros::LinkProfile;
use std::process::ExitCode;

/// Allowed ratio of loaned-shm p50 to fastpath p50.
const RATIO: f64 = 1.2;
/// Absolute slack (ms) on top of the ratio bound.
const SLACK_MS: f64 = 0.05;

fn main() -> ExitCode {
    let args = RunArgs::from_env();
    if !TraceTier::Shm.available() {
        println!("shm tier unavailable on this target; loan gate skipped");
        return ExitCode::SUCCESS;
    }
    // Only the TCP tier reads the link profile; passed for signature only.
    let link = LinkProfile::ten_gbe();
    println!("=== loan_gate: shm+loan one-way p50 <= {RATIO}x fastpath p50 + {SLACK_MS} ms ===");
    println!("workload: {} messages per cell\n", args.iters);
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>12} {:>8}",
        "size", "fastpath p50", "shm p50", "shm+loan p50", "bound (ms)", "verdict"
    );
    let mut ok = true;
    for (label, w, h) in WorkImage::PAPER_SIZES {
        let fast = oneway_untraced(args, w, h, TraceTier::Fastpath, link);
        let copy = oneway_untraced(args, w, h, TraceTier::Shm, link);
        let loaned = oneway_loaned(args, w, h, TraceTier::Shm, link);
        let bound = fast.p50_ms * RATIO + SLACK_MS;
        let pass = loaned.p50_ms <= bound;
        ok &= pass;
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>14.3} {:>12.3} {:>8}",
            label,
            fast.p50_ms,
            copy.p50_ms,
            loaned.p50_ms,
            bound,
            if pass { "ok" } else { "FAIL" }
        );
    }
    if ok {
        println!("\nloan gate passed at every paper size");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "\nloan gate FAILED: loaned shm publication is not keeping up with the fast path"
        );
        ExitCode::FAILURE
    }
}
