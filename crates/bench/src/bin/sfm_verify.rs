//! `sfm_verify` — offline triage for raw SFM frames.
//!
//! Runs the schema-driven structural verifier
//! ([`rossf_sfm::verify_frame`]) outside the transport, against frames
//! captured to disk or synthesized in-process:
//!
//! ```text
//! sfm_verify --list                        # known message types
//! sfm_verify --dump-schema sensor_msgs/Image
//! sfm_verify --type sensor_msgs/Image frame.bin [more.bin ...]
//! sfm_verify --self-test                   # exercises accept+reject paths
//! ```
//!
//! Exit status: 0 when every checked frame verifies (and the self-test
//! passes), 1 on any rejection or usage error — scriptable in CI.

use rossf_msg::nav_msgs::SfmOdometry;
use rossf_msg::sensor_msgs::{SfmCameraInfo, SfmImage, SfmLaserScan, SfmPointCloud2};
use rossf_msg::std_msgs::SfmHeader;
use rossf_sfm::{verify_frame, MessageSchema, SfmBox, SfmMessage, StructDesc, TypeDesc};

/// One registered message type the tool can verify against.
struct Entry {
    name: &'static str,
    schema: fn() -> &'static MessageSchema,
}

/// Types with exported schemas, addressable by ROS type name.
fn registry() -> Vec<Entry> {
    fn entry<T: SfmMessage>() -> Entry {
        Entry {
            name: T::type_name(),
            schema: || T::schema().expect("registered type exports a schema"),
        }
    }
    vec![
        entry::<SfmHeader>(),
        entry::<SfmImage>(),
        entry::<SfmCameraInfo>(),
        entry::<SfmLaserScan>(),
        entry::<SfmPointCloud2>(),
        entry::<SfmOdometry>(),
    ]
}

fn lookup(name: &str) -> Option<&'static MessageSchema> {
    registry()
        .iter()
        .find(|e| e.name == name)
        .map(|e| (e.schema)())
}

fn type_desc_label(ty: &TypeDesc) -> String {
    match ty {
        TypeDesc::Prim { size, align } => format!("prim(size={size}, align={align})"),
        TypeDesc::Str => "string".to_string(),
        TypeDesc::Vec(elem) => format!("vec<{}>", type_desc_label(elem)),
        TypeDesc::Struct(s) => s.name.clone(),
        TypeDesc::Array { elem, len } => format!("[{}; {len}]", type_desc_label(elem)),
    }
}

fn dump_struct(s: &StructDesc, indent: usize) {
    let pad = "  ".repeat(indent);
    println!("{pad}{} (size={}, align={})", s.name, s.size, s.align);
    for f in &s.fields {
        println!(
            "{pad}  +{:<4} {:<16} {}",
            f.offset,
            f.name,
            type_desc_label(&f.ty)
        );
        if let TypeDesc::Struct(inner) = &f.ty {
            dump_struct(inner, indent + 2);
        } else if let TypeDesc::Vec(elem) = &f.ty {
            if let TypeDesc::Struct(inner) = elem.as_ref() {
                dump_struct(inner, indent + 2);
            }
        }
    }
}

fn verify_bytes(schema: &MessageSchema, label: &str, bytes: &[u8]) -> bool {
    match verify_frame(schema, bytes) {
        Ok(report) => {
            println!(
                "{label}: OK ({} bytes, {} fields walked, {} content regions, {} gap bytes)",
                bytes.len(),
                report.fields_walked,
                report.regions,
                report.gap_bytes
            );
            true
        }
        Err(e) => {
            println!("{label}: REJECTED — {e}");
            false
        }
    }
}

/// Exercise both verdicts in-process: a freshly published Image and
/// PointCloud2 must verify, and targeted corruptions of each must be
/// rejected with a diagnostic naming the failing field.
fn self_test() -> bool {
    let mut ok = true;

    let mut img = SfmBox::<SfmImage>::new();
    img.header.frame_id.assign("cam0");
    img.height = 4;
    img.width = 4;
    img.encoding.assign("rgb8");
    img.step = 12;
    img.data.assign(&[7u8; 48]);
    let frame = img.publish_handle().as_slice().to_vec();
    let schema = SfmImage::schema().expect("Image exports a schema");
    ok &= verify_bytes(schema, "self-test image (valid)", &frame);

    // Point the data offset past the end of the frame.
    let mut corrupt = frame.clone();
    let data_pair = core::mem::offset_of!(SfmImage, data);
    corrupt[data_pair + 4..data_pair + 8].copy_from_slice(&u32::MAX.to_ne_bytes());
    ok &= !verify_bytes(schema, "self-test image (data offset OOB)", &corrupt);

    // Truncate: content regions now extend past the frame.
    let truncated = &frame[..frame.len() - 8];
    ok &= !verify_bytes(schema, "self-test image (truncated)", truncated);

    let mut pc = SfmBox::<SfmPointCloud2>::new();
    pc.header.frame_id.assign("lidar");
    pc.height = 1;
    pc.width = 2;
    pc.fields.resize(1);
    pc.fields.as_mut_slice()[0].name.assign("x");
    pc.fields.as_mut_slice()[0].datatype = 7;
    pc.fields.as_mut_slice()[0].count = 1;
    pc.point_step = 4;
    pc.row_step = 8;
    pc.data.assign(&[0u8; 8]);
    pc.is_dense = 1;
    let pc_frame = pc.publish_handle().as_slice().to_vec();
    let pc_schema = SfmPointCloud2::schema().expect("PointCloud2 exports a schema");
    ok &= verify_bytes(pc_schema, "self-test cloud (valid)", &pc_frame);

    // Blow up the vector length so elements overrun their region.
    let mut pc_corrupt = pc_frame.clone();
    let fields_pair = core::mem::offset_of!(SfmPointCloud2, fields);
    pc_corrupt[fields_pair..fields_pair + 4].copy_from_slice(&1_000_000u32.to_ne_bytes());
    ok &= !verify_bytes(
        pc_schema,
        "self-test cloud (field count forged)",
        &pc_corrupt,
    );

    if ok {
        println!("self-test: PASS");
    } else {
        println!("self-test: FAIL");
    }
    ok
}

fn usage() -> ! {
    eprintln!(
        "usage: sfm_verify --list\n       \
         sfm_verify --dump-schema <type>\n       \
         sfm_verify --type <type> <file> [file ...]\n       \
         sfm_verify --self-test"
    );
    std::process::exit(1)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list") => {
            for e in registry() {
                let s = (e.schema)();
                println!(
                    "{:<28} skeleton {} bytes, max frame {} bytes",
                    e.name, s.root.size, s.max_size
                );
            }
        }
        Some("--dump-schema") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let Some(schema) = lookup(name) else {
                eprintln!("unknown type `{name}` (try --list)");
                std::process::exit(1);
            };
            dump_struct(&schema.root, 0);
            println!("max frame: {} bytes", schema.max_size);
            // Every path a projection subscription may select
            // (`SubscriberOptions::project`), with its projectability.
            println!("projection paths:");
            for path in schema.resolvable_paths() {
                let path = path.to_string();
                let verdict = match rossf_sfm::Projection::resolve(schema, &[&path]) {
                    Ok(_) => "ok",
                    Err(rossf_sfm::PathError::Unprojectable { .. }) => "unprojectable",
                    Err(_) => "unresolvable",
                };
                println!("  {path:<24} {verdict}");
            }
        }
        Some("--type") => {
            let name = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let files = &args[2..];
            if files.is_empty() {
                usage();
            }
            let Some(schema) = lookup(name) else {
                eprintln!("unknown type `{name}` (try --list)");
                std::process::exit(1);
            };
            let mut all_ok = true;
            for path in files {
                match std::fs::read(path) {
                    Ok(bytes) => all_ok &= verify_bytes(schema, path, &bytes),
                    Err(e) => {
                        eprintln!("{path}: cannot read: {e}");
                        all_ok = false;
                    }
                }
            }
            if !all_ok {
                std::process::exit(1);
            }
        }
        Some("--self-test") => {
            if !self_test() {
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
