//! Fig. 14 — intra-machine latency at the 6 MB image size across six
//! middleware: ROS, ROS-SF, ProtoBuf, FlatBuf, RTI (XCDR2), RTI-FlatData.
//!
//! All six run over an identical TCP loopback pipe so the differences are
//! exactly what the paper attributes them to: construction,
//! serialization, and access costs.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin fig14_middleware [--iters N] [--hz F]
//! ```

use rossf_baselines::flatdata::FlatDataCodec;
use rossf_baselines::flatlite::FlatLiteCodec;
use rossf_baselines::protolite::ProtoCodec;
use rossf_baselines::roscodec::RosCodec;
use rossf_baselines::sfm_image::SfmCodec;
use rossf_baselines::xcdr::XcdrCodec;
use rossf_bench::experiments::codec_latency;
use rossf_bench::report::{write_report, ScenarioReport};
use rossf_bench::{RunArgs, Stats};

fn main() {
    let args = RunArgs::from_env();
    let (w, h) = (1920u32, 1080u32); // the paper's 6 MB configuration
    println!("=== Fig. 14: middleware comparison at 6MB (1920x1080x24bit) ===");
    println!(
        "workload: {} messages per middleware, pacing {:?}\n",
        args.iters,
        args.gap()
    );

    let results: Vec<(&str, bool, Stats)> = vec![
        ("ROS", false, codec_latency::<RosCodec>(args, w, h)),
        ("ROS-SF", true, codec_latency::<SfmCodec>(args, w, h)),
        ("ProtoBuf", false, codec_latency::<ProtoCodec>(args, w, h)),
        ("FlatBuf", true, codec_latency::<FlatLiteCodec>(args, w, h)),
        ("RTI", false, codec_latency::<XcdrCodec>(args, w, h)),
        (
            "RTI-FlatData",
            true,
            codec_latency::<FlatDataCodec>(args, w, h),
        ),
    ];

    println!("{:<14} {:<6} latency", "middleware", "SF?");
    for (name, sf, stats) in &results {
        println!(
            "{:<14} {:<6} {}",
            name,
            if *sf { "yes" } else { "no" },
            stats
        );
    }

    // The pairings the paper discusses: each serialization-free framework
    // vs its serializing counterpart.
    println!("\nserialization-free vs serializing counterparts:");
    for (sf_name, base_name) in [
        ("ROS-SF", "ROS"),
        ("FlatBuf", "ProtoBuf"),
        ("RTI-FlatData", "RTI"),
    ] {
        let sf = &results.iter().find(|r| r.0 == sf_name).expect("present").2;
        let base = &results
            .iter()
            .find(|r| r.0 == base_name)
            .expect("present")
            .2;
        println!(
            "  {sf_name:<14} vs {base_name:<10}: {:+.1}% latency",
            -sf.reduction_vs(base)
        );
    }
    println!(
        "\npaper reference: the three serialization-free systems cluster well \
         below their serializing counterparts; the FlatBuf-ProtoBuf gap is the \
         smallest of the three pairs"
    );
    let payload = u64::from(w) * u64::from(h) * 3;
    let rows: Vec<ScenarioReport> = results
        .iter()
        .map(|(name, _, stats)| ScenarioReport::from_stats(&format!("{name} 6MB"), payload, stats))
        .collect();
    match write_report("fig14", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fig14.json: {e}"),
    }
}
