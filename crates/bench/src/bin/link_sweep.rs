//! Supplementary experiment: the bandwidth sweep behind the paper's
//! motivation (§1): "Traditionally, the \[serialization\] time cost is
//! negligible compared to network transmission time. However, with the
//! development of high-speed networks ... the time cost caused by
//! serialization is not negligible anymore."
//!
//! Runs the Fig. 15 ping-pong topology at a 1 MB image size across link
//! speeds from 100 Mb/s to unlimited (loopback) and reports the ROS-SF
//! latency reduction at each: it should be small on slow links and grow
//! as the wire gets faster.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin link_sweep [--iters N]
//! ```

use rossf_bench::experiments::{pingpong_plain, pingpong_sfm};
use rossf_bench::RunArgs;
use rossf_ros::LinkProfile;
use std::time::Duration;

fn main() {
    let mut args = RunArgs::from_env();
    if args.iters == RunArgs::default().iters {
        args.iters = 60; // slow links make each iteration expensive
    }
    let (w, h) = (800u32, 600u32); // the ~1 MB configuration
    let links: [(&str, LinkProfile); 4] = [
        ("100Mb/s", LinkProfile::fast_ethernet()),
        ("1Gb/s", LinkProfile::gigabit()),
        ("10Gb/s", LinkProfile::ten_gbe()),
        (
            "unlimited",
            LinkProfile {
                bandwidth_bps: 0,
                latency: Duration::from_micros(50),
            },
        ),
    ];

    println!("=== Link-speed sweep: where serialization stops being negligible ===");
    println!(
        "workload: 1MB images, ping-pong, {} messages per cell\n",
        args.iters
    );
    println!(
        "{:<10} {:>14} {:>14} {:>11}",
        "link", "ROS mean (ms)", "ROS-SF (ms)", "reduction"
    );
    for (label, link) in links {
        let ros = pingpong_plain(args, w, h, link);
        let rossf = pingpong_sfm(args, w, h, link);
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>10.1}%",
            label,
            ros.mean_ms,
            rossf.mean_ms,
            rossf.reduction_vs(&ros)
        );
    }
    println!(
        "\nexpected shape: on a 100 Mb/s link the wire dominates and the \
         reduction is small; the faster the link, the larger ROS-SF's share \
         of the saved time"
    );
}
