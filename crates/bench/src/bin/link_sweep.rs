//! Supplementary experiment: the bandwidth sweep behind the paper's
//! motivation (§1): "Traditionally, the \[serialization\] time cost is
//! negligible compared to network transmission time. However, with the
//! development of high-speed networks ... the time cost caused by
//! serialization is not negligible anymore."
//!
//! Runs the Fig. 15 ping-pong topology at a 1 MB image size across link
//! speeds from 100 Mb/s to unlimited (loopback) and reports the ROS-SF
//! latency reduction at each: it should be small on slow links and grow
//! as the wire gets faster. Writes `results/BENCH_link_sweep.json`.
//!
//! `--fastpath-smoke` instead runs a short same-machine comparison —
//! zero-copy fast path vs the same frames forced over TCP loopback — and
//! exits non-zero unless the fast path is measurably faster (TCP p50 at
//! least 1.5x the fast-path p50). `scripts/check.sh` uses this as the
//! regression gate for the same-machine tier.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin link_sweep [--iters N] [--fastpath-smoke]
//! ```

use rossf_bench::experiments::{pingpong_plain, pingpong_same_machine, pingpong_sfm};
use rossf_bench::report::{write_report, ScenarioReport};
use rossf_bench::{RunArgs, Stats};
use rossf_ros::LinkProfile;
use std::time::Duration;

/// The ~1 MB image configuration the sweep (and the smoke gate) uses.
const SIZE: (u32, u32) = (800, 600);

/// Rounds per tier in the smoke. The reported stats are the best round by
/// p50 — single-round tail percentiles on a shared machine are dominated
/// by scheduler hiccups, and the regression gate needs a reproducible
/// number, not a load sample.
const SMOKE_ROUNDS: u32 = 3;

/// Run `measure` `SMOKE_ROUNDS` times and keep the round with the lowest
/// p50, with the p99 floored element-wise across rounds. A real slowdown
/// raises the floor of every round; a scheduler hiccup only inflates one.
fn best_round(mut measure: impl FnMut() -> Stats) -> Stats {
    let mut best = measure();
    for _ in 1..SMOKE_ROUNDS {
        let s = measure();
        let floor_p99 = best.p99_ms.min(s.p99_ms);
        if s.p50_ms < best.p50_ms {
            best = s;
        }
        best.p99_ms = floor_p99;
    }
    best
}

fn fastpath_smoke(args: RunArgs) -> ! {
    let (w, h) = SIZE;
    let payload = u64::from(w) * u64::from(h) * 3;
    println!("=== fast-path smoke: same-machine zero-copy vs forced TCP ===");
    println!(
        "workload: 1MB images, ping-pong, {} messages per tier, best of {} rounds\n",
        args.iters, SMOKE_ROUNDS
    );
    let tcp = best_round(|| pingpong_same_machine(args, w, h, false));
    let fast = best_round(|| pingpong_same_machine(args, w, h, true));
    let speedup = if fast.p50_ms > 0.0 {
        tcp.p50_ms / fast.p50_ms
    } else {
        f64::INFINITY
    };
    println!("forced TCP p50: {:.3} ms", tcp.p50_ms);
    println!("fast path  p50: {:.3} ms", fast.p50_ms);
    println!("speedup: {speedup:.2}x (gate: >=1.5x)");
    let rows = [
        ScenarioReport::from_stats("smoke same-machine tcp 1MB", payload, &tcp),
        ScenarioReport::from_stats("smoke same-machine fastpath 1MB", payload, &fast),
    ];
    match write_report("fastpath_smoke", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fastpath_smoke.json: {e}"),
    }
    if tcp.p50_ms >= 1.5 * fast.p50_ms {
        std::process::exit(0);
    }
    eprintln!("FAIL: same-machine fast path is not measurably faster than TCP");
    std::process::exit(1);
}

fn main() {
    // `--fastpath-smoke` is ours, not RunArgs's (whose parser rejects
    // unknown flags) — strip it before parsing.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let smoke = raw.iter().any(|a| a == "--fastpath-smoke");
    let mut args = RunArgs::parse(raw.into_iter().filter(|a| a != "--fastpath-smoke"));
    if args.iters == RunArgs::default().iters {
        args.iters = 60; // slow links make each iteration expensive
    }
    if smoke {
        fastpath_smoke(args);
    }
    let (w, h) = SIZE;
    let payload = u64::from(w) * u64::from(h) * 3;
    let links: [(&str, LinkProfile); 4] = [
        ("100Mb/s", LinkProfile::fast_ethernet()),
        ("1Gb/s", LinkProfile::gigabit()),
        ("10Gb/s", LinkProfile::ten_gbe()),
        (
            "unlimited",
            LinkProfile {
                bandwidth_bps: 0,
                latency: Duration::from_micros(50),
            },
        ),
    ];

    println!("=== Link-speed sweep: where serialization stops being negligible ===");
    println!(
        "workload: 1MB images, ping-pong, {} messages per cell\n",
        args.iters
    );
    println!(
        "{:<10} {:>14} {:>14} {:>11}",
        "link", "ROS mean (ms)", "ROS-SF (ms)", "reduction"
    );
    let mut rows: Vec<ScenarioReport> = Vec::new();
    for (label, link) in links {
        let ros = pingpong_plain(args, w, h, link);
        let rossf = pingpong_sfm(args, w, h, link);
        println!(
            "{:<10} {:>14.3} {:>14.3} {:>10.1}%",
            label,
            ros.mean_ms,
            rossf.mean_ms,
            rossf.reduction_vs(&ros)
        );
        rows.push(ScenarioReport::from_stats(
            &format!("ros {label} 1MB"),
            payload,
            &ros,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("sfm {label} 1MB"),
            payload,
            &rossf,
        ));
    }
    println!(
        "\nexpected shape: on a 100 Mb/s link the wire dominates and the \
         reduction is small; the faster the link, the larger ROS-SF's share \
         of the saved time"
    );
    match write_report("link_sweep", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_link_sweep.json: {e}"),
    }
}
