//! Fig. 13 — intra-machine transmission latency, ROS vs ROS-SF, at the
//! paper's three image sizes (~200 KB, ~1 MB, ~6 MB).
//!
//! ```text
//! cargo run -p rossf-bench --release --bin fig13_intra [--iters N] [--hz F] [--paper]
//! ```

use rossf_baselines::WorkImage;
use rossf_bench::experiments::{intra_plain, intra_sfm, oneway_traced, TraceTier};
use rossf_bench::report::{write_report, write_trace_report, ScenarioReport, TraceWaterfall};
use rossf_bench::RunArgs;
use rossf_ros::LinkProfile;

fn main() {
    let args = RunArgs::from_env();
    println!("=== Fig. 13: intra-machine latency (ROS vs ROS-SF) ===");
    println!(
        "workload: {} messages per configuration, pacing {:?}\n",
        args.iters,
        args.gap()
    );
    println!(
        "{:<8} {:<50} {:<50} {:>10}",
        "size", "ROS (mean ± std)", "ROS-SF (mean ± std)", "reduction"
    );
    let mut rows: Vec<ScenarioReport> = Vec::new();
    for (label, w, h) in WorkImage::PAPER_SIZES {
        let payload = u64::from(w) * u64::from(h) * 3;
        let ros = intra_plain(args, w, h);
        let rossf = intra_sfm(args, w, h);
        println!(
            "{:<8} {:<50} {:<50} {:>9.1}%",
            label,
            ros.to_string(),
            rossf.to_string(),
            rossf.reduction_vs(&ros)
        );
        rows.push(ScenarioReport::from_stats(
            &format!("ros intra {label}"),
            payload,
            &ros,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("sfm intra {label}"),
            payload,
            &rossf,
        ));
    }
    println!();
    println!(
        "paper reference: ROS-SF reduces mean latency, growing with size, \
         up to ~76.3% at 6MB"
    );

    println!("\n--- stage-latency attribution: traced one-way 1MB frame, intra tiers ---");
    let (w, h) = (664, 504); // ~1 MB RGB frame
    let mut tiers: Vec<TraceWaterfall> = Vec::new();
    // Intra-machine: the zero-copy fast path and the same frames forced
    // over unshaped loopback TCP.
    for tier in [TraceTier::Fastpath, TraceTier::Tcp] {
        let (stats, snapshot) = oneway_traced(args, w, h, tier, LinkProfile::UNLIMITED);
        print!(
            "{}",
            rossf_trace::render_waterfall(std::slice::from_ref(&snapshot))
        );
        let wf = TraceWaterfall {
            label: tier.label().to_string(),
            snapshot,
            e2e_mean_us: stats.mean_ms * 1_000.0,
        };
        println!(
            "{:<9} e2e mean {:>10.1} µs, stage sum {:>10.1} µs, error {:>5.1}%\n",
            tier.label(),
            wf.e2e_mean_us,
            wf.stage_sum_us(),
            wf.sum_error() * 100.0
        );
        tiers.push(wf);
    }
    match write_trace_report("fig13", &tiers) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write TRACE_fig13.json: {e}"),
    }

    match write_report("fig13", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_fig13.json: {e}"),
    }
}
