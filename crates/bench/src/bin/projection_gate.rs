//! `projection_gate` — the selective-field-transmission gate.
//!
//! A subscriber that projects a small field subset
//! (`SubscriberOptions::project`) of a `sensor_msgs/PointCloud2` over
//! the shaped 10 GbE TCP model must observe **≥5× fewer bytes on the
//! wire** than full-frame delivery of the same stream, at a one-way p50
//! **no worse** than the full run (a small noise band on top — on a
//! shaped link the sliced sub-frame should in fact be much faster). The
//! sweep runs the paper payload sizes (~200 KB, ~1 MB, ~6 MB) and gates
//! every cell. Both runs receive with `validate_on_receive`, so every
//! projected sub-frame also proves itself against the projected schema;
//! a single verifier rejection fails the gate.
//!
//! Writes `results/BENCH_projection.json` with both rows (the byte
//! columns carry the measured wire totals), which `bench_summary --gate`
//! folds into the trajectory.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin projection_gate [-- --iters N]
//! ```

use rossf_bench::report::{write_report, ScenarioReport};
use rossf_bench::{RunArgs, Stats};
use rossf_msg::sensor_msgs::SfmPointCloud2;
use rossf_ros::time::{now_nanos, RosTime};
use rossf_ros::{
    LinkProfile, MachineId, Master, NodeHandle, Publisher, PublisherOptions, SubscriberOptions,
    TransportConfig,
};
use rossf_sfm::{SfmBox, SfmShared};
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

/// Required wire-byte reduction: full-frame bytes ≥ `REDUCTION` × projected.
const REDUCTION: f64 = 5.0;
/// Allowed fractional p50 growth of the projected run over the full run.
const P50_RATIO: f64 = 1.10;
/// Absolute p50 slack (ms) on top of the ratio bound.
const P50_SLACK_MS: f64 = 0.05;
/// Point payloads per message: the paper's ~200 KB / ~1 MB / ~6 MB cells.
const SIZES: &[(&str, usize)] = &[("200KB", 200 << 10), ("1MB", 1 << 20), ("6MB", 6 << 20)];

/// The small subset the projected subscriber asks for: the stamp it
/// needs for latency accounting plus the cloud's dimensions — everything
/// except the 1 MB `data` blob and the field descriptors.
const SUBSET: &[&str] = &["header.stamp", "height", "width", "point_step"];

/// Rounds per (size, mode) cell. The reported stats are the best round
/// by p50 with the p99 floored element-wise across rounds — single-round
/// tail percentiles on a shared machine are dominated by scheduler noise
/// (the same stabilization the fastpath smoke uses). A real slowdown
/// raises the floor of every round; a hiccup only inflates one.
const ROUNDS: u32 = 3;

/// What one delivery mode measured.
struct ModeOutcome {
    stats: Stats,
    bytes_sent: u64,
    received: u64,
    verify_rejects: u64,
    decode_errors: u64,
    projection_frames: u64,
}

fn cloud(seq: u32, t0: u64, point_bytes: usize) -> SfmBox<SfmPointCloud2> {
    let mut pc = SfmBox::<SfmPointCloud2>::new();
    pc.header.seq = seq;
    pc.header.stamp = RosTime::from_nanos(t0);
    pc.header.frame_id.assign("lidar");
    pc.height = 1;
    pc.width = (point_bytes / 16) as u32;
    pc.fields.resize(4);
    for (i, name) in ["x", "y", "z", "intensity"].iter().enumerate() {
        let f = &mut pc.fields.as_mut_slice()[i];
        f.name.assign(name);
        f.offset = i as u32 * 4;
        f.datatype = 7;
        f.count = 1;
    }
    pc.is_bigendian = 0;
    pc.point_step = 16;
    pc.row_step = point_bytes as u32;
    pc.data.resize(point_bytes);
    pc.is_dense = 1;
    pc
}

/// One-way latency run over the shaped inter-machine link: publisher on
/// machine A, subscriber on machine B, one message in flight. `project`
/// selects projected or full-frame delivery.
fn run_mode(args: RunArgs, project: bool, point_bytes: usize) -> ModeOutcome {
    let master = Master::new();
    master
        .links()
        .connect(MachineId::A, MachineId::B, LinkProfile::ten_gbe());
    let config = TransportConfig {
        validate_on_receive: true,
        enable_fastpath: false,
        enable_shm: false,
        ..TransportConfig::default()
    };
    let nh_a = NodeHandle::with_config(&master, "cloud_pub", MachineId::A, config.clone());
    let nh_b = NodeHandle::with_config(&master, "cloud_sub", MachineId::B, config);
    let topic = "projection_gate/cloud";

    let publisher: Publisher<SfmBox<SfmPointCloud2>> =
        nh_a.advertise_with(topic, PublisherOptions::new().queue_size(8));
    let mut options = SubscriberOptions::new();
    if project {
        options = options.project(SUBSET);
    }
    let (tx, rx) = mpsc::channel();
    let sub = nh_b.subscribe_with(topic, options, move |m: SfmShared<SfmPointCloud2>| {
        let _ = tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
    });
    nh_a.wait_for_subscribers(&publisher, 1);

    let mut lat = Vec::with_capacity(args.iters);
    for seq in 0..args.iters {
        let t0 = now_nanos();
        publisher.publish(&cloud(seq as u32, t0, point_bytes));
        lat.push(
            rx.recv_timeout(Duration::from_secs(30))
                .expect("projection_gate: message lost"),
        );
        std::thread::sleep(args.gap());
    }

    let ps = publisher.stats();
    let ss = sub.stats();
    let snap = master.metrics().topic(topic).snapshot();
    ModeOutcome {
        stats: Stats::from_nanos(lat).with_wire_bytes(ps.bytes_sent, ss.bytes_received),
        bytes_sent: ps.bytes_sent,
        received: ss.received,
        verify_rejects: ss.verify_rejects,
        decode_errors: ss.decode_errors,
        projection_frames: snap.projection_frames,
    }
}

/// Run `measure` [`ROUNDS`] times and keep the round with the lowest
/// p50, flooring the p99 across rounds. The wire-byte and delivery
/// counters are deterministic per round, so the kept round's values
/// stand for all of them.
fn best_outcome(mut measure: impl FnMut() -> ModeOutcome) -> ModeOutcome {
    let mut best = measure();
    for _ in 1..ROUNDS {
        let s = measure();
        let floor_p99 = best.stats.p99_ms.min(s.stats.p99_ms);
        if s.stats.p50_ms < best.stats.p50_ms {
            best = s;
        }
        best.stats.p99_ms = floor_p99;
    }
    best
}

fn main() -> ExitCode {
    let args = RunArgs::from_env();
    println!(
        "=== projection_gate: projected bytes-on-wire <= full/{REDUCTION}, \
         p50 <= {P50_RATIO}x full + {P50_SLACK_MS} ms ==="
    );
    println!(
        "PointCloud2 over shaped 10 GbE TCP, subset {SUBSET:?}; \
         {} messages per cell, best of 3 rounds\n",
        args.iters
    );
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>14} {:>10} {:>8}",
        "size", "full p50", "full wire B", "proj p50", "proj wire B", "reduction", "verdict"
    );

    let mut ok = true;
    let mut rows = Vec::new();
    let want = args.iters as u64;
    for &(label, point_bytes) in SIZES {
        let full = best_outcome(|| run_mode(args, false, point_bytes));
        let projected = best_outcome(|| run_mode(args, true, point_bytes));
        let mut cell_ok = true;
        let mut fail = |what: &str| {
            eprintln!("FAIL at {label}: {what}");
            cell_ok = false;
        };
        if full.received != want || projected.received != want {
            fail("not every published message was delivered");
        }
        if full.verify_rejects + projected.verify_rejects != 0 {
            fail("the structural verifier rejected frames (projected sub-frames must verify)");
        }
        if full.decode_errors + projected.decode_errors != 0 {
            fail("frames failed adoption");
        }
        if projected.projection_frames != want {
            fail("the projected link did not negotiate sub-frame delivery for every message");
        }
        if (projected.bytes_sent as f64) * REDUCTION > full.bytes_sent as f64 {
            fail("bytes-on-wire reduction is under the required factor");
        }
        let bound = full.stats.p50_ms * P50_RATIO + P50_SLACK_MS;
        if projected.stats.p50_ms > bound {
            fail("projected p50 is worse than full-frame delivery");
        }
        ok &= cell_ok;
        println!(
            "{:<8} {:>12.3} {:>14} {:>12.3} {:>14} {:>9.0}x {:>8}",
            label,
            full.stats.p50_ms,
            full.bytes_sent,
            projected.stats.p50_ms,
            projected.bytes_sent,
            full.bytes_sent as f64 / projected.bytes_sent.max(1) as f64,
            if cell_ok { "ok" } else { "FAIL" }
        );
        let payload = point_bytes as u64;
        rows.push(ScenarioReport::from_stats(
            &format!("cloud full ten_gbe {label}"),
            payload,
            &full.stats,
        ));
        rows.push(ScenarioReport::from_stats(
            &format!("cloud projected ten_gbe {label}"),
            payload,
            &projected.stats,
        ));
    }

    match write_report("projection", &rows) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_projection.json: {e}"),
    }

    if ok {
        println!("\nprojection gate passed at every paper size");
        ExitCode::SUCCESS
    } else {
        eprintln!("\nprojection gate FAILED");
        ExitCode::FAILURE
    }
}
