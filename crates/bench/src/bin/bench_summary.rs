//! `bench_summary` — merge every `results/BENCH_*.json` into
//! `results/TRAJECTORY.json`, the repo's consolidated performance record.
//!
//! Each harness binary writes its own per-figure report; this binary folds
//! them into one document (scenario rows verbatim, provenance per run) so
//! the measured trajectory can be diffed across commits from a single
//! file.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin bench_summary
//! ```

use rossf_bench::report::{load_trajectory_runs, write_trajectory};
use std::process::ExitCode;

fn main() -> ExitCode {
    let runs = match load_trajectory_runs() {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("could not read results directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    if runs.is_empty() {
        eprintln!("no BENCH_*.json reports found; run the harness binaries first");
        return ExitCode::FAILURE;
    }
    println!("=== bench_summary: {} report(s) merged ===", runs.len());
    println!(
        "{:<24} {:>10} {:<22} {:<10}",
        "fig", "scenarios", "timestamp", "profile"
    );
    for run in &runs {
        println!(
            "{:<24} {:>10} {:<22} {:<10}",
            run.fig, run.scenario_count, run.timestamp_utc, run.profile
        );
    }
    match write_trajectory(&runs) {
        Ok(path) => {
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write TRAJECTORY.json: {e}");
            ExitCode::FAILURE
        }
    }
}
