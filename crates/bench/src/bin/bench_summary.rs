//! `bench_summary` — merge every `results/BENCH_*.json` into
//! `results/TRAJECTORY.json`, the repo's consolidated performance record.
//!
//! Each harness binary writes its own per-figure report; this binary folds
//! them into one document (scenario rows verbatim, provenance per run) so
//! the measured trajectory can be diffed across commits from a single
//! file.
//!
//! With `--gate`, the fresh reports are first compared against the runs
//! recorded in the existing `TRAJECTORY.json`: any (fig, scenario) whose
//! p50 or p99 grew by more than 10% (beyond an absolute slack — 0.05 ms
//! for p50, 2 ms for the noisier p99) fails the gate, and the trajectory file is
//! left untouched so the baseline survives for the rerun. Scenarios
//! without a baseline — new benches, renamed series, a missing previous
//! trajectory — are skipped, not failed, as are figures whose harnesses
//! gate themselves in-run ([`rossf_bench::report::SELF_GATED_FIGS`]: the
//! bag fidelity gate measures overhead against a baseline captured in the
//! same process). Running without `--gate` always
//! rewrites the trajectory, which is also how an accepted slowdown becomes
//! the new baseline.
//!
//! ```text
//! cargo run -p rossf-bench --release --bin bench_summary [-- --gate]
//! ```

use rossf_bench::report::{
    gate_regressions, load_previous_trajectory, load_trajectory_runs, parse_scenario_rows,
    write_trajectory,
};
use std::process::ExitCode;

/// Fractional growth allowed before a percentile counts as regressed.
const GATE_THRESHOLD: f64 = 0.10;
/// Absolute growth (ms) additionally required, so sub-0.1 ms scenarios
/// don't trip the gate on scheduler noise.
const GATE_SLACK_MS: f64 = 0.05;
/// Wider absolute slack for p99: short-run tail percentiles swing ±30%
/// with machine load even after the harness's best-of-rounds flooring, so
/// p99 gates as a coarse backstop (pathological regressions inflate it
/// 10–100×) while p50 carries the tight band.
const GATE_P99_SLACK_MS: f64 = 2.0;

fn main() -> ExitCode {
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--gate" => gate = true,
            other => {
                eprintln!("unknown argument `{other}`; expected --gate");
                return ExitCode::FAILURE;
            }
        }
    }

    let runs = match load_trajectory_runs() {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("could not read results directory: {e}");
            return ExitCode::FAILURE;
        }
    };
    if runs.is_empty() {
        eprintln!("no BENCH_*.json reports found; run the harness binaries first");
        return ExitCode::FAILURE;
    }
    println!("=== bench_summary: {} report(s) merged ===", runs.len());
    println!(
        "{:<24} {:>10} {:<22} {:<10}",
        "fig", "scenarios", "timestamp", "profile"
    );
    for run in &runs {
        println!(
            "{:<24} {:>10} {:<22} {:<10}",
            run.fig, run.scenario_count, run.timestamp_utc, run.profile
        );
    }

    // Rows carrying process counts (the soak report) get their own table:
    // the threads column is the O(1)-threads claim made visible — it must
    // not move with the link count in the scenario label.
    for run in &runs {
        let rows = parse_scenario_rows(&run.scenario_rows);
        let counted: Vec<_> = rows
            .iter()
            .filter(|r| r.threads.is_some() || r.fds.is_some())
            .collect();
        if counted.is_empty() {
            continue;
        }
        println!("\nprocess counts ({}):", run.fig);
        println!("{:<32} {:>8} {:>8}", "scenario", "threads", "fds");
        for r in counted {
            let cell = |v: Option<f64>| v.map_or("-".to_string(), |v| format!("{v:.0}"));
            println!(
                "{:<32} {:>8} {:>8}",
                r.scenario,
                cell(r.threads),
                cell(r.fds)
            );
        }
    }

    if gate {
        match load_previous_trajectory() {
            None => println!(
                "regression gate: no previous TRAJECTORY.json; skipped (this run becomes the baseline)"
            ),
            Some(previous) => {
                let regressions = gate_regressions(
                    &previous,
                    &runs,
                    GATE_THRESHOLD,
                    GATE_SLACK_MS,
                    GATE_P99_SLACK_MS,
                );
                if !regressions.is_empty() {
                    for r in &regressions {
                        eprintln!("REGRESSION: {r}");
                    }
                    eprintln!(
                        "regression gate failed ({} percentile(s) > +{:.0}% vs previous \
                         trajectory); TRAJECTORY.json left untouched — rerun the harness to \
                         confirm, or run bench_summary without --gate to accept the new baseline",
                        regressions.len(),
                        GATE_THRESHOLD * 100.0
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "regression gate: all gated percentiles within +{:.0}% of the previous \
                     trajectory",
                    GATE_THRESHOLD * 100.0
                );
            }
        }
    }

    match write_trajectory(&runs) {
        Ok(path) => {
            println!("wrote {}", path.display());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("could not write TRAJECTORY.json: {e}");
            ExitCode::FAILURE
        }
    }
}
