//! The experiment runners behind the harness binaries.
//!
//! Every runner follows the paper's measurement protocol (Fig. 12): the
//! publisher stores the creation time inside the message, the (final)
//! subscriber subtracts it from its arrival time, and each message is
//! fully drained before the next is published (the paper's 10 Hz pacing
//! guarantees the same).

use crate::args::RunArgs;
use crate::stats::Stats;
use rossf_baselines::{Codec, WorkImage};
use rossf_msg::sensor_msgs::{Image, SfmImage};
use rossf_msg::std_msgs::Header;
use rossf_ros::time::{now_nanos, RosTime};
use rossf_ros::wire::{read_frame_len, write_frame};
use rossf_ros::{
    LinkProfile, LocalBus, MachineId, Master, NodeHandle, Publisher, PublisherOptions,
    SubscriberOptions, TransportConfig,
};
use rossf_sfm::{SfmBox, SfmShared};
use rossf_slam::dataset::Sequence;
use rossf_slam::pipeline::{
    frame_to_plain, frame_to_sfm, spawn_plain, spawn_sfm, SlamConfig, SlamTopics,
};
use std::io::Read;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

const RECV_TIMEOUT: Duration = Duration::from_secs(30);

fn unique_topic(prefix: &str) -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    format!("{prefix}_{}", COUNTER.fetch_add(1, Ordering::Relaxed))
}

/// Start-of-cell hygiene: return pooled SFM buffers to the system so one
/// cell's allocator state cannot perturb the next (the pool is process-
/// global; without this, a serialization-free cell's retained buffers
/// measurably slow a following plain cell's large allocations).
fn fresh_cell() {
    rossf_sfm::drain_alloc_pool();
}

/// End-of-run transport dump: drops, reconnects, decode errors, and queue
/// depths next to the latency numbers, so an anomalous run is recognizable
/// without rerunning under instrumentation. Goes to stderr, keeping stdout
/// parseable.
fn dump_transport_metrics(label: &str, master: &Master) {
    let text = master.metrics().render();
    if !text.is_empty() {
        eprint!("# {label} transport metrics\n{text}");
    }
}

/// Total wire bytes `(sent, received)` across every topic of `master`,
/// attached to a run's [`Stats`] so report rows carry the byte columns.
fn wire_bytes(master: &Master) -> (u64, u64) {
    master
        .metrics()
        .snapshot()
        .iter()
        .fold((0, 0), |(sent, received), (_, m)| {
            (sent + m.bytes_sent, received + m.bytes_received)
        })
}

fn drain_one(rx: &mpsc::Receiver<u64>, what: &str) -> u64 {
    rx.recv_timeout(RECV_TIMEOUT)
        .unwrap_or_else(|e| panic!("{what}: message lost: {e}"))
}

/// Fig. 13, "ROS" series: ordinary messages over TCP loopback. Latency
/// covers construction + serialization + transmission + de-serialization.
pub fn intra_plain(args: RunArgs, width: u32, height: u32) -> Stats {
    fresh_cell();
    let master = Master::new();
    let nh = NodeHandle::new(&master, "pub");
    let topic = unique_topic("fig13_plain");
    let publisher: Publisher<Image> =
        nh.advertise_with(&topic, PublisherOptions::new().queue_size(8));
    let (tx, rx) = mpsc::channel();
    let _sub = nh.subscribe_with(&topic, SubscriberOptions::new(), move |m: Arc<Image>| {
        let _ = tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
    });
    nh.wait_for_subscribers(&publisher, 1);

    let pixels = WorkImage::synthetic(width, height).data;
    let mut lat = Vec::with_capacity(args.iters);
    for seq in 0..args.iters {
        let t0 = now_nanos();
        // Fig. 3 construction pattern — the creation time goes inside.
        let img = Image {
            header: Header {
                seq: seq as u32,
                stamp: RosTime::from_nanos(t0),
                frame_id: "camera".to_string(),
            },
            height,
            width,
            encoding: "rgb8".to_string(),
            is_bigendian: 0,
            step: width * 3,
            data: pixels.clone(),
        };
        publisher.publish(&img);
        lat.push(drain_one(&rx, "fig13 plain"));
        std::thread::sleep(args.gap());
    }
    dump_transport_metrics("fig13 plain", &master);
    let (sent, received) = wire_bytes(&master);
    Stats::from_nanos(lat).with_wire_bytes(sent, received)
}

/// Fig. 13, "ROS-SF" series: the same code shape over serialization-free
/// messages. Latency covers construction + transmission only.
pub fn intra_sfm(args: RunArgs, width: u32, height: u32) -> Stats {
    fresh_cell();
    let master = Master::new();
    let nh = NodeHandle::new(&master, "pub");
    let topic = unique_topic("fig13_sfm");
    let publisher: Publisher<SfmBox<SfmImage>> =
        nh.advertise_with(&topic, PublisherOptions::new().queue_size(8));
    let (tx, rx) = mpsc::channel();
    let _sub = nh.subscribe_with(
        &topic,
        SubscriberOptions::new(),
        move |m: SfmShared<SfmImage>| {
            let _ = tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
        },
    );
    nh.wait_for_subscribers(&publisher, 1);

    let pixels = WorkImage::synthetic(width, height).data;
    let mut lat = Vec::with_capacity(args.iters);
    for seq in 0..args.iters {
        let t0 = now_nanos();
        // Identical statements — the transparency claim in action.
        let mut img = SfmBox::<SfmImage>::new();
        img.header.seq = seq as u32;
        img.header.stamp = RosTime::from_nanos(t0);
        img.header.frame_id.assign("camera");
        img.height = height;
        img.width = width;
        img.encoding.assign("rgb8");
        img.is_bigendian = 0;
        img.step = width * 3;
        img.data.assign(&pixels);
        publisher.publish(&img);
        lat.push(drain_one(&rx, "fig13 sfm"));
        std::thread::sleep(args.gap());
    }
    dump_transport_metrics("fig13 sfm", &master);
    let (sent, received) = wire_bytes(&master);
    Stats::from_nanos(lat).with_wire_bytes(sent, received)
}

/// Fig. 14: one codec over a bare TCP loopback pipe (identical transport
/// for all six middleware; only construction/serialization/access
/// differ).
pub fn codec_latency<C: Codec>(args: RunArgs, width: u32, height: u32) -> Stats {
    fresh_cell();
    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        stream.set_nodelay(true).ok();
        let mut reader = std::io::BufReader::with_capacity(256 * 1024, stream);
        while let Ok(Some(len)) = read_frame_len(&mut reader) {
            let mut buf = vec![0u8; len];
            if reader.read_exact(&mut buf).is_err() {
                break;
            }
            let consumed = C::consume(&buf);
            if tx
                .send(now_nanos().saturating_sub(consumed.stamp_nanos))
                .is_err()
            {
                break;
            }
        }
    });

    let mut stream = TcpStream::connect(addr).expect("connect loopback");
    stream.set_nodelay(true).ok();
    let mut src = WorkImage::synthetic(width, height);
    let mut lat = Vec::with_capacity(args.iters);
    for _ in 0..args.iters {
        src.stamp_nanos = now_nanos();
        let wire = C::make_wire(&src);
        write_frame(&mut stream, &wire).expect("write frame");
        lat.push(drain_one(&rx, C::NAME));
        std::thread::sleep(args.gap());
    }
    drop(stream);
    let _ = reader.join();
    Stats::from_nanos(lat)
}

/// Fig. 16, "ROS" series: the ping-pong topology of Fig. 15 (`pub` and
/// `sub` on machine A, `trans` on machine B) over a shaped link. The
/// reported latency is the full round trip, as in the paper.
pub fn pingpong_plain(args: RunArgs, width: u32, height: u32, link: LinkProfile) -> Stats {
    fresh_cell();
    let master = Master::new();
    master.links().connect(MachineId::A, MachineId::B, link);
    let nh_a = NodeHandle::new(&master, "machine_a");
    let nh_b = NodeHandle::with_machine(&master, "trans", MachineId::B);
    let t1 = unique_topic("fig16_plain_t1");
    let t2 = unique_topic("fig16_plain_t2");

    let pub1: Publisher<Image> = nh_a.advertise_with(&t1, PublisherOptions::new().queue_size(8));
    let pub2: Publisher<Image> = nh_b.advertise_with(&t2, PublisherOptions::new().queue_size(8));
    let pub2_cb = pub2.clone();
    let _trans = nh_b.subscribe_with(&t1, SubscriberOptions::new(), move |m: Arc<Image>| {
        // "it creates another Image message, whose timestamp is set to be
        // the same as the received message" — full reconstruction.
        let reply = Image {
            header: Header {
                seq: m.header.seq,
                stamp: m.header.stamp,
                frame_id: "pong".to_string(),
            },
            height: m.height,
            width: m.width,
            encoding: m.encoding.clone(),
            is_bigendian: 0,
            step: m.step,
            data: m.data.clone(),
        };
        pub2_cb.publish(&reply);
    });
    let (tx, rx) = mpsc::channel();
    let _sub = nh_a.subscribe_with(&t2, SubscriberOptions::new(), move |m: Arc<Image>| {
        let _ = tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
    });
    nh_a.wait_for_subscribers(&pub1, 1);
    nh_b.wait_for_subscribers(&pub2, 1);

    let pixels = WorkImage::synthetic(width, height).data;
    let mut lat = Vec::with_capacity(args.iters);
    for seq in 0..args.iters {
        let t0 = now_nanos();
        let img = Image {
            header: Header {
                seq: seq as u32,
                stamp: RosTime::from_nanos(t0),
                frame_id: "ping".to_string(),
            },
            height,
            width,
            encoding: "rgb8".to_string(),
            is_bigendian: 0,
            step: width * 3,
            data: pixels.clone(),
        };
        pub1.publish(&img);
        lat.push(drain_one(&rx, "fig16 plain"));
        std::thread::sleep(args.gap());
    }
    dump_transport_metrics("fig16 plain", &master);
    let (sent, received) = wire_bytes(&master);
    Stats::from_nanos(lat).with_wire_bytes(sent, received)
}

/// Fig. 16, "ROS-SF" series.
pub fn pingpong_sfm(args: RunArgs, width: u32, height: u32, link: LinkProfile) -> Stats {
    pingpong_sfm_with(args, width, height, link, false)
}

/// Fig. 16 SFM series with the structural verifier toggled: `validate`
/// turns on `TransportConfig::validate_on_receive` on both nodes, so every
/// received frame is proved sound against the schema before adoption. The
/// delta against the unvalidated run is the verifier's overhead.
pub fn pingpong_sfm_with(
    args: RunArgs,
    width: u32,
    height: u32,
    link: LinkProfile,
    validate: bool,
) -> Stats {
    fresh_cell();
    let master = Master::new();
    master.links().connect(MachineId::A, MachineId::B, link);
    let config = TransportConfig {
        validate_on_receive: validate,
        ..TransportConfig::default()
    };
    let nh_a = NodeHandle::with_config(&master, "machine_a", MachineId::A, config.clone());
    let nh_b = NodeHandle::with_config(&master, "trans", MachineId::B, config);
    let t1 = unique_topic("fig16_sfm_t1");
    let t2 = unique_topic("fig16_sfm_t2");

    let pub1: Publisher<SfmBox<SfmImage>> =
        nh_a.advertise_with(&t1, PublisherOptions::new().queue_size(8));
    let pub2: Publisher<SfmBox<SfmImage>> =
        nh_b.advertise_with(&t2, PublisherOptions::new().queue_size(8));
    let pub2_cb = pub2.clone();
    let _trans = nh_b.subscribe_with(
        &t1,
        SubscriberOptions::new(),
        move |m: SfmShared<SfmImage>| {
            let mut reply = SfmBox::<SfmImage>::new();
            reply.header.seq = m.header.seq;
            reply.header.stamp = m.header.stamp;
            reply.header.frame_id.assign("pong");
            reply.height = m.height;
            reply.width = m.width;
            reply.encoding.assign(m.encoding.as_str());
            reply.step = m.step;
            reply.data.assign(m.data.as_slice());
            pub2_cb.publish(&reply);
        },
    );
    let (tx, rx) = mpsc::channel();
    let _sub = nh_a.subscribe_with(
        &t2,
        SubscriberOptions::new(),
        move |m: SfmShared<SfmImage>| {
            let _ = tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
        },
    );
    nh_a.wait_for_subscribers(&pub1, 1);
    nh_b.wait_for_subscribers(&pub2, 1);

    let pixels = WorkImage::synthetic(width, height).data;
    let mut lat = Vec::with_capacity(args.iters);
    for seq in 0..args.iters {
        let t0 = now_nanos();
        let mut img = SfmBox::<SfmImage>::new();
        img.header.seq = seq as u32;
        img.header.stamp = RosTime::from_nanos(t0);
        img.header.frame_id.assign("ping");
        img.height = height;
        img.width = width;
        img.encoding.assign("rgb8");
        img.step = width * 3;
        img.data.assign(&pixels);
        pub1.publish(&img);
        lat.push(drain_one(&rx, "fig16 sfm"));
        std::thread::sleep(args.gap());
    }
    dump_transport_metrics("fig16 sfm", &master);
    let (sent, received) = wire_bytes(&master);
    Stats::from_nanos(lat).with_wire_bytes(sent, received)
}

/// Same-machine ping-pong isolating the transport tier: the Fig. 15
/// topology with *all three* nodes on machine A, and a verbatim relay
/// (the received `SfmShared` is republished unchanged, as in the
/// zero-copy relay pattern) so the round trip measures message motion,
/// not reconstruction. With `fastpath` on, delivery is the pointer-handoff
/// same-machine tier; with it off, the identical frames travel the TCP
/// loopback wire — the pair quantifies the zero-copy fast path's gain.
pub fn pingpong_same_machine(args: RunArgs, width: u32, height: u32, fastpath: bool) -> Stats {
    let config = TransportConfig {
        enable_fastpath: fastpath,
        ..TransportConfig::default()
    };
    let label = if fastpath {
        "fig16 same-machine fastpath"
    } else {
        "fig16 same-machine tcp"
    };
    pingpong_same_machine_with(args, width, height, config, label)
}

/// Fig. 16, `shm` series: the same verbatim-relay ping-pong forced onto
/// the cross-process shared-memory tier. The fast path is disabled and
/// `shm_same_process` lifted so the loopback negotiation lands on the
/// segment rings; every hop is one copy into a memfd segment and a
/// zero-copy adoption out of it. Contrasted with the TCP and fastpath
/// series, this prices the shm tier between "two socket traversals" and
/// "pure pointer handoff".
pub fn pingpong_shm(args: RunArgs, width: u32, height: u32) -> Stats {
    let config = TransportConfig {
        enable_fastpath: false,
        shm_same_process: true,
        ..TransportConfig::default()
    };
    pingpong_same_machine_with(args, width, height, config, "fig16 same-machine shm")
}

fn pingpong_same_machine_with(
    args: RunArgs,
    width: u32,
    height: u32,
    config: TransportConfig,
    label: &str,
) -> Stats {
    fresh_cell();
    let master = Master::new();
    let nh = NodeHandle::with_config(&master, "same_machine", MachineId::A, config);
    let t1 = unique_topic("fig16_local_t1");
    let t2 = unique_topic("fig16_local_t2");

    let pub1: Publisher<SfmBox<SfmImage>> =
        nh.advertise_with(&t1, PublisherOptions::new().queue_size(8));
    let pub2: Publisher<SfmShared<SfmImage>> =
        nh.advertise_with(&t2, PublisherOptions::new().queue_size(8));
    let pub2_cb = pub2.clone();
    let _trans = nh.subscribe_with(
        &t1,
        SubscriberOptions::new(),
        move |m: SfmShared<SfmImage>| {
            pub2_cb.publish(&m); // relay the received object verbatim
        },
    );
    let (tx, rx) = mpsc::channel();
    let _sub = nh.subscribe_with(
        &t2,
        SubscriberOptions::new(),
        move |m: SfmShared<SfmImage>| {
            let _ = tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
        },
    );
    nh.wait_for_subscribers(&pub1, 1);
    nh.wait_for_subscribers(&pub2, 1);

    let pixels = WorkImage::synthetic(width, height).data;
    let mut lat = Vec::with_capacity(args.iters);
    for seq in 0..args.iters {
        let t0 = now_nanos();
        let mut img = SfmBox::<SfmImage>::new();
        img.header.seq = seq as u32;
        img.header.stamp = RosTime::from_nanos(t0);
        img.header.frame_id.assign("ping");
        img.height = height;
        img.width = width;
        img.encoding.assign("rgb8");
        img.step = width * 3;
        img.data.assign(&pixels);
        pub1.publish(&img);
        lat.push(drain_one(&rx, "fig16 same-machine"));
        std::thread::sleep(args.gap());
    }
    dump_transport_metrics(label, &master);
    let (sent, received) = wire_bytes(&master);
    Stats::from_nanos(lat).with_wire_bytes(sent, received)
}

/// Fill an `SfmImage` in place with the creation time inside — shared by
/// the heap-allocated and loaned (write-in-place) publish paths so both
/// arms run statement-identical construction code.
fn fill_sfm_image(img: &mut SfmImage, seq: u32, width: u32, height: u32, pixels: &[u8], t0: u64) {
    img.header.seq = seq;
    img.header.stamp = RosTime::from_nanos(t0);
    img.header.frame_id.assign("camera");
    img.height = height;
    img.width = width;
    img.encoding.assign("rgb8");
    img.step = width * 3;
    img.data.assign(pixels);
}

/// Build one synthetic `SfmImage` with the creation time inside.
fn make_sfm_image(seq: u32, width: u32, height: u32, pixels: &[u8], t0: u64) -> SfmBox<SfmImage> {
    let mut img = SfmBox::<SfmImage>::new();
    fill_sfm_image(&mut img, seq, width, height, pixels, t0);
    img
}

/// The transport tier a traced one-way run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceTier {
    /// Shaped inter-machine TCP (publisher on machine A, subscriber on B).
    Tcp,
    /// Same-process pointer handoff.
    Fastpath,
    /// The cross-process shared-memory segment rings, exercised in
    /// same-process mode (`TransportConfig::shm_same_process`) so both
    /// ends share the trace clock and the full waterfall telescopes.
    Shm,
    /// The synchronous in-process [`LocalBus`].
    Local,
}

impl TraceTier {
    /// Series label used in trace reports.
    pub fn label(self) -> &'static str {
        match self {
            TraceTier::Tcp => "tcp",
            TraceTier::Fastpath => "fastpath",
            TraceTier::Shm => "shm",
            TraceTier::Local => "local",
        }
    }

    /// Whether this tier can run on the current build target (the shm
    /// tier needs the memfd transport; everything else always works).
    pub fn available(self) -> bool {
        self != TraceTier::Shm || rossf_shm::supported()
    }
}

/// A traced one-way pipeline (single publisher, single subscriber, one
/// topic — the shape `rossf_trace::check_monotone` assumes) with per-stage
/// tracing enabled on both endpoints. Returns the end-to-end latency
/// summary and the per-stage histograms; because the stages telescope, the
/// sum of stage means should land near the e2e mean.
///
/// `validate_on_receive` is on so the `verify` stage appears in the
/// waterfall.
///
/// # Panics
///
/// Panics when messages are lost or the trace table is missing.
pub fn oneway_traced(
    args: RunArgs,
    width: u32,
    height: u32,
    tier: TraceTier,
    link: LinkProfile,
) -> (Stats, rossf_trace::TopicSnapshot) {
    let (stats, snapshot) = oneway_run(args, width, height, tier, link, true, false);
    (stats, snapshot.expect("trace table for traced run"))
}

/// The same one-way pipeline as [`oneway_traced`] with tracing left off —
/// the control arm of the tracing-overhead gate (`sfm_trace
/// --overhead-gate`). No clock reads or histogram writes happen on this
/// path.
pub fn oneway_untraced(
    args: RunArgs,
    width: u32,
    height: u32,
    tier: TraceTier,
    link: LinkProfile,
) -> Stats {
    oneway_run(args, width, height, tier, link, false, false).0
}

/// The one-way pipeline published through the loaned write-in-place path:
/// every message is requested with [`Publisher::loan`], built directly in
/// its final backing store, and sent with `publish_loaned`. On the shm
/// tier the message is constructed inside the pool segment subscribers
/// map, so the publish-side payload memcpy (the `wire_write` stage)
/// disappears; on other tiers the loan transparently falls back to the
/// heap and the run measures the ordinary path.
///
/// # Panics
///
/// Panics on [`TraceTier::Local`] (the in-process bus has no publisher to
/// loan from) or when a loan is starved for more than ten seconds.
pub fn oneway_loaned(
    args: RunArgs,
    width: u32,
    height: u32,
    tier: TraceTier,
    link: LinkProfile,
) -> Stats {
    oneway_run(args, width, height, tier, link, false, true).0
}

/// Traced variant of [`oneway_loaned`]: the per-stage waterfall of the
/// loaned publish path. On the shm tier the snapshot should carry **no**
/// `wire_write` cell — the copy stage is gone by construction.
///
/// # Panics
///
/// As [`oneway_loaned`], plus when the trace table is missing.
pub fn oneway_loaned_traced(
    args: RunArgs,
    width: u32,
    height: u32,
    tier: TraceTier,
    link: LinkProfile,
) -> (Stats, rossf_trace::TopicSnapshot) {
    let (stats, snapshot) = oneway_run(args, width, height, tier, link, true, true);
    (stats, snapshot.expect("trace table for traced run"))
}

fn oneway_run(
    args: RunArgs,
    width: u32,
    height: u32,
    tier: TraceTier,
    link: LinkProfile,
    traced: bool,
    loaned: bool,
) -> (Stats, Option<rossf_trace::TopicSnapshot>) {
    fresh_cell();
    let pixels = WorkImage::synthetic(width, height).data;
    let (tx, rx) = mpsc::channel();

    let run = |publish: &mut dyn FnMut(u32, u64)| {
        let mut lat = Vec::with_capacity(args.iters);
        for seq in 0..args.iters {
            let t0 = now_nanos();
            publish(seq as u32, t0);
            lat.push(drain_one(&rx, "oneway traced"));
            std::thread::sleep(args.gap());
        }
        Stats::from_nanos(lat)
    };

    match tier {
        TraceTier::Local => {
            assert!(
                !loaned,
                "the in-process LocalBus has no publisher to loan from"
            );
            let bus = LocalBus::new();
            let topic = unique_topic("trace_local");
            let _sub = bus
                .subscribe_with(
                    &topic,
                    SubscriberOptions::new().trace(traced),
                    move |m: SfmShared<SfmImage>| {
                        let _ = tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
                    },
                )
                .expect("local subscribe");
            let stats = run(&mut |seq, t0| {
                let img = make_sfm_image(seq, width, height, &pixels, t0);
                bus.publish(&topic, &img).expect("local publish");
            });
            let snapshot = traced.then(|| {
                rossf_trace::tracer()
                    .topic_snapshot(&topic)
                    .expect("trace table for local topic")
            });
            (stats, snapshot)
        }
        TraceTier::Fastpath | TraceTier::Tcp | TraceTier::Shm => {
            let master = Master::new();
            let (config, pub_machine, sub_machine) = match tier {
                TraceTier::Tcp => {
                    master.links().connect(MachineId::A, MachineId::B, link);
                    (
                        TransportConfig {
                            validate_on_receive: true,
                            enable_fastpath: false,
                            ..TransportConfig::default()
                        },
                        MachineId::A,
                        MachineId::B,
                    )
                }
                TraceTier::Shm => (
                    TransportConfig {
                        validate_on_receive: true,
                        enable_fastpath: false,
                        shm_same_process: true,
                        ..TransportConfig::default()
                    },
                    MachineId::A,
                    MachineId::A,
                ),
                _ => (
                    TransportConfig {
                        validate_on_receive: true,
                        ..TransportConfig::default()
                    },
                    MachineId::A,
                    MachineId::A,
                ),
            };
            let nh_pub = NodeHandle::with_config(&master, "trace_pub", pub_machine, config.clone());
            let nh_sub = NodeHandle::with_config(&master, "trace_sub", sub_machine, config);
            let topic = unique_topic(match tier {
                TraceTier::Tcp => "trace_tcp",
                TraceTier::Shm => "trace_shm",
                _ => "trace_fastpath",
            });
            let publisher: Publisher<SfmBox<SfmImage>> =
                nh_pub.advertise_with(&topic, PublisherOptions::new().queue_size(8).trace(traced));
            let _sub = nh_sub.subscribe_with(
                &topic,
                SubscriberOptions::new().trace(traced),
                move |m: SfmShared<SfmImage>| {
                    let _ = tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
                },
            );
            nh_pub.wait_for_subscribers(&publisher, 1);
            let stats = if loaned {
                run(&mut |seq, t0| {
                    // Transient `None` means every loanable slot is still
                    // held (segments recycle as the subscriber drops its
                    // adoption); with one message in flight this resolves
                    // within microseconds.
                    let deadline = std::time::Instant::now() + Duration::from_secs(10);
                    let mut msg = loop {
                        match publisher.loan() {
                            Some(m) => break m,
                            None => {
                                assert!(
                                    std::time::Instant::now() < deadline,
                                    "loan starved for 10s"
                                );
                                std::thread::yield_now();
                            }
                        }
                    };
                    fill_sfm_image(&mut msg, seq, width, height, &pixels, t0);
                    publisher.publish_loaned(msg);
                })
            } else {
                run(&mut |seq, t0| {
                    publisher.publish(&make_sfm_image(seq, width, height, &pixels, t0));
                })
            };
            dump_transport_metrics("oneway traced", &master);
            let (sent, received) = wire_bytes(&master);
            let snapshot = traced.then(|| {
                rossf_trace::tracer()
                    .topic_snapshot(&topic)
                    .expect("trace table for topic")
            });
            (stats.with_wire_bytes(sent, received), snapshot)
        }
    }
}

/// Latency sets measured by the three output subscribers of Fig. 17.
#[derive(Debug, Clone)]
pub struct SlamLatencies {
    /// `sub_pose` (geometry_msgs/PoseStamped).
    pub pose: Stats,
    /// `sub_cloud` (sensor_msgs/PointCloud2).
    pub cloud: Stats,
    /// `sub_debug` (sensor_msgs/Image).
    pub debug: Stats,
}

/// Which message family the SLAM topology runs over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Ordinary ROS messages.
    Plain,
    /// ROS-SF serialization-free messages.
    Sfm,
}

/// Fig. 18: the five-node ORB-SLAM topology. `frame_size` lets tests run
/// a downscaled sequence; the harness binary uses TUM's 640×480 and the
/// calibrated 30–40 ms compute.
pub fn slam_case_study(
    args: RunArgs,
    family: Family,
    frame_size: (u32, u32),
    compute: Duration,
) -> SlamLatencies {
    fresh_cell();
    let (width, height) = frame_size;
    let master = Master::new();
    let nh = NodeHandle::new(&master, "slam_harness");
    let topics = SlamTopics::with_prefix(&unique_topic("fig18"));
    let seq = if frame_size == (640, 480) {
        Sequence::tum_like(2022)
    } else {
        Sequence::with_resolution(2022, width, height, 2.0)
    };
    let config = SlamConfig {
        min_frame_compute: compute,
        threshold: 25,
    };

    let (pose_tx, pose_rx) = mpsc::channel();
    let (cloud_tx, cloud_rx) = mpsc::channel();
    let (debug_tx, debug_rx) = mpsc::channel();

    // Keep family-specific handles alive for the duration of the run.
    type PlainSubs = (
        rossf_ros::Subscriber<Arc<rossf_msg::geometry_msgs::PoseStamped>>,
        rossf_ros::Subscriber<Arc<rossf_msg::sensor_msgs::PointCloud2>>,
        rossf_ros::Subscriber<Arc<Image>>,
    );
    type SfmSubs = (
        rossf_ros::Subscriber<SfmShared<rossf_msg::geometry_msgs::SfmPoseStamped>>,
        rossf_ros::Subscriber<SfmShared<rossf_msg::sensor_msgs::SfmPointCloud2>>,
        rossf_ros::Subscriber<SfmShared<SfmImage>>,
    );
    enum Running {
        Plain {
            publisher: Publisher<Image>,
            _node: rossf_slam::pipeline::OrbSlamNode<Arc<Image>>,
            _subs: PlainSubs,
        },
        Sfm {
            publisher: Publisher<SfmBox<SfmImage>>,
            _node: rossf_slam::pipeline::OrbSlamNode<SfmShared<SfmImage>>,
            _subs: SfmSubs,
        },
    }

    let running = match family {
        Family::Plain => {
            let publisher: Publisher<Image> =
                nh.advertise_with(&topics.image, PublisherOptions::new().queue_size(8));
            let node = spawn_plain(&nh, &topics, width, height, config);
            let subs = (
                nh.subscribe_with(
                    &topics.pose,
                    SubscriberOptions::new(),
                    move |m: Arc<rossf_msg::geometry_msgs::PoseStamped>| {
                        let _ = pose_tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
                    },
                ),
                nh.subscribe_with(
                    &topics.cloud,
                    SubscriberOptions::new(),
                    move |m: Arc<rossf_msg::sensor_msgs::PointCloud2>| {
                        let _ =
                            cloud_tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
                    },
                ),
                nh.subscribe_with(
                    &topics.debug,
                    SubscriberOptions::new(),
                    move |m: Arc<Image>| {
                        let _ =
                            debug_tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
                    },
                ),
            );
            nh.wait_for_subscribers(&publisher, 1);
            Running::Plain {
                publisher,
                _node: node,
                _subs: subs,
            }
        }
        Family::Sfm => {
            let publisher: Publisher<SfmBox<SfmImage>> =
                nh.advertise_with(&topics.image, PublisherOptions::new().queue_size(8));
            let node = spawn_sfm(&nh, &topics, width, height, config);
            let subs = (
                nh.subscribe_with(
                    &topics.pose,
                    SubscriberOptions::new(),
                    move |m: SfmShared<rossf_msg::geometry_msgs::SfmPoseStamped>| {
                        let _ = pose_tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
                    },
                ),
                nh.subscribe_with(
                    &topics.cloud,
                    SubscriberOptions::new(),
                    move |m: SfmShared<rossf_msg::sensor_msgs::SfmPointCloud2>| {
                        let _ =
                            cloud_tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
                    },
                ),
                nh.subscribe_with(
                    &topics.debug,
                    SubscriberOptions::new(),
                    move |m: SfmShared<SfmImage>| {
                        let _ =
                            debug_tx.send(now_nanos().saturating_sub(m.header.stamp.as_nanos()));
                    },
                ),
            );
            nh.wait_for_subscribers(&publisher, 1);
            Running::Sfm {
                publisher,
                _node: node,
                _subs: subs,
            }
        }
    };
    // Give the three output subscribers time to finish their handshakes
    // (they join the slam node's publishers asynchronously).
    std::thread::sleep(Duration::from_millis(100));

    let mut pose_lat = Vec::with_capacity(args.iters);
    let mut cloud_lat = Vec::with_capacity(args.iters);
    let mut debug_lat = Vec::with_capacity(args.iters);
    for i in 0..args.iters {
        let frame = seq.frame(i);
        let t0 = now_nanos();
        match &running {
            Running::Plain { publisher, .. } => {
                publisher.publish(&frame_to_plain(&frame, RosTime::from_nanos(t0)));
            }
            Running::Sfm { publisher, .. } => {
                publisher.publish(&frame_to_sfm(&frame, RosTime::from_nanos(t0)));
            }
        }
        pose_lat.push(drain_one(&pose_rx, "fig18 pose"));
        cloud_lat.push(drain_one(&cloud_rx, "fig18 cloud"));
        debug_lat.push(drain_one(&debug_rx, "fig18 debug"));
        std::thread::sleep(args.gap());
    }
    dump_transport_metrics("fig18 slam", &master);
    SlamLatencies {
        pose: Stats::from_nanos(pose_lat),
        cloud: Stats::from_nanos(cloud_lat),
        debug: Stats::from_nanos(debug_lat),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rossf_baselines::flatlite::FlatLiteCodec;
    use rossf_baselines::protolite::ProtoCodec;
    use rossf_baselines::roscodec::RosCodec;
    use rossf_baselines::sfm_image::SfmCodec;

    fn tiny() -> RunArgs {
        RunArgs { iters: 5, hz: 0.0 }
    }

    #[test]
    fn fig13_runners_produce_sane_latencies() {
        let plain = intra_plain(tiny(), 32, 32);
        let sfm = intra_sfm(tiny(), 32, 32);
        assert_eq!(plain.n, 5);
        assert_eq!(sfm.n, 5);
        assert!(plain.mean_ms > 0.0 && plain.mean_ms < 1000.0);
        assert!(sfm.mean_ms > 0.0 && sfm.mean_ms < 1000.0);
    }

    #[test]
    fn fig14_codec_runner_works_for_each_family() {
        assert_eq!(codec_latency::<RosCodec>(tiny(), 16, 16).n, 5);
        assert_eq!(codec_latency::<SfmCodec>(tiny(), 16, 16).n, 5);
        assert_eq!(codec_latency::<ProtoCodec>(tiny(), 16, 16).n, 5);
        assert_eq!(codec_latency::<FlatLiteCodec>(tiny(), 16, 16).n, 5);
    }

    #[test]
    fn fig16_pingpong_roundtrips() {
        let link = LinkProfile {
            bandwidth_bps: 1_000_000_000,
            latency: Duration::from_micros(100),
        };
        let plain = pingpong_plain(tiny(), 32, 32, link);
        let sfm = pingpong_sfm(tiny(), 32, 32, link);
        assert_eq!(plain.n, 5);
        assert_eq!(sfm.n, 5);
        // Both pay the propagation latency twice.
        assert!(plain.min_ms >= 0.2);
        assert!(sfm.min_ms >= 0.2);
    }

    #[test]
    fn fig16_pingpong_validated_matches_unvalidated_count() {
        let link = LinkProfile {
            bandwidth_bps: 1_000_000_000,
            latency: Duration::from_micros(100),
        };
        // With the verifier on, every valid frame still gets through: the
        // run completes with the same number of round trips.
        let validated = pingpong_sfm_with(tiny(), 32, 32, link, true);
        assert_eq!(validated.n, 5);
        assert!(validated.min_ms >= 0.2);
    }

    #[test]
    fn fig16_same_machine_runs_on_every_tier() {
        let fast = pingpong_same_machine(tiny(), 32, 32, true);
        let tcp = pingpong_same_machine(tiny(), 32, 32, false);
        assert_eq!(fast.n, 5);
        assert_eq!(tcp.n, 5);
        assert!(fast.mean_ms > 0.0 && fast.mean_ms < 1000.0);
        assert!(tcp.mean_ms > 0.0 && tcp.mean_ms < 1000.0);
        if TraceTier::Shm.available() {
            let shm = pingpong_shm(tiny(), 32, 32);
            assert_eq!(shm.n, 5);
            assert!(shm.mean_ms > 0.0 && shm.mean_ms < 1000.0);
        }
    }

    #[test]
    fn oneway_traced_covers_every_tier() {
        let link = LinkProfile {
            bandwidth_bps: 1_000_000_000,
            latency: Duration::from_micros(100),
        };
        use rossf_trace::Stage;
        let all_stages = vec![
            Stage::Alloc,
            Stage::Encode,
            Stage::Enqueue,
            Stage::WireWrite,
            Stage::WireRead,
            Stage::Verify,
            Stage::Adopt,
            Stage::Callback,
        ];
        for (tier, want_stages) in [
            (
                TraceTier::Local,
                vec![Stage::Alloc, Stage::Encode, Stage::Adopt, Stage::Callback],
            ),
            (
                TraceTier::Fastpath,
                vec![
                    Stage::Alloc,
                    Stage::Encode,
                    Stage::Enqueue,
                    Stage::Verify,
                    Stage::Adopt,
                    Stage::Callback,
                ],
            ),
            (TraceTier::Tcp, all_stages.clone()),
            (TraceTier::Shm, all_stages),
        ] {
            if !tier.available() {
                continue;
            }
            let (stats, snap) = oneway_traced(tiny(), 32, 32, tier, link);
            assert_eq!(stats.n, 5, "{tier:?}");
            for stage in want_stages {
                let cell = snap
                    .cells
                    .iter()
                    .find(|c| c.stage == stage)
                    .unwrap_or_else(|| panic!("{tier:?} missing stage {stage:?}"));
                assert_eq!(cell.hist.count, 5, "{tier:?} stage {stage:?} sample count");
            }
            // The telescoping property that makes the waterfall meaningful:
            // per-stage means sum to the neighborhood of the measured e2e
            // (loose here — CI boxes are noisy; the harness binaries report
            // the exact error).
            let sum_ms = snap.stage_sum_ns(true) / 1e6;
            assert!(
                sum_ms > 0.0 && sum_ms < stats.mean_ms * 3.0,
                "{tier:?}: stage sum {sum_ms} ms vs e2e mean {} ms",
                stats.mean_ms
            );
        }
    }

    #[test]
    fn oneway_loaned_shm_trace_omits_the_copy_stage() {
        if !TraceTier::Shm.available() {
            return;
        }
        let link = LinkProfile {
            bandwidth_bps: 1_000_000_000,
            latency: Duration::from_micros(100),
        };
        use rossf_trace::Stage;
        let (stats, snap) = oneway_loaned_traced(tiny(), 32, 32, TraceTier::Shm, link);
        assert_eq!(stats.n, 5);
        // The message is built inside the segment, so the publish-side
        // payload copy (wire_write) must not appear in the waterfall.
        let copied: Vec<_> = snap
            .cells
            .iter()
            .filter(|c| c.stage == Stage::WireWrite && c.hist.count > 0)
            .collect();
        assert!(
            copied.is_empty(),
            "loaned shm publish recorded a copy stage: {copied:?}"
        );
        // Every other stage of the shm waterfall is still present.
        for stage in [
            Stage::Alloc,
            Stage::Encode,
            Stage::Enqueue,
            Stage::WireRead,
            Stage::Verify,
            Stage::Adopt,
            Stage::Callback,
        ] {
            let cell = snap
                .cells
                .iter()
                .find(|c| c.stage == stage)
                .unwrap_or_else(|| panic!("loaned shm missing stage {stage:?}"));
            assert_eq!(cell.hist.count, 5, "loaned shm stage {stage:?}");
        }
    }

    #[test]
    fn oneway_loaned_falls_back_on_non_shm_tiers() {
        let link = LinkProfile {
            bandwidth_bps: 1_000_000_000,
            latency: Duration::from_micros(100),
        };
        // Fastpath delivery grants no shm loans; the heap fallback must
        // keep the run indistinguishable from an ordinary publish.
        let fast = oneway_loaned(tiny(), 32, 32, TraceTier::Fastpath, link);
        assert_eq!(fast.n, 5);
        assert!(fast.mean_ms > 0.0 && fast.mean_ms < 1000.0);
    }

    #[test]
    fn fig18_slam_runner_both_families() {
        let args = RunArgs { iters: 3, hz: 0.0 };
        let plain = slam_case_study(args, Family::Plain, (96, 72), Duration::ZERO);
        let sfm = slam_case_study(args, Family::Sfm, (96, 72), Duration::ZERO);
        for s in [
            &plain.pose,
            &plain.cloud,
            &plain.debug,
            &sfm.pose,
            &sfm.cloud,
            &sfm.debug,
        ] {
            assert_eq!(s.n, 3);
            assert!(s.mean_ms > 0.0);
        }
    }
}
