//! Ablation: transport variants for serialization-free frames.
//!
//! Related work (§2.1) distinguishes intra-process, intra-machine, and
//! inter-machine IPC. This bench compares, for a ~1 MB SFM image frame:
//!
//! * the intra-machine path used in the evaluation (TCP loopback framing
//!   through `Encode` → socket → `SfmRecvBuffer` adoption), and
//! * the intra-process fast path (`Decode::from_local_frame`, which
//!   shares the publisher's buffer with zero copies).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rossf_msg::sensor_msgs::SfmImage;
use rossf_ros::wire::{read_frame_len, write_frame};
use rossf_ros::{Decode, Encode};
use rossf_sfm::{SfmBox, SfmShared};
use std::hint::black_box;
use std::io::Read;
use std::net::{TcpListener, TcpStream};

fn make_image(width: u32, height: u32) -> SfmBox<SfmImage> {
    let mut img = SfmBox::<SfmImage>::new();
    img.height = height;
    img.width = width;
    img.encoding.assign("rgb8");
    img.step = width * 3;
    img.data.resize((width * height * 3) as usize);
    img
}

fn transport_ablation(c: &mut Criterion) {
    let img = make_image(640, 480); // ~0.9 MB, the TUM frame size
    let payload = img.whole_len() as u64;

    let mut group = c.benchmark_group("sfm_transport");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(payload));

    group.bench_function("intra_process_zero_copy", |b| {
        b.iter(|| {
            let frame = img.encode();
            let shared: SfmShared<SfmImage> =
                Decode::from_local_frame(black_box(&frame)).expect("valid frame");
            black_box(shared.data.len());
        });
    });

    group.bench_function("tcp_loopback", |b| {
        // One persistent loopback connection, echoing frame-by-frame.
        let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = std::thread::spawn(move || TcpStream::connect(addr).expect("connect"));
        let (server, _) = listener.accept().expect("accept");
        let mut writer = client.join().expect("client thread");
        writer.set_nodelay(true).ok();
        let mut reader = std::io::BufReader::with_capacity(256 * 1024, server);

        b.iter(|| {
            let frame = img.encode();
            write_frame(&mut writer, frame.as_slice()).expect("write");
            let len = read_frame_len(&mut reader)
                .expect("read len")
                .expect("open");
            let mut slot = <SfmShared<SfmImage> as Decode>::new_slot(len).expect("slot");
            reader
                .read_exact(rossf_ros::RecvSlot::as_mut_slice(&mut slot))
                .expect("read payload");
            let shared = <SfmShared<SfmImage> as Decode>::finish_slot(slot).expect("adopt");
            black_box(shared.data.len());
        });
    });

    group.finish();
}

criterion_group!(benches, transport_ablation);
criterion_main!(benches);
