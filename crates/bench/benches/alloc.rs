//! Ablation: the `max_size` pre-allocation rule (§4.2).
//!
//! The paper allocates every message at its type's maximum size up front
//! so that growing a field never moves the buffer ("This is also the
//! solution used by FlatData and FlatBuffer to avoid memory
//! reallocation"). The alternative — allocate exactly, reallocate (and
//! copy) on growth — would invalidate interior field addresses, which is
//! why SFM forbids it; this bench quantifies what the rule costs and what
//! the realloc alternative would have cost in copies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rossf_msg::sensor_msgs::SfmImage;
use rossf_sfm::SfmBox;
use std::hint::black_box;

fn build_image(pixels: &[u8], width: u32, height: u32) -> SfmBox<SfmImage> {
    let mut img = SfmBox::<SfmImage>::new();
    img.height = height;
    img.width = width;
    img.encoding.assign("rgb8");
    img.step = width * 3;
    img.data.assign(pixels);
    img
}

fn alloc_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation_strategy");
    group.sample_size(20);

    for &(label, w, h) in &[
        ("200KB", 256u32, 256u32),
        ("1MB", 800, 600),
        ("6MB", 1920, 1080),
    ] {
        let pixels = vec![7u8; (w * h * 3) as usize];
        group.throughput(Throughput::Bytes(pixels.len() as u64));

        // The SFM rule: one max_size allocation, grow-in-place, one
        // content copy.
        group.bench_with_input(
            BenchmarkId::new("prealloc_max_size", label),
            &pixels,
            |b, pixels| {
                b.iter(|| black_box(build_image(black_box(pixels), w, h)));
            },
        );

        // The rejected alternative, simulated: exact-size buffer that must
        // be reallocated+copied once when the data field arrives (what a
        // `realloc`-style growth path would pay at minimum; it would ALSO
        // break interior pointers, which no benchmark can fix).
        group.bench_with_input(
            BenchmarkId::new("exact_then_realloc", label),
            &pixels,
            |b, pixels| {
                b.iter(|| {
                    // skeleton-sized buffer...
                    let skeleton = vec![0u8; core::mem::size_of::<SfmImage>()];
                    // ...grown for the data field: new allocation + move.
                    let mut grown = Vec::with_capacity(skeleton.len() + pixels.len());
                    grown.extend_from_slice(black_box(&skeleton));
                    grown.extend_from_slice(black_box(pixels));
                    black_box(grown)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, alloc_ablation);
criterion_main!(benches);
