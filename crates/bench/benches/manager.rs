//! Ablation: the message manager's interior-address lookup (§4.3.3).
//!
//! The paper implements record lookup "as a binary search from a
//! std::vector of ordered records. It could be further optimized, but ...
//! it appears to be efficient enough." This bench quantifies that choice
//! by comparing binary search against a linear scan while the number of
//! live messages grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rossf_sfm::{LookupStrategy, MessageManager, SfmAlloc};
use std::hint::black_box;
use std::sync::Arc;

fn lookup_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager_lookup");
    group.sample_size(20);
    for &live in &[1usize, 16, 256, 1024] {
        // A private manager with `live` registered messages.
        let manager = MessageManager::new();
        let allocs: Vec<Arc<SfmAlloc>> = (0..live).map(|_| Arc::new(SfmAlloc::new(256))).collect();
        for a in &allocs {
            manager.register(Arc::clone(a), 32, "bench/M");
        }
        // Probe addresses in the middle of each message, round-robin.
        let probes: Vec<usize> = allocs.iter().map(|a| a.base() + 100).collect();

        for strategy in [LookupStrategy::Binary, LookupStrategy::Linear] {
            manager.set_lookup_strategy(strategy);
            let name = match strategy {
                LookupStrategy::Binary => "binary",
                LookupStrategy::Linear => "linear",
            };
            group.bench_with_input(BenchmarkId::new(name, live), &probes, |b, probes| {
                let mut i = 0;
                b.iter(|| {
                    let addr = probes[i % probes.len()];
                    i += 1;
                    // expand-by-0 exercises lookup without growth.
                    black_box(manager.expand(black_box(addr), 0, 1).unwrap());
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, lookup_ablation);
criterion_main!(benches);
