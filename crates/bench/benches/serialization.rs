//! Criterion micro-benchmarks: per-codec construction/serialization and
//! consumption/de-serialization cost at the paper's image sizes. These
//! are the per-stage numbers underlying Figs. 13/14 (the harness binaries
//! measure the end-to-end pipelines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rossf_baselines::flatdata::FlatDataCodec;
use rossf_baselines::flatlite::FlatLiteCodec;
use rossf_baselines::protolite::ProtoCodec;
use rossf_baselines::roscodec::RosCodec;
use rossf_baselines::sfm_image::SfmCodec;
use rossf_baselines::xcdr::XcdrCodec;
use rossf_baselines::{Codec, WorkImage};
use std::hint::black_box;

fn bench_codec<C: Codec>(c: &mut Criterion, sizes: &[(&str, u32, u32)]) {
    let mut group = c.benchmark_group(format!("make_wire/{}", C::NAME));
    group.sample_size(10);
    for &(label, w, h) in sizes {
        let img = WorkImage::synthetic(w, h);
        group.throughput(Throughput::Bytes(img.data.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &img, |b, img| {
            b.iter(|| black_box(C::make_wire(black_box(img))));
        });
    }
    group.finish();

    let mut group = c.benchmark_group(format!("consume/{}", C::NAME));
    group.sample_size(10);
    for &(label, w, h) in sizes {
        let img = WorkImage::synthetic(w, h);
        let wire = C::make_wire(&img);
        group.throughput(Throughput::Bytes(img.data.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(label), &wire, |b, wire| {
            b.iter(|| black_box(C::consume(black_box(wire))));
        });
    }
    group.finish();
}

fn all_codecs(c: &mut Criterion) {
    // 200 KB and 1 MB run quickly; 6 MB is covered by the fig13/fig14
    // harness binaries.
    let sizes = [("200KB", 256u32, 256u32), ("1MB", 800, 600)];
    bench_codec::<RosCodec>(c, &sizes);
    bench_codec::<SfmCodec>(c, &sizes);
    bench_codec::<ProtoCodec>(c, &sizes);
    bench_codec::<FlatLiteCodec>(c, &sizes);
    bench_codec::<XcdrCodec>(c, &sizes);
    bench_codec::<FlatDataCodec>(c, &sizes);
}

criterion_group!(benches, all_codecs);
criterion_main!(benches);
