//! Runtime schema export: compute the structural-verifier schema
//! ([`rossf_sfm::MessageSchema`]) straight from the parsed IDL model.
//!
//! The verifier in `rossf-sfm` walks raw buffers using a [`TypeDesc`] tree.
//! Generated message types produce that tree from the real Rust layout
//! (`offset_of!`, via `ros_message_impls!`); this module produces the same
//! tree from the *IDL* by replaying the `#[repr(C)]` layout algorithm over
//! a [`MessageSpec`]. The two derivations are independent, which makes them
//! a cross-check on each other (see `crates/msg/tests/schema.rs`): a field
//! reordered in a hand-written struct, a wrong manifest entry, or a layout
//! regression shows up as a schema mismatch.
//!
//! It also lets tools verify captured buffers for message types that only
//! exist as `.msg` text — `sfm_verify` can load a definition and triage a
//! frame without any generated code.

use crate::model::{Arity, Catalog, FieldType, MessageSpec};
use rossf_sfm::{align_up, FieldDesc, MessageSchema, StructDesc, TypeDesc};
use std::collections::BTreeMap;

/// Why a schema could not be computed from the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A named field type had neither a provided descriptor nor a spec in
    /// the catalog.
    Unresolved {
        /// The unresolved type name, as written in the IDL.
        name: String,
    },
    /// Message definitions reference each other cyclically (not legal ROS).
    Cycle {
        /// The type whose elaboration re-entered itself.
        name: String,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Unresolved { name } => {
                write!(f, "cannot resolve field type `{name}` to a layout")
            }
            SchemaError::Cycle { name } => {
                write!(f, "cyclic message definition involving `{name}`")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// Computes [`TypeDesc`]/[`MessageSchema`] values from IDL specs,
/// memoizing nested types.
///
/// Named types are resolved in order against (1) descriptors provided via
/// [`SchemaBuilder::provide`] — the escape hatch for standard-library types
/// whose specs are not in the catalog — and (2) specs registered in the
/// catalog, elaborated recursively.
pub struct SchemaBuilder<'c> {
    catalog: &'c Catalog,
    known: BTreeMap<String, TypeDesc>,
    in_progress: Vec<String>,
}

impl<'c> SchemaBuilder<'c> {
    /// Builder over `catalog`'s specs, with no external types provided yet.
    pub fn new(catalog: &'c Catalog) -> Self {
        SchemaBuilder {
            catalog,
            known: BTreeMap::new(),
            in_progress: Vec::new(),
        }
    }

    /// Provide the descriptor of an externally defined type under `name`
    /// (use both the bare and the `package/Name` spelling if the IDL may
    /// reference either).
    pub fn provide(&mut self, name: &str, desc: TypeDesc) {
        self.known.insert(name.to_string(), desc);
    }

    /// The `repr(C)` layout descriptor of one scalar IDL base type.
    fn base_desc(&mut self, ty: &FieldType) -> Result<TypeDesc, SchemaError> {
        Ok(match ty {
            FieldType::Bool | FieldType::UInt8 | FieldType::Int8 => {
                TypeDesc::Prim { size: 1, align: 1 }
            }
            FieldType::Int16 | FieldType::UInt16 => TypeDesc::Prim { size: 2, align: 2 },
            FieldType::Int32 | FieldType::UInt32 | FieldType::Float32 => {
                TypeDesc::Prim { size: 4, align: 4 }
            }
            FieldType::Int64 | FieldType::UInt64 | FieldType::Float64 => {
                TypeDesc::Prim { size: 8, align: 8 }
            }
            // Two u32/i32 words: 8 bytes at alignment 4.
            FieldType::Time | FieldType::Duration => TypeDesc::Prim { size: 8, align: 4 },
            FieldType::RosString => TypeDesc::Str,
            FieldType::Named(name) => self.named_desc(name)?,
        })
    }

    fn named_desc(&mut self, name: &str) -> Result<TypeDesc, SchemaError> {
        if let Some(d) = self.known.get(name) {
            return Ok(d.clone());
        }
        if self.in_progress.iter().any(|n| n == name) {
            return Err(SchemaError::Cycle {
                name: name.to_string(),
            });
        }
        let spec = self
            .catalog
            .specs()
            .iter()
            .find(|s| s.full_name() == name || s.name == name)
            .cloned()
            .ok_or_else(|| SchemaError::Unresolved {
                name: name.to_string(),
            })?;
        self.in_progress.push(name.to_string());
        let desc = self.type_desc(&spec);
        self.in_progress.pop();
        let desc = desc?;
        self.known.insert(name.to_string(), desc.clone());
        Ok(desc)
    }

    /// Elaborate `spec` into the descriptor of its SFM skeleton by replaying
    /// the `#[repr(C)]` layout algorithm over its fields.
    ///
    /// # Errors
    ///
    /// [`SchemaError`] when a named field type cannot be resolved.
    pub fn type_desc(&mut self, spec: &MessageSpec) -> Result<TypeDesc, SchemaError> {
        let mut fields = Vec::with_capacity(spec.fields.len());
        let mut offset = 0usize;
        let mut struct_align = 1usize;
        for field in &spec.fields {
            let base = self.base_desc(&field.ty)?;
            let ty = match field.arity {
                Arity::Scalar => base,
                Arity::FixedArray(n) => TypeDesc::Array {
                    elem: Box::new(base),
                    len: n,
                },
                Arity::DynamicArray => TypeDesc::Vec(Box::new(base)),
            };
            let align = ty.align();
            offset = align_up(offset, align);
            struct_align = struct_align.max(align);
            let size = ty.size();
            fields.push(FieldDesc {
                name: field.name.clone(),
                offset,
                ty,
            });
            offset += size;
        }
        Ok(TypeDesc::Struct(StructDesc {
            name: spec.full_name(),
            size: align_up(offset, struct_align),
            align: struct_align,
            fields,
        }))
    }

    /// Full verifier schema for `spec` with the given `max_size` (the bound
    /// the generator writes into the `ros_message_impls!` invocation).
    ///
    /// # Errors
    ///
    /// As [`SchemaBuilder::type_desc`].
    pub fn schema(
        &mut self,
        spec: &MessageSpec,
        max_size: usize,
    ) -> Result<MessageSchema, SchemaError> {
        let TypeDesc::Struct(root) = self.type_desc(spec)? else {
            unreachable!("type_desc of a spec is always a struct");
        };
        Ok(MessageSchema { root, max_size })
    }
}

/// One-shot helper: schema of `spec` against `catalog`, with `time` /
/// `duration` / `Header`-style externals supplied via `provide` first when
/// needed.
///
/// # Errors
///
/// As [`SchemaBuilder::schema`].
pub fn schema_from_spec(
    catalog: &Catalog,
    spec: &MessageSpec,
    max_size: usize,
) -> Result<MessageSchema, SchemaError> {
    SchemaBuilder::new(catalog).schema(spec, max_size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_msg;

    #[test]
    fn flat_message_layout() {
        // uint32 a; float64 b; uint8 c — classic padding case.
        let spec = parse_msg("t", "Flat", "uint32 a\nfloat64 b\nuint8 c\n").unwrap();
        let catalog = Catalog::new();
        let schema = schema_from_spec(&catalog, &spec, 1024).unwrap();
        assert_eq!(schema.root.size, 24); // 4 + pad4 + 8 + 1 + pad7
        assert_eq!(schema.root.align, 8);
        assert_eq!(schema.root.fields[0].offset, 0);
        assert_eq!(schema.root.fields[1].offset, 8);
        assert_eq!(schema.root.fields[2].offset, 16);
        assert_eq!(schema.max_size, 1024);
    }

    #[test]
    fn strings_vectors_and_arrays() {
        let spec = parse_msg(
            "t",
            "Mixed",
            "string name\nfloat32[] values\nfloat64[3] fixed\nuint8[] blob\n",
        )
        .unwrap();
        let catalog = Catalog::new();
        let schema = schema_from_spec(&catalog, &spec, 4096).unwrap();
        let f = &schema.root.fields;
        assert_eq!(f[0].ty, TypeDesc::Str);
        assert_eq!(
            f[1].ty,
            TypeDesc::Vec(Box::new(TypeDesc::Prim { size: 4, align: 4 }))
        );
        assert!(matches!(f[2].ty, TypeDesc::Array { len: 3, .. }));
        // name{0,8} values{8,8} fixed aligned to 8 → 16..40, blob 40..48.
        assert_eq!(f[2].offset, 16);
        assert_eq!(f[3].offset, 40);
        assert_eq!(schema.root.size, 48);
    }

    #[test]
    fn nested_types_resolve_through_the_catalog() {
        let mut catalog = Catalog::new();
        catalog
            .add(parse_msg("t", "Point", "float64 x\nfloat64 y\n").unwrap())
            .unwrap();
        let spec = parse_msg("t", "Path", "Point[] points\nstring frame\n").unwrap();
        let schema = schema_from_spec(&catalog, &spec, 1 << 16).unwrap();
        let TypeDesc::Vec(elem) = &schema.root.fields[0].ty else {
            panic!("points must be a vec");
        };
        assert_eq!(elem.size(), 16);
        assert!(!elem.has_indirection());
    }

    #[test]
    fn provided_external_descriptors_win() {
        let catalog = Catalog::new();
        let spec = parse_msg("t", "Stamped", "Header header\nuint32 seq2\n").unwrap();
        let mut b = SchemaBuilder::new(&catalog);
        // Header: seq u32 @0, stamp time @4, frame_id string @12 → 20 bytes.
        b.provide(
            "Header",
            TypeDesc::Struct(StructDesc {
                name: "std_msgs/Header".into(),
                size: 20,
                align: 4,
                fields: vec![
                    FieldDesc {
                        name: "seq".into(),
                        offset: 0,
                        ty: TypeDesc::Prim { size: 4, align: 4 },
                    },
                    FieldDesc {
                        name: "stamp".into(),
                        offset: 4,
                        ty: TypeDesc::Prim { size: 8, align: 4 },
                    },
                    FieldDesc {
                        name: "frame_id".into(),
                        offset: 12,
                        ty: TypeDesc::Str,
                    },
                ],
            }),
        );
        let schema = b.schema(&spec, 4096).unwrap();
        assert_eq!(schema.root.fields[0].offset, 0);
        assert_eq!(schema.root.fields[1].offset, 20);
        assert_eq!(schema.root.size, 24);
    }

    #[test]
    fn unresolved_named_type_errors() {
        let catalog = Catalog::new();
        let spec = parse_msg("t", "Bad", "Mystery m\n").unwrap();
        let err = schema_from_spec(&catalog, &spec, 64).unwrap_err();
        assert_eq!(
            err,
            SchemaError::Unresolved {
                name: "Mystery".into()
            }
        );
        assert!(err.to_string().contains("Mystery"));
    }

    #[test]
    fn cyclic_definitions_error_instead_of_looping() {
        let mut catalog = Catalog::new();
        catalog.add(parse_msg("t", "A", "B b\n").unwrap()).unwrap();
        catalog.add(parse_msg("t", "B", "A a\n").unwrap()).unwrap();
        let spec = catalog.specs()[0].clone();
        let err = schema_from_spec(&catalog, &spec, 64).unwrap_err();
        assert!(matches!(err, SchemaError::Cycle { .. }));
    }
}
