//! # rossf-idl — the SFM Generator (§4.3.1)
//!
//! The paper's SFM Generator is built on ROS `genmsg`: it consumes the ROS
//! `.msg` interface-definition language and emits message classes that
//! follow the SFM format. This crate is that generator for the Rust
//! reproduction:
//!
//! 1. [`parse_msg`] parses `.msg` text into a [`MessageSpec`];
//! 2. a [`Catalog`] resolves cross-message references
//!    (`Header`, `geometry_msgs/Point32`, …);
//! 3. [`generate`] emits Rust source declaring the plain struct, the SFM
//!    skeleton struct, and a `ros_message_impls!` invocation that produces
//!    the full trait stack.
//!
//! The generated code is real: `rossf-msg`'s build script runs this
//! generator over the `nav_msgs` definitions and compiles the output into
//! the crate (see `crates/msg/build.rs`), so every release exercises the
//! generator end-to-end.
//!
//! ```
//! use rossf_idl::{parse_msg, Catalog, GenConfig};
//!
//! let spec = parse_msg("demo_msgs", "Blip", "
//!     Header header
//!     float32 strength
//!     uint8[] samples
//! ").unwrap();
//! let mut catalog = Catalog::with_standard_messages();
//! catalog.add(spec).unwrap();
//! let code = catalog.generate_all(&GenConfig::default()).unwrap();
//! assert!(code.contains("pub struct Blip"));
//! assert!(code.contains("pub struct SfmBlip"));
//! assert!(code.contains("ros_message_impls!"));
//! ```

#![deny(missing_docs)]

mod codegen;
mod model;
mod parse;
mod schema;

pub use codegen::{generate, GenConfig};
pub use model::{Arity, Catalog, Constant, Field, FieldType, MessageSpec, ResolvedType};
pub use parse::{parse_msg, parse_srv, ParseError};
pub use schema::{schema_from_spec, SchemaBuilder, SchemaError};
