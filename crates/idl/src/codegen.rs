//! Rust code generation from parsed `.msg` specs.

use crate::model::{Arity, Catalog, Constant, Field, FieldType, MessageSpec};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Options controlling generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// `max_size` used for message types without an override — the IDL
    /// bound of §4.2.
    pub default_max_size: usize,
    /// Per-type overrides, keyed by full name (`pkg/Name`).
    pub max_size_overrides: BTreeMap<String, usize>,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            default_max_size: 1 << 20,
            max_size_overrides: BTreeMap::new(),
        }
    }
}

impl GenConfig {
    /// Set the `max_size` for one message type.
    pub fn with_max_size(mut self, full_name: &str, max: usize) -> Self {
        self.max_size_overrides.insert(full_name.to_string(), max);
        self
    }
}

/// The `ros_message_impls!` field kind for `field`, plus the plain and SFM
/// Rust types.
fn field_plan(field: &Field, catalog: &Catalog) -> Result<(&'static str, String, String), String> {
    let unsupported = |what: &str| {
        Err(format!(
            "unsupported construct in field `{}`: {what}",
            field.name
        ))
    };
    match (&field.arity, &field.ty) {
        (Arity::Scalar, FieldType::RosString) => Ok((
            "string",
            "String".to_string(),
            "::rossf_sfm::SfmString".to_string(),
        )),
        (Arity::Scalar, FieldType::Named(n)) => {
            let r = catalog
                .resolve(n)
                .ok_or_else(|| format!("unresolved message type `{n}`"))?;
            Ok(("nested", r.plain.clone(), r.sfm.clone()))
        }
        (Arity::Scalar, FieldType::Time | FieldType::Duration) => {
            let p = field.ty.rust_prim().expect("time types are primitive");
            Ok(("time", p.to_string(), p.to_string()))
        }
        (Arity::Scalar, ty) => {
            let p = ty.rust_prim().expect("remaining scalars are primitive");
            Ok(("prim", p.to_string(), p.to_string()))
        }
        (Arity::DynamicArray, FieldType::Bool | FieldType::UInt8) => Ok((
            "bytes",
            "Vec<u8>".to_string(),
            "::rossf_sfm::SfmVec<u8>".to_string(),
        )),
        (Arity::DynamicArray, FieldType::RosString) => Ok((
            "vecstr",
            "Vec<String>".to_string(),
            "::rossf_sfm::SfmVec<::rossf_sfm::SfmString>".to_string(),
        )),
        (Arity::DynamicArray, FieldType::Named(n)) => {
            let r = catalog
                .resolve(n)
                .ok_or_else(|| format!("unresolved message type `{n}`"))?;
            Ok((
                "vecmsg",
                format!("Vec<{}>", r.plain),
                format!("::rossf_sfm::SfmVec<{}>", r.sfm),
            ))
        }
        (Arity::DynamicArray, ty) => {
            let p = ty
                .rust_prim()
                .expect("remaining element types are primitive");
            Ok((
                "vec",
                format!("Vec<{p}>"),
                format!("::rossf_sfm::SfmVec<{p}>"),
            ))
        }
        (Arity::FixedArray(n), ty) => match ty.rust_prim() {
            Some(p) if !matches!(ty, FieldType::Time | FieldType::Duration) => {
                Ok(("arr", format!("[{p}; {n}]"), format!("[{p}; {n}]")))
            }
            _ => unsupported("fixed arrays of strings, times, or messages"),
        },
    }
}

fn constant_decl(c: &Constant) -> Result<String, String> {
    let (ty, value) = match &c.ty {
        FieldType::Bool => (
            "bool".to_string(),
            match c.value.as_str() {
                "True" | "true" | "1" => "true".to_string(),
                "False" | "false" | "0" => "false".to_string(),
                other => return Err(format!("bad bool constant `{other}`")),
            },
        ),
        FieldType::RosString => ("&'static str".to_string(), format!("{:?}", c.value)),
        ty => {
            let p = ty
                .rust_prim()
                .ok_or_else(|| format!("constant `{}` has non-primitive type", c.name))?;
            (p.to_string(), c.value.clone())
        }
    };
    Ok(format!("    pub const {}: {} = {};\n", c.name, ty, value))
}

fn doc_line(out: &mut String, indent: &str, text: &str) {
    let _ = writeln!(out, "{indent}/// {}", text.replace('\n', " "));
}

/// Generate the Rust source for one message: the plain struct, the SFM
/// skeleton, constants, and the `ros_message_impls!` invocation.
///
/// # Errors
///
/// A human-readable message naming the unresolved type or unsupported
/// construct.
pub fn generate(
    spec: &MessageSpec,
    catalog: &Catalog,
    config: &GenConfig,
) -> Result<String, String> {
    let full = spec.full_name();
    let max = config
        .max_size_overrides
        .get(&full)
        .copied()
        .unwrap_or(config.default_max_size);

    let plans: Vec<_> = spec
        .fields
        .iter()
        .map(|f| field_plan(f, catalog).map(|p| (f, p)))
        .collect::<Result<_, _>>()?;

    // `Default` cannot be derived when a fixed array exceeds 32 elements
    // (e.g. the 6x6 covariance of nav_msgs/Odometry); emit it by hand then.
    let needs_manual_default = spec
        .fields
        .iter()
        .any(|f| matches!(f.arity, Arity::FixedArray(n) if n > 32));

    let mut out = String::new();
    let _ = writeln!(
        out,
        "// Generated by rossf-idl from `{full}.msg` — do not edit."
    );
    let _ = writeln!(out);

    // Plain struct.
    doc_line(&mut out, "", &format!("`{full}` (generated)."));
    if needs_manual_default {
        let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq)]");
    } else {
        let _ = writeln!(out, "#[derive(Debug, Clone, PartialEq, Default)]");
    }
    let _ = writeln!(out, "pub struct {} {{", spec.name);
    for (f, (_, plain_ty, _)) in &plans {
        doc_line(
            &mut out,
            "    ",
            f.comment
                .as_deref()
                .unwrap_or(&format!("`{}` field.", f.name)),
        );
        let _ = writeln!(out, "    pub {}: {},", f.name, plain_ty);
    }
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);

    if needs_manual_default {
        let _ = writeln!(out, "impl Default for {} {{", spec.name);
        let _ = writeln!(out, "    fn default() -> Self {{");
        let _ = writeln!(out, "        {} {{", spec.name);
        for (f, _) in &plans {
            match f.arity {
                Arity::FixedArray(n) => {
                    let _ = writeln!(out, "            {}: [Default::default(); {}],", f.name, n);
                }
                _ => {
                    let _ = writeln!(out, "            {}: Default::default(),", f.name);
                }
            }
        }
        let _ = writeln!(out, "        }}");
        let _ = writeln!(out, "    }}");
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
    }

    // Constants.
    if !spec.constants.is_empty() {
        let _ = writeln!(out, "impl {} {{", spec.name);
        for c in &spec.constants {
            doc_line(&mut out, "    ", &format!("IDL constant `{}`.", c.name));
            out.push_str(&constant_decl(c)?);
        }
        let _ = writeln!(out, "}}");
        let _ = writeln!(out);
    }

    // SFM skeleton.
    doc_line(
        &mut out,
        "",
        &format!(
            "Serialization-free skeleton of [`{}`] (generated).",
            spec.name
        ),
    );
    let _ = writeln!(out, "#[repr(C)]");
    let _ = writeln!(out, "#[derive(Debug)]");
    let _ = writeln!(out, "pub struct Sfm{} {{", spec.name);
    for (f, (_, _, sfm_ty)) in &plans {
        doc_line(
            &mut out,
            "    ",
            f.comment
                .as_deref()
                .unwrap_or(&format!("`{}` field.", f.name)),
        );
        let _ = writeln!(out, "    pub {}: {},", f.name, sfm_ty);
    }
    let _ = writeln!(out, "}}");
    let _ = writeln!(out);

    // Trait stack.
    let _ = writeln!(out, "::rossf_msg::ros_message_impls! {{");
    let _ = writeln!(
        out,
        "    {} / Sfm{} : \"{}\", max_size = {},",
        spec.name, spec.name, full, max
    );
    let _ = writeln!(out, "    fields = {{");
    for (f, (kind, _, _)) in &plans {
        let _ = writeln!(out, "        {kind} {},", f.name);
    }
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "}}");

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_msg;

    fn image_spec() -> MessageSpec {
        parse_msg(
            "sensor_msgs",
            "Image",
            "Header header\nuint32 height\nuint32 width\nstring encoding\n\
             uint8 is_bigendian\nuint32 step\nuint8[] data\n",
        )
        .unwrap()
    }

    #[test]
    fn image_generation_matches_handwritten_structure() {
        let catalog = Catalog::with_standard_messages();
        let config = GenConfig::default().with_max_size("sensor_msgs/Image", 8 << 20);
        let code = generate(&image_spec(), &catalog, &config).unwrap();
        assert!(code.contains("pub struct Image {"));
        assert!(code.contains("pub struct SfmImage {"));
        assert!(code.contains("pub header: ::rossf_msg::std_msgs::Header,"));
        assert!(code.contains("pub header: ::rossf_msg::std_msgs::SfmHeader,"));
        assert!(code.contains("pub encoding: ::rossf_sfm::SfmString,"));
        assert!(code.contains("pub data: ::rossf_sfm::SfmVec<u8>,"));
        assert!(code.contains("max_size = 8388608"));
        assert!(code.contains("bytes data,"));
        assert!(code.contains("nested header,"));
        assert!(code.contains("string encoding,"));
    }

    #[test]
    fn kinds_cover_every_arity_type_combination() {
        let spec = parse_msg(
            "demo",
            "Kinds",
            "bool flag\nfloat64 value\ntime stamp\nduration span\nstring label\n\
             Header header\nuint8[] blob\nfloat32[] floats\nstring[] names\n\
             geometry_msgs/Point32[] points\nfloat64[9] matrix\n",
        )
        .unwrap();
        let catalog = Catalog::with_standard_messages();
        let code = generate(&spec, &catalog, &GenConfig::default()).unwrap();
        for needle in [
            "prim flag",
            "prim value",
            "time stamp",
            "time span",
            "string label",
            "nested header",
            "bytes blob",
            "vec floats",
            "vecstr names",
            "vecmsg points",
            "arr matrix",
        ] {
            assert!(code.contains(needle), "missing `{needle}` in:\n{code}");
        }
        assert!(code.contains("pub matrix: [f64; 9],"));
        assert!(code.contains("pub stamp: ::rossf_ros::time::RosTime,"));
        assert!(code.contains("pub span: ::rossf_ros::time::RosDuration,"));
        assert!(code.contains("pub names: ::rossf_sfm::SfmVec<::rossf_sfm::SfmString>,"));
    }

    #[test]
    fn constants_generated() {
        let spec = parse_msg(
            "sensor_msgs",
            "PointField",
            "uint8 INT8=1\nuint8 FLOAT32=7\nstring DEFAULT_NAME=xyz\nbool FLAG=True\nstring name\n",
        )
        .unwrap();
        let catalog = Catalog::with_standard_messages();
        let code = generate(&spec, &catalog, &GenConfig::default()).unwrap();
        assert!(code.contains("pub const INT8: u8 = 1;"));
        assert!(code.contains("pub const FLOAT32: u8 = 7;"));
        assert!(code.contains("pub const DEFAULT_NAME: &'static str = \"xyz\";"));
        assert!(code.contains("pub const FLAG: bool = true;"));
    }

    #[test]
    fn unresolved_type_is_an_error() {
        let spec = parse_msg("demo", "Bad", "mystery_msgs/Unknown field\n").unwrap();
        let catalog = Catalog::with_standard_messages();
        let err = generate(&spec, &catalog, &GenConfig::default()).unwrap_err();
        assert!(err.contains("mystery_msgs/Unknown"));
    }

    #[test]
    fn fixed_message_arrays_unsupported() {
        let spec = parse_msg("demo", "Bad", "Header[4] headers\n").unwrap();
        let catalog = Catalog::with_standard_messages();
        assert!(generate(&spec, &catalog, &GenConfig::default()).is_err());
    }

    #[test]
    fn catalog_generate_all_chains_local_types() {
        let mut catalog = Catalog::with_standard_messages();
        catalog
            .add(parse_msg("demo", "Inner", "float64 x\n").unwrap())
            .unwrap();
        catalog
            .add(parse_msg("demo", "Outer", "Inner inner\nInner[] more\n").unwrap())
            .unwrap();
        let code = catalog.generate_all(&GenConfig::default()).unwrap();
        assert!(code.contains("pub inner: Inner,"));
        assert!(code.contains("pub inner: SfmInner,"));
        assert!(code.contains("pub more: ::rossf_sfm::SfmVec<SfmInner>,"));
    }
}
