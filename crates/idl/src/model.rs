//! The data model of the ROS `.msg` IDL.

use std::collections::BTreeMap;
use std::fmt;

/// A field's base type in the ROS IDL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// `bool` (wire: one byte; SFM: `u8`).
    Bool,
    /// `int8` / the deprecated alias `byte`.
    Int8,
    /// `uint8` / the deprecated alias `char`.
    UInt8,
    /// `int16`.
    Int16,
    /// `uint16`.
    UInt16,
    /// `int32`.
    Int32,
    /// `uint32`.
    UInt32,
    /// `int64`.
    Int64,
    /// `uint64`.
    UInt64,
    /// `float32`.
    Float32,
    /// `float64`.
    Float64,
    /// `time` (u32 sec + u32 nsec).
    Time,
    /// `duration` (i32 sec + i32 nsec).
    Duration,
    /// `string`.
    RosString,
    /// A nested message, e.g. `Header` or `geometry_msgs/Point32`.
    Named(String),
}

impl FieldType {
    /// Parse an IDL base-type token.
    pub fn from_token(tok: &str) -> FieldType {
        match tok {
            "bool" => FieldType::Bool,
            "int8" | "byte" => FieldType::Int8,
            "uint8" | "char" => FieldType::UInt8,
            "int16" => FieldType::Int16,
            "uint16" => FieldType::UInt16,
            "int32" => FieldType::Int32,
            "uint32" => FieldType::UInt32,
            "int64" => FieldType::Int64,
            "uint64" => FieldType::UInt64,
            "float32" => FieldType::Float32,
            "float64" => FieldType::Float64,
            "time" => FieldType::Time,
            "duration" => FieldType::Duration,
            "string" => FieldType::RosString,
            other => FieldType::Named(other.to_string()),
        }
    }

    /// The Rust primitive spelled by this type, if it is a fixed-size
    /// primitive.
    pub fn rust_prim(&self) -> Option<&'static str> {
        Some(match self {
            FieldType::Bool | FieldType::UInt8 => "u8",
            FieldType::Int8 => "i8",
            FieldType::Int16 => "i16",
            FieldType::UInt16 => "u16",
            FieldType::Int32 => "i32",
            FieldType::UInt32 => "u32",
            FieldType::Int64 => "i64",
            FieldType::UInt64 => "u64",
            FieldType::Float32 => "f32",
            FieldType::Float64 => "f64",
            FieldType::Time => "::rossf_ros::time::RosTime",
            FieldType::Duration => "::rossf_ros::time::RosDuration",
            FieldType::RosString | FieldType::Named(_) => return None,
        })
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldType::Bool => "bool",
            FieldType::Int8 => "int8",
            FieldType::UInt8 => "uint8",
            FieldType::Int16 => "int16",
            FieldType::UInt16 => "uint16",
            FieldType::Int32 => "int32",
            FieldType::UInt32 => "uint32",
            FieldType::Int64 => "int64",
            FieldType::UInt64 => "uint64",
            FieldType::Float32 => "float32",
            FieldType::Float64 => "float64",
            FieldType::Time => "time",
            FieldType::Duration => "duration",
            FieldType::RosString => "string",
            FieldType::Named(n) => n,
        };
        f.write_str(s)
    }
}

/// Whether a field is a scalar, fixed array, or dynamic array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arity {
    /// `T name`.
    Scalar,
    /// `T[N] name`.
    FixedArray(usize),
    /// `T[] name`.
    DynamicArray,
}

/// One field of a message.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Base type.
    pub ty: FieldType,
    /// Scalar / fixed / dynamic.
    pub arity: Arity,
    /// Trailing `#` comment from the IDL, if any (becomes a doc comment).
    pub comment: Option<String>,
}

/// A `CONSTANT = value` line.
#[derive(Debug, Clone, PartialEq)]
pub struct Constant {
    /// Constant name (SCREAMING_SNAKE by ROS convention).
    pub name: String,
    /// Base type.
    pub ty: FieldType,
    /// Literal value text, verbatim from the IDL.
    pub value: String,
}

/// A parsed `.msg` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageSpec {
    /// Package, e.g. `sensor_msgs`.
    pub package: String,
    /// Message name, e.g. `Image`.
    pub name: String,
    /// Fields in declaration order (the order SFM skeletons must keep).
    pub fields: Vec<Field>,
    /// Constants.
    pub constants: Vec<Constant>,
}

impl MessageSpec {
    /// Full ROS type name, `package/Name`.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.package, self.name)
    }
}

/// How a named message type is spelled in generated Rust code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedType {
    /// Path of the plain struct, e.g. `::rossf_msg::std_msgs::Header`.
    pub plain: String,
    /// Path of the SFM skeleton, e.g. `::rossf_msg::std_msgs::SfmHeader`.
    pub sfm: String,
}

/// A set of message specs plus the resolution table mapping named types to
/// Rust paths. Generation happens per catalog so cross-references inside
/// one generated module resolve to the local structs.
#[derive(Debug, Default)]
pub struct Catalog {
    specs: Vec<MessageSpec>,
    resolutions: BTreeMap<String, ResolvedType>,
}

impl Catalog {
    /// Empty catalog with no standard-library resolutions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Catalog pre-populated with the message types shipped in `rossf-msg`,
    /// resolvable both bare (`Header`) and package-qualified
    /// (`std_msgs/Header`).
    pub fn with_standard_messages() -> Self {
        let mut c = Self::new();
        let std_types: [(&str, &str, &str); 14] = [
            ("std_msgs", "Header", "Header"),
            ("geometry_msgs", "Point", "Point"),
            ("geometry_msgs", "Point32", "Point32"),
            ("geometry_msgs", "Vector3", "Vector3"),
            ("geometry_msgs", "Quaternion", "Quaternion"),
            ("geometry_msgs", "Pose", "Pose"),
            ("geometry_msgs", "PoseStamped", "PoseStamped"),
            ("sensor_msgs", "Image", "Image"),
            ("sensor_msgs", "CompressedImage", "CompressedImage"),
            ("sensor_msgs", "ChannelFloat32", "ChannelFloat32"),
            ("sensor_msgs", "PointCloud", "PointCloud"),
            ("sensor_msgs", "PointField", "PointField"),
            ("sensor_msgs", "PointCloud2", "PointCloud2"),
            ("sensor_msgs", "RegionOfInterest", "RegionOfInterest"),
        ];
        for (pkg, name, rust) in std_types {
            let resolved = ResolvedType {
                plain: format!("::rossf_msg::{pkg}::{rust}"),
                sfm: format!("::rossf_msg::{pkg}::Sfm{rust}"),
            };
            c.resolutions
                .insert(format!("{pkg}/{name}"), resolved.clone());
            c.resolutions.insert(name.to_string(), resolved);
        }
        c
    }

    /// Register a spec. Its own name becomes resolvable (bare and
    /// qualified) so later specs in the same catalog can reference it.
    ///
    /// # Errors
    ///
    /// Returns the spec back if a different definition is already
    /// registered under the same full name.
    pub fn add(&mut self, spec: MessageSpec) -> Result<(), MessageSpec> {
        if self.specs.iter().any(|s| s.full_name() == spec.full_name()) {
            return Err(spec);
        }
        let resolved = ResolvedType {
            plain: spec.name.clone(),
            sfm: format!("Sfm{}", spec.name),
        };
        self.resolutions.insert(spec.full_name(), resolved.clone());
        self.resolutions.insert(spec.name.clone(), resolved);
        self.specs.push(spec);
        Ok(())
    }

    /// Resolve a named type to its Rust spellings.
    pub fn resolve(&self, name: &str) -> Option<&ResolvedType> {
        self.resolutions.get(name)
    }

    /// The registered specs, in insertion order.
    pub fn specs(&self) -> &[MessageSpec] {
        &self.specs
    }

    /// Generate Rust source for every registered spec, in order.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the unresolvable or unsupported
    /// construct, if any.
    pub fn generate_all(&self, config: &crate::GenConfig) -> Result<String, String> {
        let mut out = String::new();
        for spec in &self.specs {
            out.push_str(&crate::generate(spec, self, config)?);
            out.push('\n');
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_type_token_roundtrip() {
        for tok in [
            "bool", "int8", "uint8", "int16", "uint16", "int32", "uint32", "int64", "uint64",
            "float32", "float64", "time", "duration", "string",
        ] {
            let ty = FieldType::from_token(tok);
            assert_eq!(ty.to_string(), tok);
        }
        assert_eq!(
            FieldType::from_token("geometry_msgs/Point32"),
            FieldType::Named("geometry_msgs/Point32".into())
        );
        // Deprecated aliases map onto the modern types.
        assert_eq!(FieldType::from_token("byte"), FieldType::Int8);
        assert_eq!(FieldType::from_token("char"), FieldType::UInt8);
    }

    #[test]
    fn rust_prims() {
        assert_eq!(FieldType::UInt32.rust_prim(), Some("u32"));
        assert_eq!(FieldType::Bool.rust_prim(), Some("u8"));
        assert_eq!(FieldType::RosString.rust_prim(), None);
        assert_eq!(FieldType::Named("X".into()).rust_prim(), None);
    }

    #[test]
    fn standard_catalog_resolves_bare_and_qualified() {
        let c = Catalog::with_standard_messages();
        assert_eq!(
            c.resolve("Header").unwrap().sfm,
            "::rossf_msg::std_msgs::SfmHeader"
        );
        assert_eq!(
            c.resolve("std_msgs/Header").unwrap().plain,
            "::rossf_msg::std_msgs::Header"
        );
        assert!(c.resolve("nonexistent/Type").is_none());
    }

    #[test]
    fn add_registers_local_resolution_and_rejects_duplicates() {
        let mut c = Catalog::new();
        let spec = MessageSpec {
            package: "p".into(),
            name: "M".into(),
            fields: vec![],
            constants: vec![],
        };
        c.add(spec.clone()).unwrap();
        assert_eq!(c.resolve("M").unwrap().sfm, "SfmM");
        assert_eq!(c.resolve("p/M").unwrap().plain, "M");
        assert!(c.add(spec).is_err());
        assert_eq!(c.specs().len(), 1);
    }
}
