//! Parser for the ROS `.msg` interface-definition language.
//!
//! The grammar is line-oriented:
//!
//! ```text
//! # comment
//! type name            # field, optional trailing comment
//! type[] name          # dynamic array
//! type[N] name         # fixed array
//! TYPE NAME=VALUE      # constant
//! ```

use crate::model::{Arity, Constant, Field, FieldType, MessageSpec};
use core::fmt;

/// Error produced while parsing `.msg` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn valid_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_type_token(s: &str) -> bool {
    match s.split_once('/') {
        Some((pkg, name)) => valid_ident(pkg) && valid_ident(name),
        None => valid_ident(s),
    }
}

/// Parse one `.msg` definition.
///
/// # Errors
///
/// [`ParseError`] with the offending line on malformed input.
pub fn parse_msg(package: &str, name: &str, text: &str) -> Result<MessageSpec, ParseError> {
    let mut fields = Vec::new();
    let mut constants = Vec::new();

    for (idx, raw_line) in text.lines().enumerate() {
        let lineno = idx + 1;
        // Split a trailing comment; '#' inside a constant's string value is
        // out of scope (ROS itself is ambiguous there).
        let (content, comment) = match raw_line.split_once('#') {
            Some((c, com)) => (c, Some(com.trim().to_string()).filter(|s| !s.is_empty())),
            None => (raw_line, None),
        };
        let content = content.trim();
        if content.is_empty() {
            continue;
        }

        let (type_tok, rest) = content
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(lineno, format!("expected `type name`, got `{content}`")))?;
        let rest = rest.trim();

        // Constant: `TYPE NAME=VALUE` (with optional spaces around '=').
        if let Some((cname, value)) = rest.split_once('=') {
            let cname = cname.trim();
            let value = value.trim();
            if !valid_ident(cname) {
                return Err(err(lineno, format!("invalid constant name `{cname}`")));
            }
            let ty = FieldType::from_token(type_tok);
            if matches!(ty, FieldType::Named(_)) {
                return Err(err(lineno, "constants must have primitive types"));
            }
            constants.push(Constant {
                name: cname.to_string(),
                ty,
                value: value.to_string(),
            });
            continue;
        }

        // Field: `type[arity] name`.
        let (base_tok, arity) = if let Some(open) = type_tok.find('[') {
            let close = type_tok
                .rfind(']')
                .ok_or_else(|| err(lineno, "unterminated `[`"))?;
            if close != type_tok.len() - 1 || close < open {
                return Err(err(
                    lineno,
                    format!("malformed array suffix in `{type_tok}`"),
                ));
            }
            let inner = &type_tok[open + 1..close];
            let arity = if inner.is_empty() {
                Arity::DynamicArray
            } else {
                let n: usize = inner
                    .parse()
                    .map_err(|_| err(lineno, format!("bad array length `{inner}`")))?;
                if n == 0 {
                    return Err(err(lineno, "fixed arrays must be non-empty"));
                }
                Arity::FixedArray(n)
            };
            (&type_tok[..open], arity)
        } else {
            (type_tok, Arity::Scalar)
        };

        if !valid_type_token(base_tok) {
            return Err(err(lineno, format!("invalid type `{base_tok}`")));
        }
        let fname = rest;
        if !valid_ident(fname) {
            return Err(err(lineno, format!("invalid field name `{fname}`")));
        }
        if fields.iter().any(|f: &Field| f.name == fname) {
            return Err(err(lineno, format!("duplicate field `{fname}`")));
        }
        fields.push(Field {
            name: fname.to_string(),
            ty: FieldType::from_token(base_tok),
            arity,
            comment,
        });
    }

    Ok(MessageSpec {
        package: package.to_string(),
        name: name.to_string(),
        fields,
        constants,
    })
}

/// Parse a `.srv` service definition: request fields, a `---` separator
/// line, response fields. Returns `(<Name>Request, <Name>Response)` specs
/// (the ROS convention for generated service types).
///
/// # Errors
///
/// [`ParseError`] on malformed field lines or a missing separator.
pub fn parse_srv(
    package: &str,
    name: &str,
    text: &str,
) -> Result<(MessageSpec, MessageSpec), ParseError> {
    let mut parts = text.splitn(2, "\n---");
    let req_text = parts.next().unwrap_or_default();
    let Some(res_text) = parts.next() else {
        // A separator on the very first line means an empty request.
        if let Some(rest) = text.strip_prefix("---") {
            let req = parse_msg(package, &format!("{name}Request"), "")?;
            let res = parse_msg(package, &format!("{name}Response"), rest)?;
            return Ok((req, res));
        }
        return Err(err(1, "missing `---` request/response separator"));
    };
    // Drop the remainder of the separator line itself.
    let res_text = res_text.split_once('\n').map_or("", |(_, rest)| rest);
    let req = parse_msg(package, &format!("{name}Request"), req_text)?;
    let res = parse_msg(package, &format!("{name}Response"), res_text)?;
    Ok((req, res))
}

#[cfg(test)]
mod tests {
    use super::*;

    const IMAGE_MSG: &str = "
# This message contains an uncompressed image
Header header        # Header timestamp should be acquisition time of image
uint32 height        # image height, that is, number of rows
uint32 width         # image width, that is, number of columns
string encoding      # Encoding of pixels
uint8 is_bigendian   # is this data bigendian?
uint32 step          # Full row length in bytes
uint8[] data         # actual matrix data, size is (step * rows)
";

    #[test]
    fn parses_the_real_image_definition() {
        let spec = parse_msg("sensor_msgs", "Image", IMAGE_MSG).unwrap();
        assert_eq!(spec.full_name(), "sensor_msgs/Image");
        assert_eq!(spec.fields.len(), 7);
        assert_eq!(spec.fields[0].ty, FieldType::Named("Header".into()));
        assert_eq!(spec.fields[3].name, "encoding");
        assert_eq!(spec.fields[3].ty, FieldType::RosString);
        assert_eq!(spec.fields[6].arity, Arity::DynamicArray);
        assert_eq!(spec.fields[6].ty, FieldType::UInt8);
        assert!(spec.fields[0]
            .comment
            .as_deref()
            .unwrap()
            .contains("acquisition time"));
    }

    #[test]
    fn parses_fixed_arrays_and_qualified_types() {
        let spec = parse_msg(
            "sensor_msgs",
            "CameraInfo",
            "float64[9] K\ngeometry_msgs/Point32[] pts\n",
        )
        .unwrap();
        assert_eq!(spec.fields[0].arity, Arity::FixedArray(9));
        assert_eq!(
            spec.fields[1].ty,
            FieldType::Named("geometry_msgs/Point32".into())
        );
    }

    #[test]
    fn parses_constants() {
        let spec = parse_msg(
            "sensor_msgs",
            "PointField",
            "uint8 INT8=1\nuint8 FLOAT32 = 7\nstring name\n",
        )
        .unwrap();
        assert_eq!(spec.constants.len(), 2);
        assert_eq!(spec.constants[0].name, "INT8");
        assert_eq!(spec.constants[1].value, "7");
        assert_eq!(spec.fields.len(), 1);
    }

    #[test]
    fn comment_only_and_blank_lines_skipped() {
        let spec = parse_msg("p", "M", "\n  # nothing here\n\n").unwrap();
        assert!(spec.fields.is_empty());
        assert!(spec.constants.is_empty());
    }

    #[test]
    fn rejects_malformed_lines() {
        for (text, needle) in [
            ("justoneword", "expected"),
            ("uint32[ x", "unterminated"),
            ("uint32[-1] x", "bad array length"),
            ("uint32[0] x", "non-empty"),
            ("uint32 9bad", "invalid field name"),
            ("bad-type x", "invalid type"),
            ("uint32 x\nuint32 x", "duplicate"),
            ("Header C=1", "primitive"),
        ] {
            let e = parse_msg("p", "M", text).unwrap_err();
            assert!(e.message.contains(needle), "for {text:?}: got {e}");
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn line_numbers_are_accurate() {
        let e = parse_msg("p", "M", "uint32 ok\n\nbroken").unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn srv_splits_request_and_response() {
        let (req, res) = parse_srv(
            "rospy_tutorials",
            "AddTwoInts",
            "int64 a\nint64 b\n---\nint64 sum\n",
        )
        .unwrap();
        assert_eq!(req.name, "AddTwoIntsRequest");
        assert_eq!(req.fields.len(), 2);
        assert_eq!(res.name, "AddTwoIntsResponse");
        assert_eq!(res.fields[0].name, "sum");
        assert_eq!(req.full_name(), "rospy_tutorials/AddTwoIntsRequest");
    }

    #[test]
    fn srv_with_empty_request_or_response() {
        let (req, res) =
            parse_srv("std_srvs", "Trigger", "---\nbool success\nstring message\n").unwrap();
        assert!(req.fields.is_empty());
        assert_eq!(res.fields.len(), 2);

        let (req, res) = parse_srv("std_srvs", "Empty", "---\n").unwrap();
        assert!(req.fields.is_empty());
        assert!(res.fields.is_empty());
    }

    #[test]
    fn srv_without_separator_is_an_error() {
        let e = parse_srv("p", "S", "int64 a\n").unwrap_err();
        assert!(e.message.contains("---"));
    }
}
