//! # rossf-trace — end-to-end message tracing and stage-latency attribution
//!
//! The paper's evaluation (Figs. 13–16) decomposes middleware cost into
//! serialization, transmission, and notification; this crate gives the
//! reproduction the same decomposition at runtime. Every traced message
//! carries a process-unique **trace id** and the transport records a
//! monotonic timestamp pair (start, end) at each pipeline stage it crosses:
//!
//! | stage           | span measured                                        |
//! |-----------------|------------------------------------------------------|
//! | `alloc`         | buffer allocation + field construction, up to publish|
//! | `encode`        | `publish` entry → encoded frame ready                |
//! | `enqueue`       | deposited in a transmission queue → taken out        |
//! | `wire_write`    | socket write duration (incl. link shaping)           |
//! | `wire_read`     | write complete → payload fully read at the peer      |
//! | `verify`        | structural verification (`validate_on_receive`)      |
//! | `adopt`         | frame → callback argument (adoption / decode)        |
//! | `callback`      | `callback_enter` → `callback_exit`                   |
//!
//! Spans are aggregated into fixed **log2-bucket histograms** per
//! topic × stage × tier (TCP / same-machine fast path / in-process local
//! bus) and appended to a bounded **ring-buffer event recorder** holding the
//! raw timeline — netsim fault events are tagged into the same stream, so a
//! delayed frame and its inflated `wire_write` show up side by side.
//!
//! The trace id travels two ways:
//!
//! * **fast path / local bus** — directly on the `Arc`'d frame (the frame
//!   object reaches the subscriber pointer-identical, tag included);
//! * **TCP** — the wire format is untouched; instead a [`Sidecar`] map keyed
//!   by (connection key, frame sequence number) correlates the writer's
//!   frames with the reader's. Both ends derive the same connection key from
//!   the socket address pair, and TCP's ordered reliable delivery makes the
//!   per-connection frame sequence numbers agree.
//!
//! The whole layer is disabled by default: endpoints opt in via
//! `PublisherOptions`/`SubscriberOptions` (crate `rossf-ros`), and every
//! instrumentation site is gated so an untraced run performs **zero
//! histogram writes** (asserted by the overhead smoke test).

#![deny(missing_docs)]

mod clock;
mod hist;
mod ring;
mod selftest;
mod sidecar;
mod stage;
mod waterfall;

pub use clock::now_nanos;
pub use hist::{bucket_floor, bucket_index, HistSnapshot, StageHist, BUCKETS};
pub use ring::{EventRing, TraceEvent, DEFAULT_RING_CAPACITY};
pub use selftest::self_test;
pub use sidecar::{conn_key, Sidecar, SidecarEntry, SIDECAR_CAPACITY};
pub use stage::{Stage, Tier, STAGE_COUNT, TIER_COUNT};
pub use waterfall::{check_monotone, render_waterfall, StageCell, TopicSnapshot};

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-topic histogram table: one [`StageHist`] per stage × tier.
///
/// Obtained from [`Tracer::topic`] and cached by each traced endpoint so the
/// hot path is an `Arc` deref plus relaxed atomic adds — no lock, no lookup.
pub struct TopicTrace {
    topic: Arc<str>,
    hists: Vec<StageHist>, // STAGE_COUNT * TIER_COUNT, row-major by stage
}

impl TopicTrace {
    fn new(topic: &str) -> Self {
        TopicTrace {
            topic: Arc::from(topic),
            hists: (0..STAGE_COUNT * TIER_COUNT)
                .map(|_| StageHist::new())
                .collect(),
        }
    }

    /// Topic name this table aggregates.
    pub fn topic(&self) -> &str {
        &self.topic
    }

    /// The histogram for one (stage, tier) cell.
    pub fn hist(&self, stage: Stage, tier: Tier) -> &StageHist {
        &self.hists[stage.index() * TIER_COUNT + tier.index()]
    }

    /// Snapshot every non-empty (stage, tier) cell.
    pub fn snapshot(&self) -> TopicSnapshot {
        let mut cells = Vec::new();
        for stage in Stage::ALL {
            for tier in Tier::ALL {
                let h = self.hist(stage, tier).snapshot();
                if h.count > 0 {
                    cells.push(StageCell {
                        stage,
                        tier,
                        hist: h,
                    });
                }
            }
        }
        TopicSnapshot {
            topic: self.topic.to_string(),
            cells,
        }
    }
}

impl std::fmt::Debug for TopicTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopicTrace")
            .field("topic", &self.topic)
            .finish()
    }
}

/// The process-wide trace collector: topic tables, the raw event ring, the
/// TCP correlation sidecar, and the trace-id allocator.
pub struct Tracer {
    /// Armed when any endpoint enables tracing; sites that cannot see an
    /// endpoint flag (e.g. buffer allocation in `rossf-sfm`) consult this.
    armed: AtomicBool,
    topics: Mutex<HashMap<String, Arc<TopicTrace>>>,
    ring: EventRing,
    sidecar: Sidecar,
    next_id: AtomicU64,
    /// Total histogram samples recorded since process start (or the last
    /// [`Tracer::reset`]); the disabled-overhead smoke test asserts this
    /// stays flat across an untraced run.
    hist_writes: AtomicU64,
}

impl Tracer {
    fn new() -> Self {
        Tracer {
            armed: AtomicBool::new(false),
            topics: Mutex::new(HashMap::new()),
            ring: EventRing::new(DEFAULT_RING_CAPACITY),
            sidecar: Sidecar::new(SIDECAR_CAPACITY),
            next_id: AtomicU64::new(1),
            hist_writes: AtomicU64::new(0),
        }
    }

    /// Arm the collector (idempotent). Called when an endpoint with tracing
    /// enabled is created.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Disarm the collector. Existing endpoints that hold a [`TopicTrace`]
    /// keep recording; this only stops ambient sites (allocation stamping,
    /// fault tagging).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// `true` once any traced endpoint exists.
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Drop all recorded data (topic tables, ring, sidecar). The armed flag
    /// and the trace-id allocator are left alone, so endpoints created
    /// before the reset keep working — they just start writing into fresh
    /// tables. Benchmark cells call this between traced runs.
    pub fn reset(&self) {
        self.topics.lock().clear();
        self.ring.clear();
        self.sidecar.clear();
        self.hist_writes.store(0, Ordering::Relaxed);
    }

    /// The histogram table for `topic`, created on first use. Both ends of
    /// a traced topic share one instance.
    pub fn topic(&self, topic: &str) -> Arc<TopicTrace> {
        Arc::clone(
            self.topics
                .lock()
                .entry(topic.to_string())
                .or_insert_with(|| Arc::new(TopicTrace::new(topic))),
        )
    }

    /// Allocate a fresh nonzero trace id.
    pub fn next_trace_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Record one completed stage span: histogram sample plus a raw event
    /// at the span's end timestamp.
    pub fn span(
        &self,
        table: &TopicTrace,
        stage: Stage,
        tier: Tier,
        trace_id: u64,
        start_ns: u64,
        end_ns: u64,
    ) {
        let dur = end_ns.saturating_sub(start_ns);
        table.hist(stage, tier).record(dur);
        self.hist_writes.fetch_add(1, Ordering::Relaxed);
        self.ring.push(TraceEvent {
            ts_ns: end_ns,
            trace_id,
            topic: Arc::clone(&table.topic),
            stage,
            tier,
            dur_ns: dur,
        });
    }

    /// Tag a netsim fault into the event stream (trace id 0: faults hit a
    /// link, not one message). `label` names the link, `dur_ns` is the
    /// injected delay (0 for drop/sever).
    pub fn fault_event(&self, label: &str, tier: Tier, dur_ns: u64) {
        self.ring.push(TraceEvent {
            ts_ns: now_nanos(),
            trace_id: 0,
            topic: Arc::from(label),
            stage: Stage::Fault,
            tier,
            dur_ns,
        });
    }

    /// Copy of the raw event timeline, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring.drain_copy()
    }

    /// Snapshot every topic table, sorted by topic name.
    pub fn snapshot(&self) -> Vec<TopicSnapshot> {
        let mut all: Vec<TopicSnapshot> =
            self.topics.lock().values().map(|t| t.snapshot()).collect();
        all.sort_by(|a, b| a.topic.cmp(&b.topic));
        all
    }

    /// Snapshot one topic's table, if it exists.
    pub fn topic_snapshot(&self, topic: &str) -> Option<TopicSnapshot> {
        self.topics.lock().get(topic).map(|t| t.snapshot())
    }

    /// Total histogram samples recorded since start / last reset.
    pub fn hist_writes(&self) -> u64 {
        self.hist_writes.load(Ordering::Relaxed)
    }

    /// The TCP frame-correlation sidecar.
    pub fn sidecar(&self) -> &Sidecar {
        &self.sidecar
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("armed", &self.armed())
            .field("topics", &self.topics.lock().len())
            .field("hist_writes", &self.hist_writes())
            .finish()
    }
}

/// The process-global tracer every instrumentation site reports into.
pub fn tracer() -> &'static Tracer {
    static TRACER: OnceLock<Tracer> = OnceLock::new();
    TRACER.get_or_init(Tracer::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_tables_are_shared_and_record() {
        let t = Tracer::new();
        let a = t.topic("camera/image");
        let b = t.topic("camera/image");
        assert!(Arc::ptr_eq(&a, &b));
        t.span(&a, Stage::Encode, Tier::Tcp, 7, 100, 350);
        let snap = b.hist(Stage::Encode, Tier::Tcp).snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum_ns, 250);
        assert_eq!(t.hist_writes(), 1);
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace_id, 7);
        assert_eq!(events[0].dur_ns, 250);
    }

    #[test]
    fn reset_clears_data_but_not_ids() {
        let t = Tracer::new();
        let id1 = t.next_trace_id();
        let table = t.topic("x");
        t.span(&table, Stage::Adopt, Tier::Local, id1, 0, 5);
        t.fault_event("a->b", Tier::Tcp, 0);
        t.reset();
        assert_eq!(t.hist_writes(), 0);
        assert!(t.events().is_empty());
        assert!(t.snapshot().is_empty());
        assert!(t.next_trace_id() > id1, "id allocator survives reset");
    }

    #[test]
    fn arm_is_idempotent_and_reversible() {
        let t = Tracer::new();
        assert!(!t.armed());
        t.arm();
        t.arm();
        assert!(t.armed());
        t.disarm();
        assert!(!t.armed());
    }

    #[test]
    fn snapshot_sorted_and_filtered_to_nonempty() {
        let t = Tracer::new();
        let b = t.topic("beta");
        let a = t.topic("alpha");
        t.span(&b, Stage::Callback, Tier::Fastpath, 1, 0, 10);
        t.span(&a, Stage::Callback, Tier::Fastpath, 2, 0, 10);
        let snaps = t.snapshot();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].topic, "alpha");
        assert_eq!(snaps[1].topic, "beta");
        assert_eq!(snaps[0].cells.len(), 1, "empty cells omitted");
        assert!(t.topic_snapshot("beta").is_some());
        assert!(t.topic_snapshot("missing").is_none());
    }

    #[test]
    fn global_tracer_is_a_singleton() {
        let a = tracer() as *const Tracer;
        let b = tracer() as *const Tracer;
        assert_eq!(a, b);
    }
}
