//! Fixed log2-bucket latency histograms.
//!
//! Bucket `i` holds durations in `[2^i, 2^(i+1))` nanoseconds (bucket 0
//! additionally holds 0). 64 buckets cover every representable `u64`
//! duration, so recording never saturates or clips — the paper's spans from
//! sub-microsecond pointer handoffs to multi-second shaped transfers all
//! land in range. Quantiles are estimated by linear interpolation inside
//! the selected bucket; the exact `sum`/`count` pair gives an exact mean,
//! which is what waterfall stage sums use.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of histogram buckets (one per power of two of a `u64`).
pub const BUCKETS: usize = 64;

/// The bucket a duration of `ns` nanoseconds falls into.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        63 - ns.leading_zeros() as usize
    }
}

/// Smallest duration bucket `i` can hold (its left edge).
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// One (topic, stage, tier) cell: lock-free log2 buckets plus exact
/// sum/count/min/max. All writes are relaxed atomics — cheap enough to
/// leave in the hot path of a traced run.
pub struct StageHist {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl StageHist {
    /// An empty histogram.
    pub fn new() -> Self {
        StageHist {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one duration sample.
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Plain-value copy at one instant.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: self.min_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

impl Default for StageHist {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for StageHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageHist")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum_ns", &self.sum_ns.load(Ordering::Relaxed))
            .finish()
    }
}

/// Plain-value copy of a [`StageHist`].
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (`buckets[i]` covers `[2^i, 2^(i+1))` ns).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples, nanoseconds.
    pub sum_ns: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min_ns: u64,
    /// Largest sample.
    pub max_ns: u64,
}

impl HistSnapshot {
    /// `true` when no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean, nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Quantile estimate (`q` in `[0, 1]`) by linear interpolation inside
    /// the selected log2 bucket, clamped to the observed min/max so narrow
    /// distributions aren't inflated by the factor-2 bucket width.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < seen + c {
                // Position inside this bucket, interpolated linearly.
                let lo = bucket_floor(i) as f64;
                let hi = if i + 1 < BUCKETS {
                    bucket_floor(i + 1) as f64
                } else {
                    u64::MAX as f64
                };
                let frac = (rank - seen) as f64 / c as f64;
                let est = lo + (hi - lo) * frac;
                return est.clamp(self.min_ns as f64, self.max_ns as f64);
            }
            seen += c;
        }
        self.max_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // The satellite-mandated boundary check: values on and around every
        // power-of-two edge land in the expected bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        for i in 1..BUCKETS {
            let edge = 1u64 << i;
            assert_eq!(bucket_index(edge), i, "left edge of bucket {i}");
            assert_eq!(bucket_index(edge - 1), i - 1, "just below bucket {i}");
            if i < 63 {
                assert_eq!(bucket_index(2 * edge - 1), i, "right edge of bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 63);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(10), 1024);
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let h = StageHist::new();
        for v in [5u64, 100, 1, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum_ns, 1_000_106);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 1_000_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4);
        assert_eq!(s.buckets[bucket_index(5)], 1);
        assert_eq!(s.buckets[bucket_index(1_000_000)], 1);
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = StageHist::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.mean_ns(), 0.0);
        assert_eq!(s.quantile_ns(0.5), 0.0);
    }

    #[test]
    fn quantiles_clamped_to_observed_range() {
        let h = StageHist::new();
        // 100 identical samples: every quantile must be exactly the sample.
        for _ in 0..100 {
            h.record(1500);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_ns(0.0), 1500.0);
        assert_eq!(s.quantile_ns(0.5), 1500.0);
        assert_eq!(s.quantile_ns(1.0), 1500.0);
        assert_eq!(s.mean_ns(), 1500.0);
    }

    #[test]
    fn quantiles_order_across_buckets() {
        let h = StageHist::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile_ns(0.5);
        let p99 = s.quantile_ns(0.99);
        assert!(p50 < p99, "p50={p50} p99={p99}");
        assert!(p50 <= 256.0, "median sits in the low cluster: {p50}");
        assert!(p99 >= 65_536.0, "p99 reaches the high cluster: {p99}");
    }
}
