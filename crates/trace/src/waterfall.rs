//! Snapshot types, the waterfall renderer, and the timeline checker.

use crate::hist::HistSnapshot;
use crate::ring::TraceEvent;
use crate::stage::{Stage, Tier};
use std::collections::HashMap;
use std::fmt::Write;

/// One non-empty (stage, tier) histogram cell of a topic.
#[derive(Debug, Clone)]
pub struct StageCell {
    /// Pipeline stage.
    pub stage: Stage,
    /// Transport tier.
    pub tier: Tier,
    /// The cell's histogram.
    pub hist: HistSnapshot,
}

/// All recorded cells of one topic, in stage order.
#[derive(Debug, Clone)]
pub struct TopicSnapshot {
    /// Topic name.
    pub topic: String,
    /// Non-empty cells, ordered by (stage, tier).
    pub cells: Vec<StageCell>,
}

impl TopicSnapshot {
    /// Sum of the per-stage *means* over pipeline stages, nanoseconds —
    /// the telescoping estimate of this hop's end-to-end cost. `Fault`
    /// cells and (optionally) the callback stage are excluded: a relay
    /// hop's callback contains the next hop's publish work, which the next
    /// topic's own stages already account for.
    pub fn stage_sum_ns(&self, include_callback: bool) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.stage != Stage::Fault)
            .filter(|c| include_callback || c.stage != Stage::Callback)
            .map(|c| c.hist.mean_ns())
            .sum()
    }
}

fn fmt_us(ns: f64) -> String {
    format!("{:10.2}", ns / 1_000.0)
}

/// Render topic snapshots as aligned per-stage waterfall tables
/// (durations in microseconds) — the `sfm_trace` CLI's human output.
pub fn render_waterfall(snapshots: &[TopicSnapshot]) -> String {
    let mut out = String::new();
    for snap in snapshots {
        if snap.cells.is_empty() {
            continue;
        }
        let _ = writeln!(out, "topic {}", snap.topic);
        let _ = writeln!(
            out,
            "  {:<12} {:<9} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "stage", "tier", "count", "mean_us", "p50_us", "p99_us", "max_us"
        );
        for cell in &snap.cells {
            let h = &cell.hist;
            let _ = writeln!(
                out,
                "  {:<12} {:<9} {:>8} {} {} {} {}",
                cell.stage.name(),
                cell.tier.name(),
                h.count,
                fmt_us(h.mean_ns()),
                fmt_us(h.quantile_ns(0.5)),
                fmt_us(h.quantile_ns(0.99)),
                fmt_us(h.max_ns as f64),
            );
        }
        let _ = writeln!(
            out,
            "  {:<12} {:<9} {:>8} {}",
            "sum(stages)",
            "",
            "",
            fmt_us(snap.stage_sum_ns(true))
        );
    }
    out
}

/// Verify the raw timeline is causally consistent: for every trace id, the
/// recorded span ends must be non-decreasing in time *and* strictly
/// increasing in pipeline-stage order (a message cannot be adopted before
/// it was enqueued). Fault events (trace id 0) are exempt.
///
/// # Errors
///
/// A human-readable description of the first violation found.
pub fn check_monotone(events: &[TraceEvent]) -> Result<(), String> {
    let mut last: HashMap<u64, (u64, Stage)> = HashMap::new();
    for e in events {
        if e.trace_id == 0 {
            continue;
        }
        if let Some(&(prev_ts, prev_stage)) = last.get(&e.trace_id) {
            if e.ts_ns < prev_ts {
                return Err(format!(
                    "trace {} went back in time: {} at {} ns after {} at {} ns",
                    e.trace_id,
                    e.stage.name(),
                    e.ts_ns,
                    prev_stage.name(),
                    prev_ts
                ));
            }
            if e.stage <= prev_stage {
                return Err(format!(
                    "trace {} stage order violated: {} recorded after {}",
                    e.trace_id,
                    e.stage.name(),
                    prev_stage.name()
                ));
            }
        }
        last.insert(e.trace_id, (e.ts_ns, e.stage));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::StageHist;
    use std::sync::Arc;

    fn cell(stage: Stage, tier: Tier, samples: &[u64]) -> StageCell {
        let h = StageHist::new();
        for &s in samples {
            h.record(s);
        }
        StageCell {
            stage,
            tier,
            hist: h.snapshot(),
        }
    }

    #[test]
    fn stage_sum_excludes_fault_and_optionally_callback() {
        let snap = TopicSnapshot {
            topic: "t".into(),
            cells: vec![
                cell(Stage::Encode, Tier::Local, &[100]),
                cell(Stage::Adopt, Tier::Local, &[200]),
                cell(Stage::Callback, Tier::Local, &[300]),
                cell(Stage::Fault, Tier::Local, &[1_000_000]),
            ],
        };
        assert_eq!(snap.stage_sum_ns(true), 600.0);
        assert_eq!(snap.stage_sum_ns(false), 300.0);
    }

    #[test]
    fn waterfall_renders_all_cells() {
        let snap = TopicSnapshot {
            topic: "cam/img".into(),
            cells: vec![
                cell(Stage::Encode, Tier::Fastpath, &[1_000, 2_000]),
                cell(Stage::Callback, Tier::Fastpath, &[500]),
            ],
        };
        let text = render_waterfall(&[snap]);
        assert!(text.contains("topic cam/img"));
        assert!(text.contains("encode"));
        assert!(text.contains("fastpath"));
        assert!(text.contains("callback"));
        assert!(text.contains("sum(stages)"));
        // Empty snapshots render nothing.
        assert!(render_waterfall(&[TopicSnapshot {
            topic: "x".into(),
            cells: vec![]
        }])
        .is_empty());
    }

    fn ev(id: u64, ts: u64, stage: Stage) -> TraceEvent {
        TraceEvent {
            ts_ns: ts,
            trace_id: id,
            topic: Arc::from("t"),
            stage,
            tier: Tier::Tcp,
            dur_ns: 0,
        }
    }

    #[test]
    fn monotone_accepts_ordered_timelines() {
        let events = vec![
            ev(1, 10, Stage::Encode),
            ev(2, 12, Stage::Encode),
            ev(1, 20, Stage::Enqueue),
            ev(0, 5, Stage::Fault), // faults exempt
            ev(1, 30, Stage::Callback),
            ev(2, 35, Stage::Adopt),
        ];
        check_monotone(&events).unwrap();
    }

    #[test]
    fn monotone_rejects_time_and_stage_violations() {
        let back_in_time = vec![ev(1, 20, Stage::Encode), ev(1, 10, Stage::Adopt)];
        assert!(check_monotone(&back_in_time)
            .unwrap_err()
            .contains("back in time"));
        let stage_order = vec![ev(1, 10, Stage::Adopt), ev(1, 20, Stage::Encode)];
        assert!(check_monotone(&stage_order)
            .unwrap_err()
            .contains("stage order"));
    }
}
