//! TCP trace-id correlation without touching the wire format.
//!
//! A serialization-free frame on the wire is the message's bytes, verbatim
//! — adding a trace header would break the format's core claim. Instead,
//! both ends of a TCP connection live in this process, so the writer leaves
//! a note in a shared map: *frame `seq` of connection `key` carries trace
//! id `id` and finished writing at `sent_ns`*. The reader, which counts the
//! frames it pulls off the same ordered byte stream, looks the note up by
//! the identical `(key, seq)` and recovers both the id and the `wire_read`
//! span start.
//!
//! The connection key is derived from the socket address pair — the writer
//! hashes `(local, peer)`, the reader `(peer, local)`, which are the same
//! two addresses in the same order. A reconnect allocates a fresh ephemeral
//! port, hence a fresh key and fresh sequence numbers: trace ids survive
//! reconnects without any reset handshake.
//!
//! The map is bounded: entries for frames the reader never consumes (frames
//! in flight when a connection dies, untraced readers) are evicted FIFO.

use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};

/// Maximum entries the sidecar retains before FIFO eviction.
pub const SIDECAR_CAPACITY: usize = 8_192;

/// Derive the shared connection key from the socket address pair. The
/// writer passes `(its local addr, its peer addr)`; the reader passes
/// `(its peer addr, its local addr)` — the same pair, so the keys agree.
pub fn conn_key(publisher_addr: &str, subscriber_addr: &str) -> u64 {
    let mut h = DefaultHasher::new();
    publisher_addr.hash(&mut h);
    subscriber_addr.hash(&mut h);
    h.finish()
}

/// One writer-side note about a frame in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SidecarEntry {
    /// The frame's trace id.
    pub trace_id: u64,
    /// When the socket write completed (provisionally: when it started,
    /// until [`Sidecar::update_sent`] lands), nanoseconds.
    pub sent_ns: u64,
    /// `true` once `sent_ns` holds the write-*completion* time. A reader
    /// that consumes the note earlier (shaped links pace the writer while
    /// loopback delivers instantly) must not measure `wire_read` from the
    /// provisional write-start stamp — that span would double-count the
    /// whole `wire_write`.
    pub settled: bool,
}

#[derive(Default)]
struct SidecarInner {
    map: HashMap<(u64, u64), SidecarEntry>,
    fifo: VecDeque<(u64, u64)>,
}

/// Bounded `(connection key, frame seq) → (trace id, sent timestamp)` map.
pub struct Sidecar {
    inner: Mutex<SidecarInner>,
    capacity: usize,
}

impl Sidecar {
    /// A sidecar retaining at most `capacity` in-flight entries.
    pub fn new(capacity: usize) -> Self {
        Sidecar {
            inner: Mutex::new(SidecarInner::default()),
            capacity: capacity.max(1),
        }
    }

    /// Insert the note for `(key, seq)` *before* the frame bytes are
    /// written, so the reader can never observe the frame without it.
    /// `sent_ns` is provisional (write start) until
    /// [`Sidecar::update_sent`] lands.
    pub fn insert(&self, key: u64, seq: u64, trace_id: u64, sent_ns: u64) {
        let mut inner = self.inner.lock();
        if inner.map.len() >= self.capacity {
            // Evict the oldest note still pending (its reader is gone or
            // untraced).
            while let Some(old) = inner.fifo.pop_front() {
                if inner.map.remove(&old).is_some() {
                    break;
                }
            }
        }
        inner.map.insert(
            (key, seq),
            SidecarEntry {
                trace_id,
                sent_ns,
                settled: false,
            },
        );
        inner.fifo.push_back((key, seq));
    }

    /// Refine `sent_ns` to the write-completion time and mark the entry
    /// settled. A no-op if the reader already consumed the entry (it then
    /// recovered the trace id but skipped the `wire_read` span).
    pub fn update_sent(&self, key: u64, seq: u64, sent_ns: u64) {
        if let Some(entry) = self.inner.lock().map.get_mut(&(key, seq)) {
            entry.sent_ns = sent_ns;
            entry.settled = true;
        }
    }

    /// Consume the note for `(key, seq)`, if the writer left one.
    pub fn take(&self, key: u64, seq: u64) -> Option<SidecarEntry> {
        self.inner.lock().map.remove(&(key, seq))
    }

    /// Consume the note for `(key, seq)`, waiting up to `wait` for the
    /// writer to settle it first.
    ///
    /// The writer stamps the write-completion time within microseconds of
    /// the last frame byte entering the socket, but the reader — woken by
    /// that same byte — can reach the map first. Yielding for a bounded
    /// moment resolves the race in the common case; on timeout the entry is
    /// returned unsettled (the caller then skips the `wire_read` span, as
    /// with [`Sidecar::take`]).
    pub fn take_settled(
        &self,
        key: u64,
        seq: u64,
        wait: std::time::Duration,
    ) -> Option<SidecarEntry> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            {
                let mut inner = self.inner.lock();
                match inner.map.get(&(key, seq)) {
                    Some(e) if e.settled => return inner.map.remove(&(key, seq)),
                    Some(_) if std::time::Instant::now() < deadline => {}
                    Some(_) => return inner.map.remove(&(key, seq)),
                    None => return None,
                }
            }
            std::thread::yield_now();
        }
    }

    /// Entries currently pending.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every pending entry.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.fifo.clear();
    }
}

impl std::fmt::Debug for Sidecar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sidecar")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_ends_derive_the_same_key() {
        // Writer: (local=pub, peer=sub); reader: (peer=pub, local=sub).
        let writer = conn_key("127.0.0.1:4000", "127.0.0.1:51234");
        let reader = conn_key("127.0.0.1:4000", "127.0.0.1:51234");
        assert_eq!(writer, reader);
        // Order matters: a different pairing is a different connection.
        assert_ne!(writer, conn_key("127.0.0.1:51234", "127.0.0.1:4000"));
    }

    #[test]
    fn insert_update_take_roundtrip() {
        let s = Sidecar::new(16);
        s.insert(1, 0, 42, 1000);
        s.update_sent(1, 0, 1500);
        assert_eq!(
            s.take(1, 0),
            Some(SidecarEntry {
                trace_id: 42,
                sent_ns: 1500,
                settled: true
            })
        );
        assert_eq!(s.take(1, 0), None, "take consumes");
        // update_sent after take is a harmless no-op.
        s.update_sent(1, 0, 9999);
        assert!(s.is_empty());
    }

    #[test]
    fn capacity_evicts_oldest_pending() {
        let s = Sidecar::new(3);
        for seq in 0..5u64 {
            s.insert(7, seq, seq + 100, 0);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.take(7, 0), None, "oldest evicted");
        assert_eq!(s.take(7, 1), None, "second oldest evicted");
        assert!(s.take(7, 4).is_some(), "newest survives");
    }

    #[test]
    fn eviction_skips_already_taken_entries() {
        let s = Sidecar::new(2);
        s.insert(1, 0, 10, 0);
        s.insert(1, 1, 11, 0);
        assert!(s.take(1, 0).is_some());
        // Map has 1 entry, fifo has 2 stale keys; the next two inserts must
        // evict only genuinely pending entries.
        s.insert(1, 2, 12, 0);
        assert!(s.take(1, 1).is_some(), "not evicted while capacity allows");
        s.clear();
        assert!(s.is_empty());
    }
}
