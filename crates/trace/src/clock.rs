//! The process-wide monotonic clock all trace timestamps share.
//!
//! Every simulated machine lives in one OS process, so a single monotonic
//! epoch (first use) serves publisher, wire, and subscriber alike — span
//! arithmetic never crosses clock domains. `rossf_ros::time::now_nanos`
//! delegates here so end-to-end latency measurements and stage spans are
//! directly comparable.

use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the process-wide monotonic epoch (first call).
#[inline]
pub fn now_nanos() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(now_nanos() - a >= 2_000_000);
    }
}
