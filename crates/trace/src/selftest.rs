//! Deterministic self-test behind `sfm_trace --self-test`.
//!
//! Runs entirely on a private [`Tracer`] instance (the global collector is
//! untouched), so it is safe to invoke in CI next to other tracing users.

use crate::hist::{bucket_floor, bucket_index, StageHist, BUCKETS};
use crate::ring::EventRing;
use crate::sidecar::{conn_key, Sidecar};
use crate::stage::{Stage, Tier};
use crate::waterfall::{check_monotone, render_waterfall};
use crate::Tracer;

fn fail(check: &str, detail: String) -> String {
    format!("self-test `{check}` failed: {detail}")
}

fn check_buckets() -> Result<(), String> {
    let cases: [(u64, usize); 7] = [
        (0, 0),
        (1, 0),
        (2, 1),
        (1023, 9),
        (1024, 10),
        (1025, 10),
        (u64::MAX, 63),
    ];
    for (ns, want) in cases {
        let got = bucket_index(ns);
        if got != want {
            return Err(fail(
                "buckets",
                format!("bucket_index({ns}) = {got}, want {want}"),
            ));
        }
    }
    for i in 1..BUCKETS {
        if bucket_index(bucket_floor(i)) != i {
            return Err(fail(
                "buckets",
                format!("floor of bucket {i} maps elsewhere"),
            ));
        }
    }
    let h = StageHist::new();
    for ns in [3u64, 30, 300, 3_000] {
        h.record(ns);
    }
    let s = h.snapshot();
    if s.count != 4 || s.sum_ns != 3_333 || s.min_ns != 3 || s.max_ns != 3_000 {
        return Err(fail("buckets", format!("aggregate mismatch: {s:?}")));
    }
    Ok(())
}

fn check_sidecar() -> Result<(), String> {
    let s = Sidecar::new(4);
    let key = conn_key("10.0.0.1:4000", "10.0.0.2:51000");
    if key != conn_key("10.0.0.1:4000", "10.0.0.2:51000") {
        return Err(fail(
            "sidecar",
            "key derivation is not deterministic".into(),
        ));
    }
    s.insert(key, 0, 41, 100);
    s.update_sent(key, 0, 180);
    match s.take(key, 0) {
        Some(e) if e.trace_id == 41 && e.sent_ns == 180 && e.settled => {}
        other => return Err(fail("sidecar", format!("roundtrip returned {other:?}"))),
    }
    s.insert(key, 1, 43, 100);
    match s.take(key, 1) {
        Some(e) if e.trace_id == 43 && !e.settled => {}
        other => {
            return Err(fail(
                "sidecar",
                format!("pre-update take must be unsettled, got {other:?}"),
            ))
        }
    }
    s.insert(key, 2, 44, 100);
    s.update_sent(key, 2, 150);
    match s.take_settled(key, 2, std::time::Duration::ZERO) {
        Some(e) if e.settled && e.sent_ns == 150 => {}
        other => {
            return Err(fail(
                "sidecar",
                format!("settled take_settled returned {other:?}"),
            ))
        }
    }
    s.insert(key, 3, 45, 100);
    match s.take_settled(key, 3, std::time::Duration::ZERO) {
        Some(e) if e.trace_id == 45 && !e.settled => {}
        other => {
            return Err(fail(
                "sidecar",
                format!("timed-out take_settled returned {other:?}"),
            ))
        }
    }
    if s.take_settled(key, 99, std::time::Duration::ZERO).is_some() {
        return Err(fail("sidecar", "take_settled invented an entry".into()));
    }
    if s.take(key, 0).is_some() {
        return Err(fail("sidecar", "take did not consume the entry".into()));
    }
    for seq in 0..8u64 {
        s.insert(key, seq, seq, 0);
    }
    if s.len() != 4 {
        return Err(fail(
            "sidecar",
            format!("capacity not enforced: len = {}", s.len()),
        ));
    }
    if s.take(key, 0).is_some() || s.take(key, 7).is_none() {
        return Err(fail(
            "sidecar",
            "FIFO eviction kept the wrong entries".into(),
        ));
    }
    Ok(())
}

fn check_ring() -> Result<(), String> {
    let ring = EventRing::new(8);
    let t = Tracer::new();
    for _ in 0..20 {
        ring.push(crate::TraceEvent {
            ts_ns: 1,
            trace_id: t.next_trace_id(),
            topic: std::sync::Arc::from("ring"),
            stage: Stage::Encode,
            tier: Tier::Local,
            dur_ns: 1,
        });
    }
    if ring.len() != 8 {
        return Err(fail("ring", format!("not bounded: len = {}", ring.len())));
    }
    let events = ring.drain_copy();
    if events.first().map(|e| e.trace_id) != Some(13) {
        return Err(fail("ring", "oldest events were not evicted first".into()));
    }
    Ok(())
}

fn check_pipeline() -> Result<(), String> {
    // A synthetic three-message pipeline over all three tiers, recorded into
    // a private tracer, must come out monotone and render a waterfall.
    let t = Tracer::new();
    t.arm();
    let table = t.topic("selftest/pipeline");
    for (i, tier) in Tier::ALL.iter().enumerate() {
        let id = t.next_trace_id();
        let base = (i as u64 + 1) * 1_000_000;
        let mut ts = base;
        for stage in [
            Stage::Alloc,
            Stage::Encode,
            Stage::Enqueue,
            Stage::WireWrite,
            Stage::WireRead,
            Stage::Verify,
            Stage::Adopt,
            Stage::Callback,
        ] {
            let dur = 100 + stage.index() as u64 * 50;
            t.span(&table, stage, *tier, id, ts, ts + dur);
            ts += dur;
        }
    }
    t.fault_event("selftest/link", Tier::Tcp, 500);
    check_monotone(&t.events()).map_err(|e| fail("pipeline", e))?;
    if t.hist_writes() != 8 * Tier::ALL.len() as u64 {
        return Err(fail(
            "pipeline",
            format!("hist_writes = {}", t.hist_writes()),
        ));
    }
    let snaps = t.snapshot();
    let text = render_waterfall(&snaps);
    for needle in ["selftest/pipeline", "wire_write", "fastpath", "sum(stages)"] {
        if !text.contains(needle) {
            return Err(fail(
                "pipeline",
                format!("waterfall missing `{needle}`:\n{text}"),
            ));
        }
    }
    let snap = &snaps[0];
    // All stage durations are exact here, so the telescoped sum must equal
    // one message's end-to-end extent per tier (one cell per stage × tier).
    let per_msg: f64 = (0..8).map(|i| 100.0 + i as f64 * 50.0).sum();
    let sum = snap.stage_sum_ns(true);
    let want = per_msg * Tier::ALL.len() as f64;
    if (sum - want).abs() > 1e-6 {
        return Err(fail(
            "pipeline",
            format!("stage sum {sum} != synthetic e2e {want}"),
        ));
    }
    t.reset();
    if t.hist_writes() != 0 || !t.events().is_empty() {
        return Err(fail("pipeline", "reset left data behind".into()));
    }
    Ok(())
}

/// Run every deterministic check; `Err` carries the first failure.
///
/// # Errors
///
/// A description of the first failing check.
pub fn self_test() -> Result<(), String> {
    check_buckets()?;
    check_sidecar()?;
    check_ring()?;
    check_pipeline()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        super::self_test().unwrap();
    }
}
