//! The pipeline stage and transport tier axes of the histogram tables.

/// A pipeline stage a traced message crosses, in causal order.
///
/// Each stage is recorded as a *span* (start and end timestamp); the
/// histogram sample is the span duration. [`Stage::Fault`] is out-of-band:
/// it tags injected link faults into the raw event stream (duration = the
/// injected delay) and never participates in waterfall sums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stage {
    /// Buffer allocation plus field construction: from the backing buffer's
    /// birth to `publish` entry. Only serialization-free messages stamp
    /// their allocation; republished (`SfmShared`) and plain messages skip
    /// this stage.
    Alloc,
    /// `publish` entry to encoded frame ready. For serialization-free
    /// messages this is the buffer-pointer clone + publish bookkeeping; for
    /// plain messages it includes full serialization.
    Encode,
    /// Sitting in a per-connection transmission queue: deposited by
    /// `publish`, taken out by the writer thread (TCP) or the attached
    /// subscriber (fast path).
    Enqueue,
    /// Writing the frame into the socket, including link-shaping pacing.
    /// Absent on the fast path and the local bus (no socket).
    WireWrite,
    /// From write completion on the publisher to payload fully read on the
    /// subscriber: propagation plus the read syscalls.
    WireRead,
    /// Structural verification of the received frame
    /// (`TransportConfig::validate_on_receive`).
    Verify,
    /// Turning the frame into the callback argument: adoption for
    /// serialization-free messages, de-serialization for plain ones.
    Adopt,
    /// The subscriber callback itself (`callback_enter` → `callback_exit`).
    Callback,
    /// An injected link fault (drop/delay/sever), tagged into the event
    /// stream with trace id 0.
    Fault,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 9;

impl Stage {
    /// All stages in causal order ([`Stage::Fault`] last).
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Alloc,
        Stage::Encode,
        Stage::Enqueue,
        Stage::WireWrite,
        Stage::WireRead,
        Stage::Verify,
        Stage::Adopt,
        Stage::Callback,
        Stage::Fault,
    ];

    /// Dense index for table addressing (= position in [`Stage::ALL`]).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lowercase stage name as it appears in reports.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Alloc => "alloc",
            Stage::Encode => "encode",
            Stage::Enqueue => "enqueue",
            Stage::WireWrite => "wire_write",
            Stage::WireRead => "wire_read",
            Stage::Verify => "verify",
            Stage::Adopt => "adopt",
            Stage::Callback => "callback",
            Stage::Fault => "fault",
        }
    }
}

/// The transport tier a span was measured on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Per-(publisher, subscriber) TCP connection (loopback or shaped).
    Tcp,
    /// Same-machine zero-copy pointer handoff (`rossf_ros::fastpath`).
    Fastpath,
    /// In-process synchronous [`LocalBus`](../rossf_ros/local/index.html).
    Local,
}

/// Number of [`Tier`] variants.
pub const TIER_COUNT: usize = 3;

impl Tier {
    /// All tiers.
    pub const ALL: [Tier; TIER_COUNT] = [Tier::Tcp, Tier::Fastpath, Tier::Local];

    /// Dense index for table addressing.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Lowercase tier name as it appears in reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Tcp => "tcp",
            Tier::Fastpath => "fastpath",
            Tier::Local => "local",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, t) in Tier::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
        assert!(Stage::Alloc < Stage::Callback, "causal order is Ord");
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.extend(Tier::ALL.iter().map(|t| t.name()));
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
