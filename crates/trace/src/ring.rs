//! Bounded ring-buffer recorder for raw timeline events.
//!
//! The histograms answer "where does time go on average"; the ring answers
//! "what happened to message 4127". It keeps the most recent
//! [`DEFAULT_RING_CAPACITY`] events (stage completions and injected link
//! faults) and evicts the oldest on overflow, so a long traced run has
//! bounded memory no matter how many messages flow.

use crate::stage::{Stage, Tier};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Default event capacity of the global ring (~1 MiB of events).
pub const DEFAULT_RING_CAPACITY: usize = 16_384;

/// One recorded timeline event: a completed stage span (or a fault tag).
///
/// `ts_ns` is the span's *end* on the process-wide monotonic clock;
/// `ts_ns - dur_ns` is its start.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span end, nanoseconds on the [`now_nanos`](crate::now_nanos) clock.
    pub ts_ns: u64,
    /// The message's trace id (0 for fault events).
    pub trace_id: u64,
    /// Topic the span belongs to (the link label for fault events).
    pub topic: Arc<str>,
    /// Stage completed.
    pub stage: Stage,
    /// Transport tier the span was measured on.
    pub tier: Tier,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

/// Bounded FIFO of [`TraceEvent`]s.
pub struct EventRing {
    inner: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
}

impl EventRing {
    /// A ring holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        EventRing {
            inner: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&self, event: TraceEvent) {
        let mut ring = self.inner.lock();
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(event);
    }

    /// Copy the buffered events, oldest first (the ring keeps them).
    pub fn drain_copy(&self) -> Vec<TraceEvent> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all buffered events.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }
}

impl std::fmt::Debug for EventRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventRing")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64) -> TraceEvent {
        TraceEvent {
            ts_ns: id * 10,
            trace_id: id,
            topic: Arc::from("t"),
            stage: Stage::Encode,
            tier: Tier::Local,
            dur_ns: 1,
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let ring = EventRing::new(4);
        for id in 0..10 {
            ring.push(ev(id));
        }
        assert_eq!(ring.len(), 4);
        let events = ring.drain_copy();
        let ids: Vec<u64> = events.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "oldest evicted first");
        assert_eq!(ring.len(), 4, "drain_copy is non-destructive");
        ring.clear();
        assert!(ring.is_empty());
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = EventRing::new(0);
        ring.push(ev(1));
        ring.push(ev(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.drain_copy()[0].trace_id, 2);
    }
}
