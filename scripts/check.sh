#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> sfm_verify --self-test"
cargo run -q --release -p rossf-bench --bin sfm_verify -- --self-test

echo "==> frame-corruption harness"
cargo test -q -p rossf-msg --test verify_corruption

echo "==> same-machine fast-path suite"
cargo test -q -p rossf-ros --test fastpath

echo "==> shared-memory tier suite (forked byte-identity, segment leak check, fault parity)"
cargo test -q -p rossf-ros --test shm

echo "==> options/stats suite (defaults, overrides, all four tiers)"
cargo test -q -p rossf-ros --test options

echo "==> fast-path smoke (same-machine zero-copy vs forced TCP)"
# 150 iters: with 40, the smoke's p99 is effectively the sample max and
# flaps past the trajectory gate's +10% band on an idle machine.
cargo run -q --release -p rossf-bench --bin link_sweep -- --iters 150 --fastpath-smoke

echo "==> sfm_trace --self-test"
cargo run -q --release -p rossf-bench --bin sfm_trace -- --self-test

echo "==> tracing suite (monotone timelines, id survival, zero-overhead)"
cargo test -q -p rossf-ros --test tracing

echo "==> tracing-overhead gate (traced p50 <= 1.05x untraced, fastpath + shm)"
cargo run -q --release -p rossf-bench --bin sfm_trace -- --overhead-gate

echo "==> loaned-publication gate (shm+loan one-way p50 <= 1.2x fastpath, all paper sizes)"
cargo run -q --release -p rossf-bench --bin loan_gate -- --iters 60

echo "==> projection gate (>=5x fewer wire bytes for a small-subset subscription, p50 no worse)"
cargo run -q --release -p rossf-bench --bin projection_gate -- --iters 60

echo "==> projection correctness suite (negotiation, mixed fan-out, FieldAbsent, corruption)"
cargo test -q -p rossf-msg --test projection

echo "==> fd/thread-leak suite (connect/sever/reconnect churn returns to baseline)"
cargo test -q -p rossf-ros --test leak

echo "==> churn soak smoke (reactor thread count independent of link count)"
cargo run -q --release -p rossf-bench --bin soak -- --smoke

echo "==> bag format/recorder/replayer suite (rossf-bag)"
cargo test -q -p rossf-bag

echo "==> sfm_bag --self-test (record, verify, zero-copy replay, corruption rejection)"
cargo run -q --release -p rossf --bin sfm_bag -- --self-test

echo "==> bag gate smoke (record fig18 pipeline, byte-identical zero-copy replay, pacing)"
cargo run -q --release -p rossf-bench --bin bag_gate -- --smoke

echo "==> bench summary + trajectory regression gate (p50/p99 <= +10% vs previous; soak threads/fds flat)"
cargo run -q --release -p rossf-bench --bin bench_summary -- --gate

echo "==> rossf-lint (unsafe/SeqCst annotations, syscall confinement, Drop hygiene)"
cargo run -q --release -p rossf-lint --bin rossf-lint -- .

echo "==> rossf-model --self-test (explorer catches the seeded racy ring, deterministically)"
cargo run -q --release -p rossf-model --bin rossf-model -- --self-test

echo "==> model-checked shm interleaving suite (ring, two-phase publish, refcounts, epochs)"
RUSTFLAGS="--cfg rossf_model" CARGO_TARGET_DIR=target/model \
    cargo test -q -p rossf-shm --test model

echo "==> cargo doc -p rossf-trace -p rossf-model -p rossf-lint (warning-clean)"
RUSTDOCFLAGS="-D warnings" cargo doc -q -p rossf-trace -p rossf-model -p rossf-lint --no-deps

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "All checks passed."
