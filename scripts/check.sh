#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> sfm_verify --self-test"
cargo run -q --release -p rossf-bench --bin sfm_verify -- --self-test

echo "==> frame-corruption harness"
cargo test -q -p rossf-msg --test verify_corruption

echo "==> same-machine fast-path suite"
cargo test -q -p rossf-ros --test fastpath

echo "==> fast-path smoke (same-machine zero-copy vs forced TCP)"
cargo run -q --release -p rossf-bench --bin link_sweep -- --iters 40 --fastpath-smoke

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "All checks passed."
