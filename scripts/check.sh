#!/usr/bin/env bash
# Full local gate: build, tests, lints, formatting. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test -q --workspace

echo "==> sfm_verify --self-test"
cargo run -q --release -p rossf-bench --bin sfm_verify -- --self-test

echo "==> frame-corruption harness"
cargo test -q -p rossf-msg --test verify_corruption

echo "==> same-machine fast-path suite"
cargo test -q -p rossf-ros --test fastpath

echo "==> shared-memory tier suite (forked byte-identity, segment leak check, fault parity)"
cargo test -q -p rossf-ros --test shm

echo "==> options/stats suite (defaults, overrides, all four tiers)"
cargo test -q -p rossf-ros --test options

echo "==> fast-path smoke (same-machine zero-copy vs forced TCP)"
cargo run -q --release -p rossf-bench --bin link_sweep -- --iters 40 --fastpath-smoke

echo "==> sfm_trace --self-test"
cargo run -q --release -p rossf-bench --bin sfm_trace -- --self-test

echo "==> tracing suite (monotone timelines, id survival, zero-overhead)"
cargo test -q -p rossf-ros --test tracing

echo "==> tracing-overhead gate (traced p50 <= 1.05x untraced, fastpath + shm)"
cargo run -q --release -p rossf-bench --bin sfm_trace -- --overhead-gate

echo "==> loaned-publication gate (shm+loan one-way p50 <= 1.2x fastpath, all paper sizes)"
cargo run -q --release -p rossf-bench --bin loan_gate -- --iters 60

echo "==> bench summary + trajectory regression gate (p50/p99 <= +10% vs previous)"
cargo run -q --release -p rossf-bench --bin bench_summary -- --gate

echo "==> cargo doc -p rossf-trace (warning-clean)"
RUSTDOCFLAGS="-D warnings" cargo doc -q -p rossf-trace --no-deps

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "All checks passed."
